"""Extended property-based suites.

Three stateful machines beyond the core topology machine:

* **EvolutionMachine** — random I1-I4 changes (immediate or deferred) over
  a populated schema; after a full catch-up, every reverse reference's
  flags agree with the schema.
* **LockTableMachine** — random acquire/release with queuing; granted
  modes are pairwise compatible across transactions, queue entries never
  duplicate, and releases never strand a grantable waiter.
* **Durability round-trip** — any random mutation sequence on a
  DurableDatabase survives reopen byte-for-byte.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import AttributeSpec, Database, ReproError, SetOf
from repro.locking.modes import COMPATIBILITY, FIGURE8_MODES
from repro.locking.table import LockTable
from repro.schema.evolution import SchemaEvolutionManager

# ---------------------------------------------------------------------------
# Evolution machine
# ---------------------------------------------------------------------------


class EvolutionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database()
        self.manager = SchemaEvolutionManager(self.db)
        self.db.make_class("Part")
        self.db.make_class("Widget", attributes=[
            AttributeSpec("Piece", domain=SetOf("Part"), composite=True,
                          exclusive=False, dependent=True),
        ])
        self.parts = []

    @rule()
    def add_pair(self):
        part = self.db.make("Part")
        self.db.make("Widget", values={"Piece": [part]})
        self.parts.append(part)

    @rule(mode=st.sampled_from(["immediate", "deferred"]))
    def toggle_dependency(self, mode):
        spec = self.db.classdef("Widget").attribute("Piece")
        if spec.dependent:
            self.manager.make_independent("Widget", "Piece", mode=mode)
        else:
            self.manager.make_dependent("Widget", "Piece", mode=mode)

    @rule(mode=st.sampled_from(["immediate", "deferred"]))
    def toggle_exclusivity(self, mode):
        spec = self.db.classdef("Widget").attribute("Piece")
        if not spec.exclusive:
            # D3 is state-dependent: only attempt when every part has at
            # most one reverse reference (always true here: one widget per
            # part).  Reject paths are exercised by the unit tests.
            try:
                self.manager.make_exclusive("Widget", "Piece")
            except ReproError:
                pass
        else:
            self.manager.make_shared("Widget", "Piece", mode=mode)

    @rule(data=st.data())
    def access_some(self, data):
        if not self.parts:
            return
        part = data.draw(st.sampled_from(self.parts))
        if self.db.exists(part):
            self.db.resolve(part)

    @invariant()
    def flags_agree_after_catch_up(self):
        self.manager.catch_up_all()
        spec = self.db.classdef("Widget").attribute("Piece")
        for part in self.parts:
            instance = self.db.peek(part)
            if instance is None:
                continue
            for ref in instance.reverse_references:
                assert ref.exclusive == spec.exclusive
                assert ref.dependent == spec.dependent
        self.db.validate()


EvolutionMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
TestEvolutionMachine = EvolutionMachine.TestCase


# ---------------------------------------------------------------------------
# Lock table machine
# ---------------------------------------------------------------------------

_TXNS = ["T1", "T2", "T3", "T4"]
_RESOURCES = ["r1", "r2", "c1"]


class LockTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = LockTable()

    @rule(
        txn=st.sampled_from(_TXNS),
        resource=st.sampled_from(_RESOURCES),
        mode=st.sampled_from(FIGURE8_MODES),
    )
    def request(self, txn, resource, mode):
        self.table.acquire(txn, resource, mode, wait=True)

    @rule(txn=st.sampled_from(_TXNS))
    def release(self, txn):
        self.table.release_all(txn)

    @invariant()
    def grants_pairwise_compatible(self):
        for resource in _RESOURCES:
            holders = self.table.holders(resource)
            for i, txn_a in enumerate(holders):
                for txn_b in holders[i + 1 :]:
                    for mode_a in self.table.modes_held(txn_a, resource):
                        for mode_b in self.table.modes_held(txn_b, resource):
                            assert COMPATIBILITY[(mode_a, mode_b)], (
                                f"{txn_a}:{mode_a} granted alongside "
                                f"{txn_b}:{mode_b} on {resource}"
                            )

    @invariant()
    def no_duplicate_queue_entries(self):
        for resource in _RESOURCES:
            seen = set()
            for request in self.table.waiters(resource):
                key = (request.txn, request.mode)
                assert key not in seen
                seen.add(key)

    @invariant()
    def no_strandable_head(self):
        # The queue head must actually be blocked by a current holder (it
        # could be granted otherwise — promotion ran at every release).
        for resource in _RESOURCES:
            waiters = self.table.waiters(resource)
            if not waiters:
                continue
            head = waiters[0]
            assert not self.table.is_compatible(head.txn, resource, head.mode)


LockTableMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestLockTableMachine = LockTableMachine.TestCase


# ---------------------------------------------------------------------------
# Durability round-trip
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("make"), st.text(max_size=8)),
        st.tuples(st.just("link"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("unlink"), st.integers(0, 30), st.integers(0, 30)),
        st.tuples(st.just("set"), st.integers(0, 30), st.text(max_size=8)),
        st.tuples(st.just("delete"), st.integers(0, 30)),
    ),
    min_size=1,
    max_size=25,
)


@given(ops=_ops)
@settings(max_examples=25, deadline=None)
def test_durable_roundtrip_random_ops(ops, tmp_path_factory):
    from repro.storage.durable import DurableDatabase

    directory = tmp_path_factory.mktemp("durable")
    db = DurableDatabase(directory)
    db.make_class("Node", attributes=[
        AttributeSpec("Tag", domain="string"),
        AttributeSpec("Kids", domain=SetOf("Node"), composite=True,
                      exclusive=False, dependent=False),
    ])
    uids = []

    def pick(index):
        live = [u for u in uids if db.exists(u)]
        return live[index % len(live)] if live else None

    for op in ops:
        try:
            if op[0] == "make":
                uids.append(db.make("Node", values={"Tag": op[1]}))
            elif op[0] == "link":
                parent, child = pick(op[1]), pick(op[2])
                if parent and child and parent != child:
                    db.make_part_of(child, parent, "Kids")
            elif op[0] == "unlink":
                parent, child = pick(op[1]), pick(op[2])
                if parent and child:
                    db.remove_part_of(child, parent, "Kids")
            elif op[0] == "set":
                target = pick(op[1])
                if target:
                    db.set_value(target, "Tag", op[2])
            elif op[0] == "delete":
                target = pick(op[1])
                if target:
                    db.delete(target)
        except ReproError:
            pass  # topology rejections are fine
    expected = {
        instance.uid: (dict(instance.values),
                       sorted(map(str, instance.reverse_references)))
        for instance in db.live_instances()
    }
    db.close()
    recovered = DurableDatabase.open(directory)
    actual = {
        instance.uid: (dict(instance.values),
                       sorted(map(str, instance.reverse_references)))
        for instance in recovered.live_instances()
    }
    assert actual == expected
    recovered.validate()
    recovered.close()


# ---------------------------------------------------------------------------
# Version-manager machine: ref-counts always equal a from-scratch recount
# ---------------------------------------------------------------------------


def _recount_generic_links(db, vm):
    """Independent recomputation of the CV-3X generic link counts by
    scanning every live instance's composite values."""
    counts = {}
    for instance in db.live_instances():
        for attr, child in db.iter_composite_values(instance):
            target = vm.registry.hierarchy_key(child)
            if not vm.registry.is_generic(target):
                continue
            source = vm.registry.hierarchy_key(instance.uid)
            key = (source, attr, target)
            counts[key] = counts.get(key, 0) + 1
    return counts


class VersionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        from repro.versions import VersionManager

        self.db = Database()
        self.db.make_class("Mod", versionable=True)
        self.db.make_class("Asm", versionable=True, attributes=[
            AttributeSpec("mods", domain=SetOf("Mod"), composite=True,
                          exclusive=True, dependent=False),
        ])
        self.vm = VersionManager(self.db)
        self.mod_versions = []
        self.asm_versions = []

    @rule()
    def create_mod(self):
        _generic, version = self.vm.create("Mod")
        self.mod_versions.append(version)

    @rule()
    def create_asm(self):
        _generic, version = self.vm.create("Asm")
        self.asm_versions.append(version)

    @rule(data=st.data())
    def derive_something(self, data):
        pool = [v for v in self.mod_versions + self.asm_versions
                if self.db.exists(v)]
        if not pool:
            return
        source = data.draw(st.sampled_from(pool))
        new = self.vm.derive(source).new_version
        if self.vm.registry.generic_of(new) and new.class_name == "Mod":
            self.mod_versions.append(new)
        else:
            self.asm_versions.append(new)

    @rule(data=st.data(), dynamic=st.booleans())
    def link(self, data, dynamic):
        asms = [v for v in self.asm_versions if self.db.exists(v)]
        mods = [v for v in self.mod_versions if self.db.exists(v)]
        if not asms or not mods:
            return
        asm = data.draw(st.sampled_from(asms))
        mod = data.draw(st.sampled_from(mods))
        target = self.vm.registry.generic_of(mod) if dynamic else mod
        if target is None or not self.db.exists(target):
            return
        try:
            self.db.insert_into(asm, "mods", target)
        except ReproError:
            pass  # CV-2X rejections are expected

    @rule(data=st.data())
    def unlink(self, data):
        asms = [v for v in self.asm_versions if self.db.exists(v)]
        if not asms:
            return
        asm = data.draw(st.sampled_from(asms))
        members = self.db.value(asm, "mods")
        if members:
            self.db.remove_from(asm, "mods", data.draw(st.sampled_from(members)))

    @rule(data=st.data())
    def delete_version(self, data):
        pool = [v for v in self.mod_versions + self.asm_versions
                if self.db.exists(v) and self.vm.registry.is_version(v)]
        if not pool:
            return
        self.vm.delete_version(data.draw(st.sampled_from(pool)))

    @invariant()
    def refcounts_match_recount(self):
        assert self.vm._counts == _recount_generic_links(self.db, self.vm)

    @invariant()
    def registry_consistent_with_table(self):
        for generic_uid in self.vm.registry.all_generics():
            info = self.vm.registry.generic_info(generic_uid)
            assert self.db.exists(generic_uid)
            for version in info.versions:
                assert self.db.exists(version)
                assert self.vm.registry.generic_of(version) == generic_uid

    @invariant()
    def database_valid(self):
        self.db.validate()


VersionMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestVersionMachine = VersionMachine.TestCase


# ---------------------------------------------------------------------------
# Checkout machine: abandon is a perfect no-op; checkin merges and cleans up
# ---------------------------------------------------------------------------


def _composite_fingerprint(db, root):
    """Order-insensitive structural fingerprint of a composite object.

    Reference values (UIDs) are excluded — the original and its workspace
    copy differ in identity by construction; what must match is class,
    primitive values, and component multiset.
    """
    from repro.core.identity import UID

    def keep(value):
        if isinstance(value, UID):
            return False
        if isinstance(value, list):
            return not any(isinstance(item, UID) for item in value)
        return True

    items = []
    for uid in [root] + db.components_of(root):
        instance = db.peek(uid)
        values = {
            k: (sorted(map(str, v)) if isinstance(v, list) else str(v))
            for k, v in instance.values.items()
            if keep(v)
        }
        items.append((instance.class_name, tuple(sorted(values.items()))))
    return sorted(map(str, items))


class CheckoutMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        from repro.txn import CheckoutManager

        self.db = Database()
        self.db.make_class("Pin", attributes=[
            AttributeSpec("Signal", domain="string"),
        ])
        self.db.make_class("Cell", attributes=[
            AttributeSpec("Name", domain="string"),
            AttributeSpec("Pins", domain=SetOf("Pin"), composite=True,
                          exclusive=True, dependent=True),
        ])
        pins = [self.db.make("Pin", values={"Signal": f"s{i}"})
                for i in range(3)]
        self.root = self.db.make("Cell", values={"Name": "c", "Pins": pins})
        self.manager = CheckoutManager(self.db)
        self.checkout = None
        self.edits = 0
        self.baseline = _composite_fingerprint(self.db, self.root)
        self.object_count = len(self.db)

    @rule()
    def open_checkout(self):
        if self.checkout is None:
            self.checkout = self.manager.checkout("user", self.root)
            self.edits = 0

    @rule(name=st.text(alphabet="abcxyz", min_size=1, max_size=6))
    def edit_scalar(self, name):
        if self.checkout is None:
            return
        working = self.checkout.workspace_of(self.root)
        self.db.set_value(working, "Name", name)
        self.edits += 1

    @rule(signal=st.text(alphabet="pqr", min_size=1, max_size=4))
    def add_pin(self, signal):
        if self.checkout is None:
            return
        working = self.checkout.workspace_of(self.root)
        self.db.make("Pin", values={"Signal": signal},
                     parents=[(working, "Pins")])
        self.edits += 1

    @rule(data=st.data())
    def drop_pin(self, data):
        if self.checkout is None:
            return
        working = self.checkout.workspace_of(self.root)
        pins = self.db.value(working, "Pins")
        if not pins:
            return
        self.db.remove_from(working, "Pins", data.draw(st.sampled_from(pins)))
        self.edits += 1

    @rule()
    def abandon(self):
        if self.checkout is None:
            return
        self.manager.abandon(self.checkout)
        self.checkout = None
        # Abandon must be a perfect no-op on the original.
        assert _composite_fingerprint(self.db, self.root) == self.baseline
        assert len(self.db) == self.object_count

    @rule()
    def checkin(self):
        if self.checkout is None:
            return
        working = self.checkout.workspace_of(self.root)
        expected = _composite_fingerprint(self.db, working)
        self.manager.checkin(self.checkout)
        self.checkout = None
        # The original now mirrors the workspace exactly...
        assert _composite_fingerprint(self.db, self.root) == expected
        # ...and nothing of the workspace remains.
        self.baseline = _composite_fingerprint(self.db, self.root)
        self.object_count = len(self.db)

    @invariant()
    def original_untouched_while_checked_out(self):
        assert _composite_fingerprint(self.db, self.root) == self.baseline

    @invariant()
    def database_valid(self):
        self.db.validate()


CheckoutMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestCheckoutMachine = CheckoutMachine.TestCase
