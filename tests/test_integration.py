"""End-to-end integration scenarios combining multiple subsystems."""

import pytest

from repro import (
    AccessDenied,
    AttributeSpec,
    Database,
    LegacyDatabase,
    LegacyModelError,
    LockConflictError,
    SetOf,
)
from repro.authorization import AuthorizationEngine
from repro.schema.evolution import SchemaEvolutionManager
from repro.txn import TransactionManager
from repro.versions import VersionManager
from repro.workloads import build_corpus, define_document_schema


class TestDocumentLifecycle:
    """The paper's Example 2 domain driven through auth + txn + evolution."""

    def test_secure_shared_editing(self):
        database = Database()
        define_document_schema(database)
        paragraph = database.make("Paragraph", values={"Text": "shared"})
        section = database.make("Section", values={"Content": [paragraph]})
        doc_a = database.make("Document",
                              values={"Title": "A", "Sections": [section]})
        doc_b = database.make("Document",
                              values={"Title": "B", "Sections": [section]})

        auth = AuthorizationEngine(database)
        auth.grant("alice", "sW", on_instance=doc_a)
        auth.grant("bob", "sR", on_instance=doc_b)

        # Alice can write the shared paragraph (component of doc A).
        assert auth.require("alice", "W", paragraph)
        # Bob can read it through doc B but not write it.
        assert auth.require("bob", "R", paragraph)
        with pytest.raises(AccessDenied):
            auth.require("bob", "W", paragraph)

        # Transactional edit by alice, with rollback.
        txn_manager = TransactionManager(database)
        txn = txn_manager.begin()
        txn_manager.write(txn, paragraph, "Text", "edited")
        txn_manager.abort(txn)
        assert database.value(paragraph, "Text") == "shared"

    def test_evolution_on_populated_corpus(self):
        database = Database()
        corpus = build_corpus(database, documents=12, share_ratio=0.4, seed=2)
        manager = SchemaEvolutionManager(database)
        # Make Figures dependent: documents now own their images.
        manager.make_dependent("Document", "Figures", mode="deferred")
        manager.catch_up_all()
        database.validate()
        image = corpus.images[0]
        holders = database.parents_of(image)
        if holders:
            for holder in list(holders):
                if database.exists(holder):
                    database.delete(holder)
            assert not database.exists(image)

    def test_corpus_teardown_leaves_nothing_shared_dangling(self):
        database = Database()
        corpus = build_corpus(database, documents=10, share_ratio=0.6, seed=4)
        for document in corpus.documents:
            if database.exists(document):
                database.delete(document)
        # Images are independent: all survive.  Sections/paragraphs are
        # dependent: none survive.
        assert all(database.exists(i) for i in corpus.images)
        assert not any(database.exists(s) for s in corpus.sections)
        assert not any(database.exists(p) for p in corpus.paragraphs)
        database.validate()


class TestDesignOfficeScenario:
    """Vehicle design office: versions + locking + reuse."""

    def test_versioned_design_with_locking(self):
        database = Database()
        database.make_class("Wheel", versionable=True, attributes=[
            AttributeSpec("Radius", domain="integer", init=30),
        ])
        database.make_class("Chassis", versionable=True, attributes=[
            AttributeSpec("Wheels", domain=SetOf("Wheel"), composite=True,
                          exclusive=True, dependent=False),
        ])
        versions = VersionManager(database)
        g_wheel, wheel_v0 = versions.create("Wheel")
        g_chassis, chassis_v0 = versions.create(
            "Chassis", values={"Wheels": [wheel_v0]}
        )
        # Derive a new chassis version: the exclusive static wheel ref is
        # rebound to the wheel's generic instance.
        report = versions.derive(chassis_v0)
        assert database.value(report.new_version, "Wheels") == [g_wheel]
        # A new wheel version becomes the dynamic default.
        wheel_v1 = versions.derive(wheel_v0).new_version
        assert versions.resolve_value(report.new_version, "Wheels") == [wheel_v1]

        txn_manager = TransactionManager(database)
        t1, t2 = txn_manager.begin(), txn_manager.begin()
        txn_manager.lock_composite_for_update(t1, chassis_v0)
        # Another transaction can update a different composite (the new
        # version is its own composite object) only if roots differ...
        with pytest.raises(LockConflictError):
            # ...but the composite class hierarchy write locks collide on
            # the shared Wheel class only when the same instance is locked;
            # here the roots differ, so take a direct conflicting lock:
            txn_manager.write(t2, chassis_v0, "Wheels", [])
        txn_manager.commit(t1)

    def test_legacy_vs_extended_reuse(self):
        # The same workflow succeeds on the extended model and fails on
        # the baseline, reproducing the paper's motivation.
        def dismantle_and_reuse(database):
            database.make_class("Engine2")
            database.make_class("Car2", attributes=[
                AttributeSpec("Motor", domain="Engine2", composite=True,
                              exclusive=True, dependent=False),
            ])
            car = database.make("Car2")
            engine = database.make("Engine2")
            database.make_part_of(engine, car, "Motor")
            database.delete(car)
            assert database.exists(engine)

        dismantle_and_reuse(Database())
        with pytest.raises(LegacyModelError):
            legacy = LegacyDatabase()
            legacy.make_class("Engine2")
            legacy.make_class("Car2", attributes=[
                AttributeSpec("Motor", domain="Engine2", composite=True,
                              exclusive=True, dependent=False),
            ])

    def test_paged_database_full_workflow(self):
        database = Database(paged=True, buffer_capacity=8)
        define_document_schema(database)
        corpus = build_corpus(database, documents=6, share_ratio=0.3, seed=6)
        database.validate()
        # Cold-cache traversal touches pages; the store agrees with the
        # object table after arbitrary mutations.
        database.store.drop_cache()
        database.store.stats.reset()
        doc = corpus.documents[0]
        for component in database.components_of(doc):
            stored = database.store.read(component)
            live = database.resolve(component)
            assert stored.values == live.values
        assert database.store.stats.page_faults > 0
        report = database.delete(doc)
        for uid in report.deleted:
            assert uid not in database.store


class TestEvolutionPlusVersions:
    def test_deferred_evolution_applies_to_version_instances(self):
        database = Database()
        database.make_class("Mod", versionable=True)
        database.make_class("Asm", versionable=True, attributes=[
            AttributeSpec("mods", domain=SetOf("Mod"), composite=True,
                          exclusive=True, dependent=True),
        ])
        versions = VersionManager(database)
        evolution = SchemaEvolutionManager(database)
        g_mod, mod_v0 = versions.create("Mod")
        g_asm, asm_v0 = versions.create("Asm", values={"mods": [mod_v0]})
        evolution.make_independent("Asm", "mods", mode="deferred")
        database.resolve(mod_v0)  # access applies the change
        ref = database.peek(mod_v0).reverse_references[0]
        assert not ref.dependent
        # Deleting the assembly version no longer cascades into the module.
        versions.delete_version(asm_v0)
        assert database.exists(mod_v0)
