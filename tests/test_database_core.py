"""Tests for Database creation, attribute updates, and domain checking."""

import pytest

from repro import (
    AttributeSpec,
    Database,
    DomainError,
    SetOf,
    TopologyError,
    UnknownObjectError,
)
from repro.errors import UnknownAttributeError


@pytest.fixture
def parts_db():
    database = Database()
    database.make_class("Engine", attributes=[
        AttributeSpec("Power", domain="integer", init=100),
    ])
    database.make_class("TurboEngine", superclasses=["Engine"])
    database.make_class("Car", attributes=[
        AttributeSpec("Name", domain="string"),
        AttributeSpec("Motor", domain="Engine", composite=True,
                      exclusive=True, dependent=False),
        AttributeSpec("Spares", domain=SetOf("Engine"), composite=True,
                      exclusive=True, dependent=False),
        AttributeSpec("Seats", domain="integer", init=4),
    ])
    return database


class TestMake:
    def test_init_values_applied(self, parts_db):
        car = parts_db.make("Car")
        assert parts_db.value(car, "Seats") == 4
        assert parts_db.value(car, "Name") is None
        assert parts_db.value(car, "Spares") == []

    def test_kwargs_and_values_merge(self, parts_db):
        car = parts_db.make("Car", values={"Name": "a"}, Seats=2)
        assert parts_db.value(car, "Name") == "a"
        assert parts_db.value(car, "Seats") == 2

    def test_unknown_attribute_rejected(self, parts_db):
        with pytest.raises(UnknownAttributeError):
            parts_db.make("Car", values={"Wheels": 4})

    def test_failed_make_rolls_back_links(self, parts_db):
        engine = parts_db.make("Engine")
        with pytest.raises(DomainError):
            parts_db.make("Car", values={"Motor": engine, "Seats": "four"})
        # The engine must not keep a reverse reference to the aborted car.
        assert parts_db.parents_of(engine) == []
        parts_db.validate()

    def test_make_is_atomic_object_count(self, parts_db):
        before = len(parts_db)
        with pytest.raises(DomainError):
            parts_db.make("Car", values={"Seats": "four"})
        assert len(parts_db) == before

    def test_subclass_instance_accepted_in_domain(self, parts_db):
        turbo = parts_db.make("TurboEngine")
        car = parts_db.make("Car", values={"Motor": turbo})
        assert parts_db.value(car, "Motor") == turbo

    def test_instances_of_subclasses(self, parts_db):
        parts_db.make("Engine")
        parts_db.make("TurboEngine")
        assert len(parts_db.instances_of("Engine")) == 2
        assert len(parts_db.instances_of("Engine", include_subclasses=False)) == 1


class TestDomains:
    def test_primitive_type_checked(self, parts_db):
        car = parts_db.make("Car")
        with pytest.raises(DomainError):
            parts_db.set_value(car, "Seats", "four")

    def test_reference_must_be_live(self, parts_db):
        car = parts_db.make("Car")
        engine = parts_db.make("Engine")
        parts_db.delete(engine)
        with pytest.raises(DomainError):
            parts_db.set_value(car, "Motor", engine)

    def test_reference_class_checked(self, parts_db):
        car1 = parts_db.make("Car")
        car2 = parts_db.make("Car")
        with pytest.raises(DomainError):
            parts_db.set_value(car1, "Motor", car2)

    def test_none_always_allowed(self, parts_db):
        car = parts_db.make("Car")
        parts_db.set_value(car, "Motor", None)
        parts_db.set_value(car, "Name", None)

    def test_set_duplicates_rejected(self, parts_db):
        engine = parts_db.make("Engine")
        with pytest.raises(DomainError):
            parts_db.make("Car", values={"Spares": [engine, engine]})


class TestSetValue:
    def test_replace_composite_moves_reverse_ref(self, parts_db):
        e1, e2 = parts_db.make("Engine"), parts_db.make("Engine")
        car = parts_db.make("Car", values={"Motor": e1})
        parts_db.set_value(car, "Motor", e2)
        assert parts_db.parents_of(e1) == []
        assert parts_db.parents_of(e2) == [car]
        parts_db.validate()

    def test_clear_composite(self, parts_db):
        engine = parts_db.make("Engine")
        car = parts_db.make("Car", values={"Motor": engine})
        parts_db.set_value(car, "Motor", None)
        assert parts_db.parents_of(engine) == []

    def test_set_value_on_set_attribute_rejected(self, parts_db):
        car = parts_db.make("Car")
        with pytest.raises(DomainError):
            parts_db.set_value(car, "Spares", [])

    def test_self_assignment_idempotent(self, parts_db):
        engine = parts_db.make("Engine")
        car = parts_db.make("Car", values={"Motor": engine})
        parts_db.set_value(car, "Motor", engine)
        assert parts_db.parents_of(engine) == [car]
        parts_db.validate()


class TestSetAttributes:
    def test_insert_and_remove(self, parts_db):
        car = parts_db.make("Car")
        e1, e2 = parts_db.make("Engine"), parts_db.make("Engine")
        assert parts_db.insert_into(car, "Spares", e1)
        assert parts_db.insert_into(car, "Spares", e2)
        assert parts_db.value(car, "Spares") == [e1, e2]
        assert parts_db.remove_from(car, "Spares", e1)
        assert parts_db.value(car, "Spares") == [e2]
        assert parts_db.parents_of(e1) == []
        parts_db.validate()

    def test_insert_duplicate_is_noop(self, parts_db):
        car = parts_db.make("Car")
        engine = parts_db.make("Engine")
        assert parts_db.insert_into(car, "Spares", engine)
        assert not parts_db.insert_into(car, "Spares", engine)
        assert parts_db.value(car, "Spares") == [engine]

    def test_remove_missing_is_noop(self, parts_db):
        car = parts_db.make("Car")
        engine = parts_db.make("Engine")
        assert not parts_db.remove_from(car, "Spares", engine)

    def test_insert_into_scalar_rejected(self, parts_db):
        car = parts_db.make("Car")
        engine = parts_db.make("Engine")
        with pytest.raises(DomainError):
            parts_db.insert_into(car, "Motor", engine)

    def test_bulk_assign_set_diffs_links(self, parts_db):
        car = parts_db.make("Car")
        e1, e2, e3 = (parts_db.make("Engine") for _ in range(3))
        parts_db._assign(parts_db.resolve(car),
                         parts_db.classdef("Car").attribute("Spares"), [e1, e2])
        parts_db._assign(parts_db.resolve(car),
                         parts_db.classdef("Car").attribute("Spares"), [e2, e3])
        assert parts_db.parents_of(e1) == []
        assert parts_db.parents_of(e2) == [car]
        assert parts_db.parents_of(e3) == [car]
        parts_db.validate()


class TestMakePartOf:
    def test_bottom_up_scalar(self, parts_db):
        engine = parts_db.make("Engine")
        car = parts_db.make("Car")
        parts_db.make_part_of(engine, car, "Motor")
        assert parts_db.parents_of(engine) == [car]

    def test_bottom_up_set(self, parts_db):
        engine = parts_db.make("Engine")
        car = parts_db.make("Car")
        parts_db.make_part_of(engine, car, "Spares")
        assert parts_db.value(car, "Spares") == [engine]

    def test_exclusive_reuse_blocked_until_detached(self, parts_db):
        engine = parts_db.make("Engine")
        car1 = parts_db.make("Car", values={"Motor": engine})
        car2 = parts_db.make("Car")
        with pytest.raises(TopologyError):
            parts_db.make_part_of(engine, car2, "Motor")
        parts_db.remove_part_of(engine, car1, "Motor")
        parts_db.make_part_of(engine, car2, "Motor")
        assert parts_db.parents_of(engine) == [car2]

    def test_remove_part_of_returns_false_when_absent(self, parts_db):
        engine = parts_db.make("Engine")
        car = parts_db.make("Car")
        assert not parts_db.remove_part_of(engine, car, "Motor")

    def test_remove_never_deletes(self, parts_db):
        # Reference removal only severs the link; existence dependency
        # fires on del() only (Deletion Rule).
        engine = parts_db.make("Engine")
        car = parts_db.make("Car", values={"Motor": engine})
        parts_db.remove_part_of(engine, car, "Motor")
        assert parts_db.exists(engine)


class TestResolveAndAccess:
    def test_unknown_uid(self, parts_db):
        from repro.core.identity import UID

        with pytest.raises(UnknownObjectError):
            parts_db.resolve(UID(9999, "Car"))

    def test_deleted_uid(self, parts_db):
        car = parts_db.make("Car")
        parts_db.delete(car)
        with pytest.raises(UnknownObjectError):
            parts_db.resolve(car)
        assert parts_db.peek(car) is None
        assert car not in parts_db

    def test_access_hook_runs(self, parts_db):
        seen = []
        parts_db.access_hooks.append(lambda inst: seen.append(inst.uid))
        car = parts_db.make("Car")
        parts_db.value(car, "Seats")
        assert car in seen

    def test_access_count(self, parts_db):
        before = parts_db.access_count
        car = parts_db.make("Car")
        parts_db.value(car, "Seats")
        assert parts_db.access_count > before
