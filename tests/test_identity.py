"""Tests for object identity (UIDs)."""

import pytest

from repro.core.identity import UID, UIDAllocator


class TestUID:
    def test_equality_by_number(self):
        assert UID(1, "A") == UID(1, "A")

    def test_class_name_not_compared(self):
        # The number is globally unique; class_name is routing metadata.
        assert UID(1, "A") == UID(1, "B")

    def test_inequality(self):
        assert UID(1, "A") != UID(2, "A")

    def test_ordering_by_allocation(self):
        assert UID(1, "B") < UID(2, "A")

    def test_hashable(self):
        assert len({UID(1, "A"), UID(1, "A"), UID(2, "A")}) == 2

    def test_str_and_repr(self):
        uid = UID(7, "Vehicle")
        assert str(uid) == "Vehicle#7"
        assert "7" in repr(uid) and "Vehicle" in repr(uid)

    def test_immutable(self):
        uid = UID(1, "A")
        with pytest.raises(AttributeError):
            uid.number = 2


class TestUIDAllocator:
    def test_monotonic(self):
        alloc = UIDAllocator()
        numbers = [alloc.allocate("C").number for _ in range(10)]
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == 10

    def test_class_name_recorded(self):
        alloc = UIDAllocator()
        assert alloc.allocate("Vehicle").class_name == "Vehicle"

    def test_start_value(self):
        alloc = UIDAllocator(start=100)
        assert alloc.allocate("C").number == 100

    def test_peek_does_not_consume(self):
        alloc = UIDAllocator()
        nxt = alloc.peek()
        assert alloc.allocate("C").number == nxt
