"""Tests for the rest of the [BANE87b] schema-evolution taxonomy."""

import pytest

from repro import AttributeSpec, Database, SetOf
from repro.errors import ClassDefinitionError, SchemaEvolutionError
from repro.schema.evolution import SchemaEvolutionManager


@pytest.fixture
def env():
    database = Database()
    manager = SchemaEvolutionManager(database)
    database.make_class("Part")
    database.make_class("Widget", attributes=[
        AttributeSpec("Piece", domain="Part", composite=True,
                      exclusive=True, dependent=True),
        AttributeSpec("Label", domain="string", init="unnamed"),
    ])
    database.make_class("SubWidget", superclasses=["Widget"])
    return database, manager


class TestAddAttribute:
    def test_existing_instances_get_default(self, env):
        database, manager = env
        widget = database.make("Widget")
        manager.add_attribute("Widget", AttributeSpec("Mass", domain="integer",
                                                      init=7))
        assert database.value(widget, "Mass") == 7

    def test_set_attribute_gets_empty_set(self, env):
        database, manager = env
        widget = database.make("Widget")
        manager.add_attribute("Widget",
                              AttributeSpec("Tags", domain=SetOf("string")))
        assert database.value(widget, "Tags") == []

    def test_subclass_instances_covered(self, env):
        database, manager = env
        sub = database.make("SubWidget")
        manager.add_attribute("Widget", AttributeSpec("Mass", domain="integer",
                                                      init=3))
        assert database.value(sub, "Mass") == 3
        assert database.classdef("SubWidget").has_attribute("Mass")

    def test_duplicate_rejected(self, env):
        database, manager = env
        with pytest.raises(SchemaEvolutionError):
            manager.add_attribute("Widget", AttributeSpec("Label",
                                                          domain="string"))

    def test_add_composite_attribute_usable(self, env):
        database, manager = env
        manager.add_attribute("Widget", AttributeSpec(
            "Extra", domain=SetOf("Part"), composite=True, exclusive=False,
            dependent=False))
        widget = database.make("Widget")
        part = database.make("Part")
        database.insert_into(widget, "Extra", part)
        assert database.parents_of(part) == [widget]
        database.validate()

    def test_dict_spec_accepted(self, env):
        database, manager = env
        manager.add_attribute("Widget", {"name": "Note", "domain": "string"})
        assert database.classdef("Widget").has_attribute("Note")


class TestRenameAttribute:
    def test_values_migrate(self, env):
        database, manager = env
        widget = database.make("Widget", values={"Label": "x"})
        manager.rename_attribute("Widget", "Label", "Name")
        assert database.value(widget, "Name") == "x"
        assert not database.classdef("Widget").has_attribute("Label")

    def test_reverse_references_patched(self, env):
        database, manager = env
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        manager.rename_attribute("Widget", "Piece", "MainPiece")
        ref = database.resolve(part).reverse_references[0]
        assert ref.attribute == "MainPiece"
        database.validate()

    def test_subclass_values_migrate(self, env):
        database, manager = env
        sub = database.make("SubWidget", values={"Label": "y"})
        manager.rename_attribute("Widget", "Label", "Name")
        assert database.value(sub, "Name") == "y"

    def test_inherited_rename_rejected(self, env):
        database, manager = env
        with pytest.raises(SchemaEvolutionError):
            manager.rename_attribute("SubWidget", "Label", "Name")

    def test_collision_rejected(self, env):
        database, manager = env
        with pytest.raises(SchemaEvolutionError):
            manager.rename_attribute("Widget", "Label", "Piece")

    def test_operations_work_after_rename(self, env):
        database, manager = env
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        manager.rename_attribute("Widget", "Piece", "MainPiece")
        assert database.components_of(widget) == [part]
        report = database.delete(widget)
        assert part in report.deleted  # dependent exclusive still cascades


class TestChangeDefault:
    def test_future_instances_only(self, env):
        database, manager = env
        before = database.make("Widget")
        manager.change_default("Widget", "Label", "fresh")
        after = database.make("Widget")
        assert database.value(before, "Label") == "unnamed"
        assert database.value(after, "Label") == "fresh"

    def test_subclass_sees_new_default(self, env):
        database, manager = env
        manager.change_default("Widget", "Label", "fresh")
        sub = database.make("SubWidget")
        assert database.value(sub, "Label") == "fresh"

    def test_change_via_subclass_updates_origin(self, env):
        database, manager = env
        manager.change_default("SubWidget", "Label", "fresh")
        widget = database.make("Widget")
        assert database.value(widget, "Label") == "fresh"


class TestAddSuperclass:
    def test_gains_attributes_with_defaults(self, env):
        database, manager = env
        database.make_class("Colored", attributes=[
            AttributeSpec("Color", domain="string", init="red"),
        ])
        widget = database.make("Widget")
        gained = manager.add_superclass("Widget", "Colored")
        assert gained == ["Color"]
        assert database.value(widget, "Color") == "red"
        assert database.lattice.is_subclass("Widget", "Colored")

    def test_existing_attributes_not_overridden(self, env):
        database, manager = env
        database.make_class("Labeled", attributes=[
            AttributeSpec("Label", domain="string", init="other"),
        ])
        widget = database.make("Widget", values={"Label": "mine"})
        gained = manager.add_superclass("Widget", "Labeled")
        assert "Label" not in gained
        assert database.value(widget, "Label") == "mine"

    def test_cycle_rejected(self, env):
        database, manager = env
        with pytest.raises(ClassDefinitionError):
            manager.add_superclass("Widget", "SubWidget")

    def test_duplicate_rejected(self, env):
        database, manager = env
        database.make_class("Colored")
        manager.add_superclass("Widget", "Colored")
        with pytest.raises(SchemaEvolutionError):
            manager.add_superclass("Widget", "Colored")

    def test_then_remove_superclass_roundtrip(self, env):
        database, manager = env
        database.make_class("Colored", attributes=[
            AttributeSpec("Color", domain="string"),
        ])
        manager.add_superclass("Widget", "Colored")
        lost = manager.remove_superclass("Widget", "Colored")
        assert lost == ["Color"]
        assert not database.classdef("Widget").has_attribute("Color")


class TestRenameClass:
    def test_basic_rename(self, env):
        database, manager = env
        widget = database.make("Widget")
        manager.rename_class("Widget", "Gadget")
        assert "Gadget" in database.lattice
        assert "Widget" not in database.lattice
        assert database.peek(widget).class_name == "Gadget"
        assert database.instances_of("Gadget")

    def test_domains_follow(self, env):
        database, manager = env
        manager.rename_class("Part", "Component")
        spec = database.classdef("Widget").attribute("Piece")
        assert spec.domain_class == "Component"
        part = database.make("Component")
        widget = database.make("Widget", values={"Piece": part})
        database.validate()

    def test_subclasses_follow(self, env):
        database, manager = env
        manager.rename_class("Widget", "Gadget")
        assert database.lattice.direct_superclasses("SubWidget") == ["Gadget"]
        assert database.classdef("SubWidget").has_attribute("Label")

    def test_collision_rejected(self, env):
        database, manager = env
        with pytest.raises(SchemaEvolutionError):
            manager.rename_class("Widget", "Part")

    def test_invalid_name_rejected(self, env):
        database, manager = env
        with pytest.raises(ClassDefinitionError):
            manager.rename_class("Widget", "not a name")

    def test_operations_after_rename(self, env):
        database, manager = env
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        manager.rename_class("Widget", "Gadget")
        assert database.components_of(widget) == [part]
        assert database.compositep("Gadget", "Piece")
        # Class filters use the new name.
        assert database.parents_of(part, classes=["Gadget"]) == [widget]
