"""Wire protocol v2, codec strictness fixes, and request pipelining.

Property-based round-trips (Hypothesis) drive both codecs over nested
values — UIDs, SetOf markers, bytes, big integers, non-string dict keys
— plus frame-size boundaries; end-to-end tests run a v2-default server
against v2 and forced-v1 clients, exercise pipelined batches with
per-request error isolation, and kill the connection mid-pipeline to
check the retry classification holds for batches too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, SetOf, UID
from repro.errors import (
    LockConflictError,
    ShardUnavailableError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.faults import fault_scope
from repro.server import (
    Client,
    MAX_FRAME_BYTES,
    Pipeline,
    ProtocolError,
    ServerThread,
    build_error,
    wire_decode,
    wire_encode,
)
from repro.server.protocol import (
    decode_payload,
    encode_error_bytes,
    encode_request_bytes,
    encode_result_bytes,
    frame_bytes,
    is_error_payload,
)

# ---------------------------------------------------------------------------
# Value strategies
# ---------------------------------------------------------------------------

# Dict keys starting with "$" are the v1 codec's tag namespace; a user
# mapping shaped exactly like a tag is ambiguous by design there, so the
# strategies stay out of it.
_texts = st.text(max_size=12).filter(lambda s: not s.startswith("$"))
_uids = st.builds(
    UID,
    st.integers(min_value=0, max_value=2**40),
    st.sampled_from(["Vehicle", "Doc", "Класс"]),
)
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: exercises the v2 bigint tag
    st.floats(allow_nan=False, allow_infinity=False),
    _texts,
    st.binary(max_size=32),
    _uids,
    st.builds(SetOf, st.sampled_from(["Engine", "Paragraph"])),
)
_keys = st.one_of(
    _texts,
    st.integers(min_value=-(2**70), max_value=2**70),
    st.booleans(),
    st.none(),
    _uids,
    st.tuples(st.integers(), st.text(max_size=6)),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_texts, children, max_size=4),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=16,
)


class TestCodecProperties:
    @given(value=_values)
    @settings(max_examples=200, deadline=None)
    def test_v1_round_trip(self, value):
        data = encode_result_bytes(1, 7, value)
        frame = decode_payload(1, data[4:])
        assert frame["id"] == 7 and frame["ok"] is True
        assert wire_decode(frame["result"]) == value

    @given(value=_values)
    @settings(max_examples=200, deadline=None)
    def test_v2_round_trip(self, value):
        data = encode_result_bytes(2, 7, value)
        frame = decode_payload(2, data[4:])
        assert frame["id"] == 7 and frame["ok"] is True
        assert frame["result"] == value

    @given(
        request_id=st.integers(min_value=-(2**63), max_value=2**63 - 1),
        op=st.text(min_size=1, max_size=20),
        args=st.dictionaries(_texts, _values, max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_v2_request_round_trip(self, request_id, op, args):
        data = encode_request_bytes(2, request_id, op, args)
        frame = decode_payload(2, data[4:])
        assert frame == {"id": request_id, "op": op, "args": args}

    @given(value=_values)
    @settings(max_examples=100, deadline=None)
    def test_v2_rejects_truncation(self, value):
        data = encode_result_bytes(2, 1, value)
        payload = data[4:]
        if len(payload) > 9:  # kind + id survive; the value is cut
            with pytest.raises(ProtocolError):
                decode_payload(2, payload[:-1])
        with pytest.raises(ProtocolError):
            decode_payload(2, payload + b"\x00")  # trailing garbage


class TestFrameBoundaries:
    def test_payload_at_limit_is_framed(self):
        data = frame_bytes(b"x" * MAX_FRAME_BYTES)
        assert len(data) == 4 + MAX_FRAME_BYTES

    def test_payload_over_limit_is_refused(self):
        with pytest.raises(ProtocolError):
            frame_bytes(b"x" * (MAX_FRAME_BYTES + 1))

    def test_error_detection_by_version(self):
        v2_err = encode_error_bytes(2, 3, ValueError("x"))[4:]
        v2_ok = encode_result_bytes(2, 3, "fine")[4:]
        v1_err = encode_error_bytes(1, 3, ValueError("x"))[4:]
        v1_ok = encode_result_bytes(1, 3, "fine")[4:]
        assert is_error_payload(2, v2_err)
        assert not is_error_payload(2, v2_ok)
        assert is_error_payload(1, v1_err)
        assert not is_error_payload(1, v1_ok)
        # A v1 result whose *content* contains the error prefix text must
        # not be mistaken for an error (the regex is anchored at byte 0).
        tricky = encode_result_bytes(1, 3, '{"id":3,"ok":false')[4:]
        assert not is_error_payload(1, tricky)


class TestErrorHardening:
    def test_hostile_payload_cannot_shadow_code(self):
        hostile = {
            "code": "LOCK_CONFLICT",
            "message": "hm",
            "data": {
                "code": "IM_A_TEAPOT",       # sealed: identity
                "message": "replaced",        # sealed
                "add_note": "callable name",  # not declared by the class
                "planted": 123,               # not declared at all
                "resource": ["instance", 5],  # declared: must reattach
            },
        }
        error = build_error(hostile)
        assert isinstance(error, LockConflictError)
        assert error.code == "LOCK_CONFLICT"
        assert str(error) == "hm"
        assert error.resource == ["instance", 5]
        assert not hasattr(error, "planted")
        assert callable(error.add_note)  # still the method, not a string

    def test_wire_fields_reattach_renamed_attributes(self):
        # These two classes store state under a different name than their
        # constructor parameter (or set it post-construction) — their
        # wire_fields declarations keep the attributes crossing the wire.
        shard_error = build_error({
            "code": "SHARD_UNAVAILABLE", "message": "m", "data": {"shard": 3},
        })
        assert isinstance(shard_error, ShardUnavailableError)
        assert shard_error.shard == 3
        class_error = build_error({
            "code": "UNKNOWN_CLASS", "message": "m",
            "data": {"class_name": "Ghost"},
        })
        assert isinstance(class_error, UnknownClassError)
        assert class_error.class_name == "Ghost"


# ---------------------------------------------------------------------------
# End-to-end: negotiation, pipelining, disconnect semantics
# ---------------------------------------------------------------------------


@pytest.fixture()
def handle():
    with ServerThread(database=Database()) as server:
        yield server


def _doc_schema(client):
    client.make_class("Doc", attributes=[
        {"name": "Text", "domain": "string"},
        {"name": "Blob", "domain": "string"},
    ])


class TestEndToEnd:
    def test_v2_session_full_data_path(self, handle):
        with Client(port=handle.port) as client:
            assert client.protocol_version == 2
            _doc_schema(client)
            doc = client.make("Doc", values={"Text": "héllo"})
            assert isinstance(doc, UID)
            snapshot = client.resolve(doc)
            assert snapshot["values"]["Text"] == "héllo"
            assert client.instances_of("Doc") == [doc]

    def test_v1_client_against_v2_default_server(self, handle):
        with Client(port=handle.port, versions=(1,)) as client:
            assert client.protocol_version == 1
            _doc_schema(client)
            doc = client.make("Doc", values={"Text": "old codec"})
            assert client.value(doc, "Text") == "old codec"
            with client.transaction():
                client.set_value(doc, "Text", "still works")
            assert client.value(doc, "Text") == "still works"

    def test_handshake_advertises_pipeline_depth(self, handle):
        with Client(port=handle.port) as client:
            # The server's hello result carries its pipelining budget.
            assert client.pipeline_depth >= 1

    def test_mixed_version_sessions_share_a_server(self, handle):
        with Client(port=handle.port) as new, \
                Client(port=handle.port, versions=(1,)) as old:
            _doc_schema(new)
            doc = new.make("Doc", values={"Text": "shared"})
            assert old.value(doc, "Text") == "shared"
            old.set_value(doc, "Text", "both ways")
            assert new.value(doc, "Text") == "both ways"

    def test_image_cache_hits_on_repeated_resolve(self, tmp_path):
        # The cache keys on the journal's image digest, so it exists only
        # for journal-backed databases.
        from repro.storage.durable import DurableDatabase

        database = DurableDatabase(str(tmp_path / "data"))
        try:
            with ServerThread(database=database) as server, \
                    Client(port=server.port) as client:
                _doc_schema(client)
                doc = client.make("Doc", values={"Text": "cached"})
                first = client.resolve(doc)
                second = client.resolve(doc)
                assert first == second
                cache = client.stats()["image_cache"]
                assert cache["hits"] >= 1
                # A mutation changes the digest: the stale entry is never
                # served again.
                client.set_value(doc, "Text", "fresher")
                assert client.resolve(doc)["values"]["Text"] == "fresher"
        finally:
            database.close()


class TestPipelining:
    def test_batch_results_in_order(self, handle):
        with Client(port=handle.port) as client:
            _doc_schema(client)
            docs = [client.make("Doc", values={"Text": f"d{i}"})
                    for i in range(8)]
            pipe = client.pipeline()
            assert isinstance(pipe, Pipeline)
            handles = [pipe.resolve(doc) for doc in docs]
            assert all(not h.done for h in handles)
            pipe.flush()
            texts = [h.result()["values"]["Text"] for h in handles]
            assert texts == [f"d{i}" for i in range(8)]
            batches = client.stats()["server"]["pipelined_batches"]
            assert batches >= 1

    def test_per_request_error_isolation(self, handle):
        with Client(port=handle.port) as client:
            _doc_schema(client)
            doc = client.make("Doc", values={"Text": "ok"})
            with client.pipeline() as pipe:
                before = pipe.resolve(doc)
                broken = pipe.resolve(UID(999999, "Doc"))
                after = pipe.resolve(doc)
            assert before.result()["values"]["Text"] == "ok"
            with pytest.raises(UnknownObjectError):
                broken.result()
            # The failed request did not poison the rest of the batch.
            assert after.result()["values"]["Text"] == "ok"

    def test_mutations_pipeline_too(self, handle):
        with Client(port=handle.port) as client:
            _doc_schema(client)
            doc = client.make("Doc", values={"Text": "v0"})
            pipe = client.pipeline()
            for i in range(5):
                pipe.set_value(doc, "Text", f"v{i + 1}")
            final = pipe.resolve(doc)
            pipe.flush()
            assert final.result()["values"]["Text"] == "v5"

    def test_unflushed_handle_refuses_result(self, handle):
        with Client(port=handle.port) as client:
            pipe = client.pipeline()
            handle_ = pipe.call("ping")
            with pytest.raises(RuntimeError, match="not flushed"):
                handle_.result()
            pipe.flush()
            assert handle_.result() == "pong"

    def test_killed_connection_retryable_batch_reconnects(self, handle):
        with Client(port=handle.port, max_retries=4, backoff=0.01) as client:
            _doc_schema(client)
            doc = client.make("Doc", values={"Text": "x"})
            with fault_scope() as faults:
                faults.add("server.send_frame", "kill")
                pipe = client.pipeline()
                handles = [pipe.call("ping"), pipe.resolve(doc)]
                pipe.flush()
                # The whole batch was re-sent on a fresh connection: every
                # op in it is retryable, so that is safe.
                assert handles[0].result() == "pong"
                assert handles[1].result()["values"]["Text"] == "x"
                assert faults.hit_count("server.send_frame") >= 1

    def test_killed_connection_mid_mutating_batch_raises(self, handle):
        with Client(port=handle.port, max_retries=4, backoff=0.01) as client:
            _doc_schema(client)
            doc = client.make("Doc", values={"Text": "v0"})
            with fault_scope() as faults:
                faults.add("server.send_frame", "kill")
                pipe = client.pipeline()
                pipe.call("ping")
                pipe.set_value(doc, "Text", "poisoned?")
                with pytest.raises(ConnectionError, match="may have executed"):
                    pipe.flush()
            # RETRYABLE_OPS semantics: the batch contained a mutation, so
            # it must NOT have been blind-resent — the set_value executed
            # exactly once (before the response frame was killed).
            assert client.value(doc, "Text") == "poisoned?"
