"""Tests for role-based authorization ([RABI88] substrate)."""

import pytest

from repro import AccessDenied
from repro.authorization.roles import RoleAuthorizationEngine, RoleManager
from repro.errors import AuthorizationError


@pytest.fixture
def env(figure5_db):
    database, handles = figure5_db
    roles = RoleManager()
    roles.define_role("designer")
    roles.define_role("reviewer")
    roles.define_role("chief", juniors=["designer", "reviewer"])
    engine = RoleAuthorizationEngine(database, roles)
    return database, handles, roles, engine


class TestRoleManager:
    def test_junior_closure(self, env):
        _, _, roles, _ = env
        assert roles.junior_closure("chief") == {"chief", "designer", "reviewer"}
        assert roles.junior_closure("designer") == {"designer"}

    def test_cycle_rejected(self, env):
        _, _, roles, _ = env
        with pytest.raises(AuthorizationError):
            roles.add_seniority("designer", "chief")
        with pytest.raises(AuthorizationError):
            roles.define_role("self", juniors=["self"])

    def test_assignment(self, env):
        _, _, roles, _ = env
        roles.assign("alice", "chief")
        assert roles.roles_of("alice") == ["chief"]
        assert roles.principals("alice") == {"alice", "chief", "designer",
                                             "reviewer"}
        roles.unassign("alice", "chief")
        assert roles.principals("alice") == {"alice"}

    def test_unknown_role_assignment(self, env):
        _, _, roles, _ = env
        with pytest.raises(AuthorizationError):
            roles.assign("bob", "manager")

    def test_multiple_roles(self, env):
        _, _, roles, _ = env
        roles.assign("bob", "designer")
        roles.assign("bob", "reviewer")
        assert roles.principals("bob") == {"bob", "designer", "reviewer"}


class TestRoleGrants:
    def test_role_grant_applies_to_members(self, env):
        database, h, roles, engine = env
        engine.grant("designer", "sR", on_instance=h["j"])
        roles.assign("alice", "designer")
        assert engine.check("alice", "R", h["p"])
        assert not engine.check("bob", "R", h["p"])  # not a member

    def test_seniority_inherits_grants(self, env):
        database, h, roles, engine = env
        engine.grant("designer", "sR", on_instance=h["j"])
        engine.grant("reviewer", "sR", on_instance=h["k"])
        roles.assign("carol", "chief")
        # Chief inherits both junior roles' authorizations.
        assert engine.check("carol", "R", h["p"])
        assert engine.check("carol", "R", h["q"])

    def test_junior_does_not_inherit_senior(self, env):
        database, h, roles, engine = env
        engine.grant("chief", "sW", on_instance=h["j"])
        roles.assign("dave", "designer")
        assert not engine.check("dave", "W", h["p"])

    def test_personal_and_role_grants_combine(self, env):
        database, h, roles, engine = env
        engine.grant("designer", "sR", on_instance=h["j"])
        engine.grant("erin", "sW", on_instance=h["k"])
        roles.assign("erin", "designer")
        # Strongest-wins on the shared component across principals.
        assert engine.check("erin", "W", h["o_prime"])
        assert engine.check("erin", "R", h["o_prime"])

    def test_explain_names_the_role(self, env):
        database, h, roles, engine = env
        engine.grant("designer", "sR", on_instance=h["j"])
        roles.assign("alice", "designer")
        reasons = engine.explain("alice", h["p"])
        assert any("via role designer" in why for _grant, why in reasons)

    def test_role_conflict_denies_and_audits(self, env):
        database, h, roles, engine = env
        # Two roles carry contradictory strong grants; a user holding both
        # is denied on the overlap, and audit() pinpoints the objects.
        engine.grant("designer", "sW", on_instance=h["j"])
        engine.grant("reviewer", "s¬R", on_instance=h["k"])
        roles.assign("frank", "designer")
        roles.assign("frank", "reviewer")
        with pytest.raises(AccessDenied):
            engine.require("frank", "W", h["o_prime"])
        conflicted = engine.audit("frank")
        assert h["o_prime"] in conflicted
        assert h["p"] not in conflicted  # only under designer's grant

    def test_weak_role_grant_overridden_by_strong_personal(self, env):
        database, h, roles, engine = env
        engine.grant("reviewer", "w¬W", on_instance=h["j"])
        engine.grant("grace", "sW", on_instance=h["j"])
        roles.assign("grace", "reviewer")
        assert engine.check("grace", "W", h["p"])

    def test_revoking_role_grant_affects_members(self, env):
        database, h, roles, engine = env
        engine.grant("designer", "sR", on_instance=h["j"])
        roles.assign("alice", "designer")
        assert engine.check("alice", "R", h["p"])
        engine.revoke("designer", "sR", on_instance=h["j"])
        assert not engine.check("alice", "R", h["p"])
