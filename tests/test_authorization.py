"""Tests for the authorization subsystem (paper Section 6, Figure 6)."""

import pytest

from repro import AccessDenied, AttributeSpec, AuthorizationConflict, Database
from repro.authorization import (
    AuthorizationEngine,
    AuthType,
    Authorization,
    FIGURE6_ATOMS,
    combine,
    conflicts,
    figure6_matrix,
    parse_atom,
    render_figure6,
)


class TestAtoms:
    @pytest.mark.parametrize("text", ["sR", "wR", "sW", "wW", "s¬R", "w¬R",
                                      "s¬W", "w¬W"])
    def test_parse_render_roundtrip(self, text):
        assert str(Authorization.parse(text)) == text

    def test_ascii_negation_accepted(self):
        assert Authorization.parse("s-R") == Authorization.parse("s¬R")
        assert Authorization.parse("w~W") == Authorization.parse("w¬W")

    @pytest.mark.parametrize("bad", ["", "x", "zR", "sQ", "s"])
    def test_bad_atoms_rejected(self, bad):
        with pytest.raises(ValueError):
            Authorization.parse(bad)

    def test_positive_write_implies_read(self):
        atom = parse_atom("sW")
        assert (AuthType.READ, True) in atom.implied_types()

    def test_negative_read_implies_negative_write(self):
        atom = parse_atom("s¬R")
        assert (AuthType.WRITE, False) in atom.implied_types()

    def test_positive_read_implies_only_itself(self):
        assert parse_atom("sR").implied_types() == {(AuthType.READ, True)}

    def test_implies_same_strength_only(self):
        assert parse_atom("sW").implies(parse_atom("sR"))
        assert not parse_atom("sW").implies(parse_atom("wR"))

    def test_figure6_atom_order(self):
        assert [str(a) for a in FIGURE6_ATOMS] == [
            "sR", "wR", "sW", "wW", "s¬R", "w¬R", "s¬W", "w¬W",
        ]


class TestCombine:
    def test_paper_example_strong_r_plus_strong_w(self):
        assert combine(["sR", "sW"]).render() == "sW"

    def test_paper_example_strong_negatives(self):
        assert combine(["s¬R", "s¬W"]).render() == "s¬R"

    def test_contradictory_strongs_conflict(self):
        assert combine(["sR", "s¬R"]).conflict
        assert combine(["sW", "s¬W"]).conflict

    def test_paper_example_sw_vs_snr_conflict(self):
        # sW implies sR; s¬R implies s¬W: double contradiction.
        assert combine(["sW", "s¬R"]).conflict

    def test_read_grant_with_write_prohibition_coexist(self):
        resolution = combine(["sR", "s¬W"])
        assert not resolution.conflict
        assert resolution.permits("R") and resolution.denies("W")

    def test_strong_overrides_weak_entirely(self):
        assert combine(["sR", "w¬R"]).render() == "sR"
        assert combine(["sW", "w¬R"]).render() == "sW"

    def test_weak_weak_contradiction_conflicts(self):
        assert combine(["wR", "w¬R"]).conflict
        assert combine(["wW", "w¬R"]).conflict

    def test_compatible_weaks_coexist(self):
        resolution = combine(["wR", "w¬W"])
        assert not resolution.conflict
        assert resolution.permits("R") and resolution.denies("W")

    def test_empty_input(self):
        resolution = combine([])
        assert not resolution.conflict
        assert not resolution.permits("R") and not resolution.denies("R")

    def test_single_atom(self):
        assert combine(["wW"]).render() == "wW"

    def test_duplicate_atoms_idempotent(self):
        assert combine(["sR", "sR"]).render() == "sR"

    def test_conflicts_helper(self):
        assert conflicts("sR", "s¬R")
        assert not conflicts("sR", "sW")


class TestFigure6Matrix:
    def test_full_size(self):
        matrix = figure6_matrix()
        assert len(matrix) == 64

    def test_diagonal_never_conflicts(self):
        matrix = figure6_matrix()
        for atom in FIGURE6_ATOMS:
            assert not matrix[(atom, atom)].conflict

    def test_symmetry(self):
        matrix = figure6_matrix()
        for row in FIGURE6_ATOMS:
            for col in FIGURE6_ATOMS:
                a, b = matrix[(row, col)], matrix[(col, row)]
                assert a.conflict == b.conflict
                assert a.effective == b.effective

    def test_conflict_count_is_stable(self):
        # Regression pin: the derived matrix has exactly these conflicts.
        matrix = figure6_matrix()
        conflict_cells = sum(1 for r in matrix.values() if r.conflict)
        assert conflict_cells == 12

    def test_render_contains_conflict(self):
        assert "Conflict" in render_figure6()


@pytest.fixture
def auth_setup(figure5_db):
    database, handles = figure5_db
    return database, handles, AuthorizationEngine(database)


class TestImplicitAuthorization:
    def test_composite_grant_covers_components(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "sR", on_instance=h["j"])
        assert engine.check("u", "R", h["j"])
        assert engine.check("u", "R", h["o_prime"])
        assert engine.check("u", "R", h["p"])
        assert not engine.check("u", "R", h["q"])

    def test_shared_component_gets_strongest(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "sR", on_instance=h["j"])
        engine.grant("u", "sW", on_instance=h["k"])
        assert engine.check("u", "W", h["o_prime"])
        assert engine.check("u", "R", h["o_prime"])
        assert not engine.check("u", "W", h["p"])  # only under j (sR)

    def test_grant_conflict_rejected(self, auth_setup):
        # Paper: s¬R from j, then sW on k fails (shared o').
        database, h, engine = auth_setup
        engine.grant("u", "s¬R", on_instance=h["j"])
        with pytest.raises(AuthorizationConflict):
            engine.grant("u", "sW", on_instance=h["k"])

    def test_weak_then_strong_allowed(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "w¬R", on_instance=h["j"])
        engine.grant("u", "sW", on_instance=h["k"])  # overrides the weak
        assert engine.check("u", "W", h["o_prime"])

    def test_per_user_isolation(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("alice", "sR", on_instance=h["j"])
        assert not engine.check("bob", "R", h["j"])

    def test_database_grant_covers_everything(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("root", "sW", database=True)
        for uid in h.values():
            assert engine.check("root", "W", uid)

    def test_class_grant_covers_instances_and_components(self):
        database = Database()
        database.make_class("AutoBody")
        database.make_class("Vehicle", attributes=[
            AttributeSpec("Body", domain="AutoBody", composite=True,
                          exclusive=True, dependent=False),
        ])
        body_in = database.make("AutoBody")
        body_out = database.make("AutoBody")
        vehicle = database.make("Vehicle", values={"Body": body_in})
        engine = AuthorizationEngine(database)
        engine.grant("u", "sR", on_class="Vehicle")
        assert engine.check("u", "R", vehicle)
        assert engine.check("u", "R", body_in)
        # "the authorization on Vehicle does not imply the same
        # authorization on all instances of Autobody" — only components.
        assert not engine.check("u", "R", body_out)

    def test_class_grant_covers_subclass_instances(self):
        database = Database()
        database.make_class("Doc")
        database.make_class("Memo", superclasses=["Doc"])
        memo = database.make("Memo")
        engine = AuthorizationEngine(database)
        engine.grant("u", "sR", on_class="Doc")
        assert engine.check("u", "R", memo)

    def test_explain_reports_sources(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "sR", on_instance=h["j"])
        reasons = engine.explain("u", h["o_prime"])
        assert len(reasons) == 1
        assert "composite object" in reasons[0][1]


class TestGrantManagement:
    def test_revoke(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "sR", on_instance=h["j"])
        assert engine.revoke("u", "sR", on_instance=h["j"])
        assert not engine.check("u", "R", h["p"])

    def test_revoke_missing_returns_false(self, auth_setup):
        database, h, engine = auth_setup
        assert not engine.revoke("u", "sR", on_instance=h["j"])

    def test_exactly_one_target_required(self, auth_setup):
        database, h, engine = auth_setup
        with pytest.raises(ValueError):
            engine.grant("u", "sR")
        with pytest.raises(ValueError):
            engine.grant("u", "sR", on_class="Root", on_instance=h["j"])

    def test_stored_record_count(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "sR", on_instance=h["j"])
        engine.grant("v", "sR", on_instance=h["k"])
        assert engine.stored_record_count() == 2

    def test_negative_grant_then_check(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "s¬W", on_instance=h["j"])
        resolution = engine.resolve("u", h["p"])
        assert resolution.denies("W") and not resolution.permits("R")


class TestRequire:
    def test_require_passes(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "sR", on_instance=h["j"])
        assert engine.require("u", "R", h["p"])

    def test_require_denies_on_absence(self, auth_setup):
        database, h, engine = auth_setup
        with pytest.raises(AccessDenied) as excinfo:
            engine.require("u", "R", h["p"])
        assert "no" in str(excinfo.value)

    def test_require_denies_on_negative(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "s¬R", on_instance=h["j"])
        with pytest.raises(AccessDenied) as excinfo:
            engine.require("u", "R", h["p"])
        assert "negative" in str(excinfo.value)

    def test_write_implies_read_at_check(self, auth_setup):
        database, h, engine = auth_setup
        engine.grant("u", "sW", on_instance=h["j"])
        assert engine.require("u", "R", h["p"])
