"""Tests for schema evolution (paper Section 4)."""

import pytest

from repro import (
    AttributeSpec,
    Database,
    SetOf,
    SchemaEvolutionError,
    StateDependentChangeRejected,
)
from repro.schema.evolution import SchemaEvolutionManager


@pytest.fixture
def evo_db():
    database = Database()
    manager = SchemaEvolutionManager(database)
    database.make_class("Part")
    database.make_class("Widget", attributes=[
        AttributeSpec("Piece", domain="Part", composite=True,
                      exclusive=True, dependent=True),
        AttributeSpec("Ref", domain="Part"),
        AttributeSpec("Label", domain="string"),
    ])
    return database, manager


def _flags(database, uid):
    refs = database.peek(uid).reverse_references
    return [(r.exclusive, r.dependent) for r in refs]


class TestStateIndependentImmediate:
    def test_i1_composite_to_weak(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        manager.make_noncomposite("Widget", "Piece")
        assert not database.compositep("Widget", "Piece")
        assert database.resolve(part).reverse_references == []
        # Forward value survives as a weak reference.
        assert database.value(widget, "Piece") == part

    def test_i2_exclusive_to_shared(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        manager.make_shared("Widget", "Piece")
        assert database.shared_compositep("Widget", "Piece")
        assert _flags(database, part) == [(False, True)]
        database.validate()

    def test_i2_enables_sharing(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        w1 = database.make("Widget", values={"Piece": part})
        manager.make_shared("Widget", "Piece")
        w2 = database.make("Widget", values={"Piece": part})
        assert set(database.parents_of(part)) == {w1, w2}

    def test_i3_dependent_to_independent(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        manager.make_independent("Widget", "Piece")
        assert _flags(database, part) == [(True, False)]
        database.delete(widget)
        assert database.exists(part)  # deletion no longer cascades

    def test_i4_independent_to_dependent(self, evo_db):
        database, manager = evo_db
        manager.make_independent("Widget", "Piece")
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        manager.make_dependent("Widget", "Piece")
        assert _flags(database, part) == [(True, True)]
        database.delete(widget)
        assert not database.exists(part)

    def test_noop_changes_rejected(self, evo_db):
        database, manager = evo_db
        with pytest.raises(SchemaEvolutionError):
            manager.make_dependent("Widget", "Piece")  # already dependent
        manager.make_shared("Widget", "Piece")
        with pytest.raises(SchemaEvolutionError):
            manager.make_shared("Widget", "Piece")

    def test_change_on_weak_attribute_rejected(self, evo_db):
        database, manager = evo_db
        with pytest.raises(SchemaEvolutionError):
            manager.make_shared("Widget", "Ref")

    def test_only_owner_attribute_flags_touched(self, evo_db):
        # Two classes share the domain; changing one leaves the other's
        # reverse references alone.
        database, manager = evo_db
        database.make_class("Crate", attributes=[
            AttributeSpec("Piece", domain="Part", composite=True,
                          exclusive=True, dependent=True),
        ])
        p1, p2 = database.make("Part"), database.make("Part")
        database.make("Widget", values={"Piece": p1})
        database.make("Crate", values={"Piece": p2})
        manager.make_independent("Widget", "Piece")
        assert _flags(database, p1) == [(True, False)]
        assert _flags(database, p2) == [(True, True)]


class TestStateIndependentDeferred:
    def test_deferred_applies_on_access(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        manager.make_independent("Widget", "Piece", mode="deferred")
        # Not yet applied...
        assert database.peek(part).reverse_references[0].dependent
        # ...until the object is accessed.
        database.resolve(part)
        assert not database.peek(part).reverse_references[0].dependent
        assert manager.deferred_applications == 1

    def test_new_instances_born_current(self, evo_db):
        # "the changes issued before the creation of the instance need not
        # be applied to this instance."
        database, manager = evo_db
        manager.make_shared("Widget", "Piece", mode="deferred")
        part = database.make("Part")
        assert part.number >= 0
        inst = database.peek(part)
        assert inst.change_count == manager.oplog.current_cc
        database.resolve(part)
        assert manager.deferred_applications == 0

    def test_multiple_deferred_changes_replay_in_order(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        manager.make_shared("Widget", "Piece", mode="deferred")
        manager.make_independent("Widget", "Piece", mode="deferred")
        database.resolve(part)
        assert _flags(database, part) == [(False, False)]
        assert manager.deferred_applications == 2

    def test_deferred_i1_drops_reverse_reference(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        manager.make_noncomposite("Widget", "Piece", mode="deferred")
        database.resolve(part)
        assert database.peek(part).reverse_references == []

    def test_catch_up_all(self, evo_db):
        database, manager = evo_db
        parts = [database.make("Part") for _ in range(5)]
        for part in parts:
            database.make("Widget", values={"Piece": part})
        manager.make_independent("Widget", "Piece", mode="deferred")
        manager.catch_up_all()
        assert manager.deferred_applications == 5
        for part in parts:
            assert _flags(database, part) == [(True, False)]

    def test_catch_up_is_idempotent(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        manager.make_shared("Widget", "Piece", mode="deferred")
        database.resolve(part)
        database.resolve(part)
        assert manager.deferred_applications == 1

    def test_unknown_mode_rejected(self, evo_db):
        database, manager = evo_db
        with pytest.raises(SchemaEvolutionError):
            manager.make_shared("Widget", "Piece", mode="lazy")


class TestStateDependent:
    def test_d1_weak_to_exclusive(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        widget = database.make("Widget", values={"Ref": part})
        manager.make_exclusive_composite("Widget", "Ref")
        assert database.exclusive_compositep("Widget", "Ref")
        assert database.parents_of(part) == [widget]
        database.validate()

    def test_d1_rejected_when_target_already_composite(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part, "Ref": part})
        with pytest.raises(StateDependentChangeRejected) as excinfo:
            manager.make_exclusive_composite("Widget", "Ref")
        assert excinfo.value.change == "D1"
        assert excinfo.value.offending_uid == part

    def test_d1_rejected_when_two_holders(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Ref": part})
        database.make("Widget", values={"Ref": part})
        with pytest.raises(StateDependentChangeRejected):
            manager.make_exclusive_composite("Widget", "Ref")

    def test_d2_weak_to_shared(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        w1 = database.make("Widget", values={"Ref": part})
        w2 = database.make("Widget", values={"Ref": part})
        manager.make_shared_composite("Widget", "Ref")
        assert set(database.parents_of(part)) == {w1, w2}
        database.validate()

    def test_d2_rejected_on_exclusive_target(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})   # exclusive ref
        database.make("Widget", values={"Ref": part})
        with pytest.raises(StateDependentChangeRejected) as excinfo:
            manager.make_shared_composite("Widget", "Ref")
        assert excinfo.value.change == "D2"

    def test_d3_shared_to_exclusive(self, evo_db):
        database, manager = evo_db
        manager.make_shared("Widget", "Piece")
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        manager.make_exclusive("Widget", "Piece")
        assert database.exclusive_compositep("Widget", "Piece")
        assert _flags(database, part) == [(True, True)]

    def test_d3_rejected_when_actually_shared(self, evo_db):
        database, manager = evo_db
        manager.make_shared("Widget", "Piece")
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        database.make("Widget", values={"Piece": part})
        with pytest.raises(StateDependentChangeRejected) as excinfo:
            manager.make_exclusive("Widget", "Piece")
        assert excinfo.value.change == "D3"

    def test_d_changes_on_wrong_state_rejected(self, evo_db):
        database, manager = evo_db
        with pytest.raises(SchemaEvolutionError):
            manager.make_exclusive_composite("Widget", "Piece")  # already composite
        with pytest.raises(SchemaEvolutionError):
            manager.make_exclusive("Widget", "Piece")  # already exclusive
        with pytest.raises(SchemaEvolutionError):
            manager.make_shared_composite("Widget", "Label")  # primitive domain

    def test_rejected_change_leaves_schema_untouched(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        database.make("Widget", values={"Piece": part, "Ref": part})
        with pytest.raises(StateDependentChangeRejected):
            manager.make_exclusive_composite("Widget", "Ref")
        assert not database.compositep("Widget", "Ref")
        database.validate()


class TestStructuralChanges:
    def test_drop_attribute_cascades_dependent(self, evo_db):
        database, manager = evo_db
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        manager.drop_attribute("Widget", "Piece")
        assert not database.exists(part)
        assert not database.classdef("Widget").has_attribute("Piece")
        assert database.exists(widget)
        database.validate()

    def test_drop_independent_attribute_preserves(self, evo_db):
        database, manager = evo_db
        manager.make_independent("Widget", "Piece")
        part = database.make("Part")
        database.make("Widget", values={"Piece": part})
        manager.drop_attribute("Widget", "Piece")
        assert database.exists(part)
        assert database.resolve(part).reverse_references == []

    def test_drop_shared_attribute_respects_ds_rule(self, evo_db):
        database, manager = evo_db
        database.make_class("Folder", attributes=[
            AttributeSpec("Docs", domain=SetOf("Part"), composite=True,
                          exclusive=False, dependent=True),
        ])
        database.make_class("Shelf", attributes=[
            AttributeSpec("Docs", domain=SetOf("Part"), composite=True,
                          exclusive=False, dependent=True),
        ])
        part = database.make("Part")
        database.make("Folder", values={"Docs": [part]})
        database.make("Shelf", values={"Docs": [part]})
        manager.drop_attribute("Folder", "Docs")
        assert database.exists(part)  # Shelf still holds it
        manager.drop_attribute("Shelf", "Docs")
        assert not database.exists(part)

    def test_drop_inherited_attribute_rejected(self, evo_db):
        database, manager = evo_db
        database.make_class("SubWidget", superclasses=["Widget"])
        with pytest.raises(SchemaEvolutionError):
            manager.drop_attribute("SubWidget", "Piece")

    def test_drop_attribute_covers_subclasses(self, evo_db):
        database, manager = evo_db
        database.make_class("SubWidget", superclasses=["Widget"])
        part = database.make("Part")
        sub = database.make("SubWidget", values={"Piece": part})
        manager.drop_attribute("Widget", "Piece")
        assert not database.exists(part)
        assert not database.classdef("SubWidget").has_attribute("Piece")
        assert database.peek(sub).get("Piece") is None

    def test_remove_superclass_drops_composite_attribute(self, evo_db):
        database, manager = evo_db
        database.make_class("Extra")
        database.make_class("Combo", superclasses=["Widget", "Extra"])
        part = database.make("Part")
        combo = database.make("Combo", values={"Piece": part})
        lost = manager.remove_superclass("Combo", "Widget")
        assert "Piece" in lost
        assert not database.exists(part)
        assert not database.classdef("Combo").has_attribute("Piece")
        assert database.exists(combo)

    def test_remove_unrelated_superclass_rejected(self, evo_db):
        database, manager = evo_db
        database.make_class("Extra")
        with pytest.raises(SchemaEvolutionError):
            manager.remove_superclass("Widget", "Extra")

    def test_drop_class_deletes_instances_and_reattaches(self, evo_db):
        database, manager = evo_db
        database.make_class("SubWidget", superclasses=["Widget"], attributes=[
            AttributeSpec("Extra", domain="string"),
        ])
        part = database.make("Part")
        widget = database.make("Widget", values={"Piece": part})
        sub = database.make("SubWidget")
        manager.drop_class("Widget")
        assert not database.exists(widget)
        assert not database.exists(part)
        assert database.exists(sub)  # subclass instances survive
        assert "Widget" not in database.lattice
        assert database.lattice.direct_superclasses("SubWidget") == ["object"]
        # Subclass loses the dropped class's attributes.
        assert not database.classdef("SubWidget").has_attribute("Piece")

    def test_change_attribute_inheritance(self, evo_db):
        database, manager = evo_db
        database.make_class("Alt", attributes=[
            AttributeSpec("Label", domain="string", init="alt"),
        ])
        database.make_class("Both", superclasses=["Widget", "Alt"])
        assert database.classdef("Both").attribute("Label").init is None
        manager.change_attribute_inheritance("Both", "Label", "Alt")
        assert database.classdef("Both").attribute("Label").init == "alt"

    def test_change_inheritance_unknown_attribute(self, evo_db):
        database, manager = evo_db
        database.make_class("Alt")
        database.make_class("Both2", superclasses=["Widget", "Alt"])
        with pytest.raises(SchemaEvolutionError):
            manager.change_attribute_inheritance("Both2", "Label", "Alt")
