"""Tests for durability: checkpointing, journaling, crash recovery."""

import pytest

from repro import AttributeSpec, SetOf
from repro.storage.durable import DurableDatabase
from repro.storage.journal import JOURNAL_NAME, SNAPSHOT_NAME, Journal


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "db"


def _build(directory):
    db = DurableDatabase(directory)
    db.make_class("Paragraph", attributes=[AttributeSpec("Text", domain="string")])
    db.make_class("Section", attributes=[
        AttributeSpec("Content", domain=SetOf("Paragraph"), composite=True,
                      exclusive=False, dependent=True),
    ])
    return db


class TestRoundTrip:
    def test_empty_reopen(self, store_dir):
        db = DurableDatabase(store_dir)
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert len(db2) == 0

    def test_schema_survives(self, store_dir):
        db = _build(store_dir)
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert db2.compositep("Section", "Content")
        assert db2.classdef("Paragraph").attribute("Text").domain == "string"

    def test_instances_survive_without_checkpoint(self, store_dir):
        # Journal-only recovery: no checkpoint after the DDL one.
        db = _build(store_dir)
        p = db.make("Paragraph", values={"Text": "hello"})
        s = db.make("Section", values={"Content": [p]})
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert db2.value(p, "Text") == "hello"
        assert db2.parents_of(p) == [s]
        db2.validate()

    def test_updates_survive(self, store_dir):
        db = _build(store_dir)
        p = db.make("Paragraph", values={"Text": "v1"})
        db.set_value(p, "Text", "v2")
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert db2.value(p, "Text") == "v2"

    def test_deletions_survive(self, store_dir):
        db = _build(store_dir)
        p = db.make("Paragraph")
        s = db.make("Section", values={"Content": [p]})
        db.delete(s)  # cascades to p (last dependent parent)
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert not db2.exists(s) and not db2.exists(p)
        assert len(db2) == 0

    def test_uid_allocation_continues(self, store_dir):
        db = _build(store_dir)
        p1 = db.make("Paragraph")
        db.close()
        db2 = DurableDatabase.open(store_dir)
        p2 = db2.make("Paragraph")
        assert p2.number > p1.number  # no UID reuse

    def test_checkpoint_truncates_journal(self, store_dir):
        db = _build(store_dir)
        for _ in range(5):
            db.make("Paragraph")
        assert db.journal.records_since_checkpoint == 5
        db.checkpoint()
        assert db.journal.records_since_checkpoint == 0
        assert (store_dir / SNAPSHOT_NAME).exists()
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert len(db2) == 5


class TestCrashRecovery:
    def test_crash_without_close(self, store_dir):
        # No close(): journal entries were fsynced per record, so a crash
        # (simulated by simply abandoning the object) loses nothing.
        db = _build(store_dir)
        p = db.make("Paragraph", values={"Text": "survives"})
        del db  # crash
        db2 = DurableDatabase.open(store_dir)
        assert db2.value(p, "Text") == "survives"

    def test_torn_final_record_discarded(self, store_dir):
        db = _build(store_dir)
        p1 = db.make("Paragraph", values={"Text": "complete"})
        db.make("Paragraph", values={"Text": "torn"})
        db.close()
        journal = store_dir / JOURNAL_NAME
        data = journal.read_bytes()
        journal.write_bytes(data[:-3])  # tear the last record
        db2 = DurableDatabase.open(store_dir)
        assert db2.value(p1, "Text") == "complete"
        texts = [inst.get("Text") for inst in db2.instances_of("Paragraph")]
        assert "torn" not in texts

    def test_reverse_references_intact_after_recovery(self, store_dir):
        db = _build(store_dir)
        p = db.make("Paragraph")
        s1 = db.make("Section", values={"Content": [p]})
        s2 = db.make("Section", values={"Content": [p]})
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert set(db2.parents_of(p)) == {s1, s2}
        # The Deletion Rule still works on recovered state.
        db2.delete(s1)
        assert db2.exists(p)
        db2.delete(s2)
        assert not db2.exists(p)

    def test_repeated_reopen_stable(self, store_dir):
        db = _build(store_dir)
        uids = [db.make("Paragraph", values={"Text": f"p{i}"}) for i in range(3)]
        db.close()
        for _ in range(3):
            db = DurableDatabase.open(store_dir)
            assert [db.value(u, "Text") for u in uids] == ["p0", "p1", "p2"]
            db.close()

    def test_recovery_into_plain_database(self, store_dir):
        from repro import Database

        db = _build(store_dir)
        db.make("Paragraph", values={"Text": "x"})
        db.close()
        fresh = Database()
        restored, replayed = Journal.recover_into(fresh, store_dir)
        assert replayed >= 1
        assert len(fresh) == 1


class TestDurablePlusSubsystems:
    def test_schema_evolution_then_checkpoint(self, store_dir):
        from repro.schema.evolution import SchemaEvolutionManager

        db = _build(store_dir)
        manager = SchemaEvolutionManager(db)
        p = db.make("Paragraph")
        s = db.make("Section", values={"Content": [p]})
        manager.make_independent("Section", "Content")
        db.checkpoint()  # DDL via evolution requires an explicit checkpoint
        db.close()
        db2 = DurableDatabase.open(store_dir)
        assert not db2.dependent_compositep("Section", "Content")
        db2.delete(s)
        assert db2.exists(p)  # independence survived the round trip

    def test_transactions_on_durable_database(self, store_dir):
        from repro.txn import TransactionManager

        db = _build(store_dir)
        p = db.make("Paragraph", values={"Text": "orig"})
        manager = TransactionManager(db)
        txn = manager.begin()
        manager.write(txn, p, "Text", "dirty")
        manager.abort(txn)
        db.close()
        db2 = DurableDatabase.open(store_dir)
        # The abort's compensating write was journaled too.
        assert db2.value(p, "Text") == "orig"
