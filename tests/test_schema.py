"""Tests for attribute specs, class definitions, and the class lattice."""

import pytest

from repro import AttributeSpec, SetOf
from repro.errors import (
    ClassDefinitionError,
    UnknownAttributeError,
    UnknownClassError,
)
from repro.schema.classdef import ClassDef
from repro.schema.lattice import ROOT_CLASS, ClassLattice


class TestAttributeSpec:
    def test_defaults_match_paper(self):
        # ":exclusive and :dependent default to True to be compatible with
        # the semantics of composite objects currently supported in ORION."
        spec = AttributeSpec("Body", domain="AutoBody", composite=True)
        assert spec.exclusive and spec.dependent

    def test_noncomposite_by_default(self):
        assert not AttributeSpec("Color", domain="string").is_composite

    def test_primitive_composite_rejected(self):
        with pytest.raises(ClassDefinitionError):
            AttributeSpec("Color", domain="string", composite=True)

    def test_set_of_primitive_composite_rejected(self):
        with pytest.raises(ClassDefinitionError):
            AttributeSpec("Names", domain=SetOf("string"), composite=True)

    def test_bad_name_rejected(self):
        with pytest.raises(ClassDefinitionError):
            AttributeSpec("has space", domain="string")

    def test_set_domain(self):
        spec = AttributeSpec("Tires", domain=SetOf("AutoTires"))
        assert spec.is_set and spec.domain_class == "AutoTires"

    def test_kind_properties(self):
        shared = AttributeSpec(
            "Sections", domain=SetOf("Section"),
            composite=True, exclusive=False, dependent=True,
        )
        assert shared.is_shared_composite
        assert shared.is_dependent_composite
        assert not shared.is_exclusive_composite

    def test_primitive_acceptance(self):
        spec = AttributeSpec("N", domain="integer")
        assert spec.accepts_primitive(5)
        assert spec.accepts_primitive(None)
        assert not spec.accepts_primitive("five")
        assert not spec.accepts_primitive(True)  # bool is not an integer here

    def test_float_accepts_int(self):
        assert AttributeSpec("F", domain="float").accepts_primitive(3)

    def test_any_accepts_everything(self):
        spec = AttributeSpec("A", domain="any")
        assert spec.accepts_primitive("x") and spec.accepts_primitive(1.5)

    def test_evolved_copy(self):
        spec = AttributeSpec("B", domain="Body", composite=True)
        shared = spec.evolved(exclusive=False)
        assert shared.is_shared_composite and spec.is_exclusive_composite

    def test_describe_orion_syntax(self):
        spec = AttributeSpec(
            "Body", domain="AutoBody", composite=True, dependent=False
        )
        text = spec.describe()
        assert ":composite true" in text and ":dependent nil" in text


class TestClassDef:
    def test_duplicate_attribute_rejected_via_make_class(self):
        from repro import Database

        database = Database()
        with pytest.raises(ClassDefinitionError):
            database.make_class(
                "C",
                attributes=[
                    AttributeSpec("A", domain="string"),
                    AttributeSpec("A", domain="integer"),
                ],
            )

    def test_self_inheritance_rejected(self):
        with pytest.raises(ClassDefinitionError):
            ClassDef(name="C", superclasses=("C",))

    def test_predicates(self):
        classdef = ClassDef(
            name="Document",
            local={
                "Title": AttributeSpec("Title", domain="string"),
                "Sections": AttributeSpec(
                    "Sections", domain=SetOf("Section"),
                    composite=True, exclusive=False, dependent=True,
                ),
                "Annotations": AttributeSpec(
                    "Annotations", domain=SetOf("Paragraph"),
                    composite=True, exclusive=True, dependent=True,
                ),
            },
        )
        assert classdef.compositep()
        assert classdef.compositep("Sections")
        assert not classdef.compositep("Title")
        assert classdef.exclusive_compositep("Annotations")
        assert not classdef.exclusive_compositep("Sections")
        assert classdef.shared_compositep("Sections")
        assert classdef.dependent_compositep()
        assert classdef.dependent_compositep("Sections")

    def test_unknown_attribute(self):
        classdef = ClassDef(name="C")
        with pytest.raises(UnknownAttributeError):
            classdef.attribute("nope")

    def test_describe_contains_make_class(self):
        classdef = ClassDef(name="Vehicle")
        assert "make-class 'Vehicle" in classdef.describe()

    def test_default_segment_per_class(self):
        assert ClassDef(name="C").segment == "seg:C"


class TestClassLattice:
    def _lattice(self):
        lattice = ClassLattice()
        lattice.define(ClassDef(name="A", local={
            "x": AttributeSpec("x", domain="string", init="ax"),
        }))
        lattice.define(ClassDef(name="B", local={
            "x": AttributeSpec("x", domain="string", init="bx"),
            "y": AttributeSpec("y", domain="integer"),
        }))
        lattice.define(ClassDef(name="AB", superclasses=("A", "B")))
        lattice.define(ClassDef(name="AB2", superclasses=("AB",)))
        return lattice

    def test_root_exists(self):
        assert ROOT_CLASS in ClassLattice()

    def test_define_and_get(self):
        lattice = self._lattice()
        assert lattice.get("A").name == "A"

    def test_redefinition_rejected(self):
        lattice = self._lattice()
        with pytest.raises(ClassDefinitionError):
            lattice.define(ClassDef(name="A"))

    def test_primitive_name_rejected(self):
        with pytest.raises(ClassDefinitionError):
            ClassLattice().define(ClassDef(name="integer"))

    def test_unknown_superclass(self):
        with pytest.raises(UnknownClassError):
            ClassLattice().define(ClassDef(name="C", superclasses=("Nope",)))

    def test_unknown_class(self):
        with pytest.raises(UnknownClassError):
            ClassLattice().get("Nope")

    def test_default_superclass_is_root(self):
        lattice = self._lattice()
        assert lattice.direct_superclasses("A") == [ROOT_CLASS]

    def test_multiple_inheritance_first_wins(self):
        lattice = self._lattice()
        assert lattice.get("AB").attribute("x").init == "ax"
        assert lattice.get("AB").attribute("y").domain == "integer"

    def test_transitive_inheritance(self):
        lattice = self._lattice()
        assert lattice.get("AB2").has_attribute("x")
        assert lattice.get("AB2").has_attribute("y")

    def test_subclass_queries(self):
        lattice = self._lattice()
        assert lattice.direct_subclasses("A") == ["AB"]
        assert lattice.all_subclasses("A") == ["AB", "AB2"]
        assert lattice.is_subclass("AB2", "A")
        assert lattice.is_subclass("AB2", "B")
        assert not lattice.is_subclass("A", "AB2")
        assert lattice.is_subclass("A", "A")

    def test_class_hierarchy_scope(self):
        lattice = self._lattice()
        assert lattice.class_hierarchy_scope("A") == ["A", "AB", "AB2"]

    def test_all_superclasses_nearest_first(self):
        lattice = self._lattice()
        supers = lattice.all_superclasses("AB2")
        assert supers[0] == "AB"
        assert set(supers) == {"AB", "A", "B", ROOT_CLASS}

    def test_remove_reattaches_subclasses(self):
        lattice = self._lattice()
        lattice.remove("AB")
        assert "AB" not in lattice
        assert set(lattice.direct_superclasses("AB2")) == {"A", "B"}
        # AB2 still sees inherited attributes through A and B.
        assert lattice.get("AB2").has_attribute("x")
        assert lattice.get("AB2").has_attribute("y")

    def test_remove_root_rejected(self):
        with pytest.raises(ClassDefinitionError):
            ClassLattice().remove(ROOT_CLASS)

    def test_local_override(self):
        lattice = self._lattice()
        lattice.define(
            ClassDef(
                name="A2",
                superclasses=("A",),
                local={"x": AttributeSpec("x", domain="string", init="override")},
            )
        )
        assert lattice.get("A2").attribute("x").init == "override"

    def test_inherit_from_preference(self):
        lattice = self._lattice()
        lattice.define(
            ClassDef(
                name="ABpick",
                superclasses=("A", "B"),
                local={
                    "x": AttributeSpec(
                        "x", domain="string", init="bx", inherit_from="B"
                    )
                },
            )
        )
        assert lattice.get("ABpick").attribute("x").init == "bx"


class TestCompositeClassHierarchy:
    def _lattice(self):
        lattice = ClassLattice()
        lattice.define(ClassDef(name="W"))
        lattice.define(ClassDef(name="C", local={
            "w": AttributeSpec("w", domain="W", composite=True),
        }))
        lattice.define(ClassDef(name="I", local={
            "c": AttributeSpec("c", domain="C", composite=True),
            "note": AttributeSpec("note", domain="string"),
        }))
        lattice.define(ClassDef(name="K", local={
            "cs": AttributeSpec(
                "cs", domain=SetOf("C"), composite=True, exclusive=False,
                dependent=False,
            ),
        }))
        return lattice

    def test_component_classes(self):
        lattice = self._lattice()
        assert lattice.component_classes("I") == ["C", "W"]
        assert lattice.component_classes("K") == ["C", "W"]
        assert lattice.component_classes("W") == []

    def test_links_carry_reference_semantics(self):
        lattice = self._lattice()
        links = {(l.owner, l.component): l for l in lattice.composite_class_hierarchy("K")}
        assert links[("K", "C")].exclusive is False
        assert links[("C", "W")].exclusive is True

    def test_weak_attributes_excluded(self):
        lattice = self._lattice()
        assert all(l.attribute != "note" for l in lattice.composite_class_hierarchy("I"))

    def test_recursive_schema_terminates(self):
        lattice = ClassLattice()
        lattice.define(ClassDef(name="Part", local={
            "sub": AttributeSpec("sub", domain=SetOf("Part"), composite=True),
        }))
        edges = lattice.composite_class_hierarchy("Part")
        assert len(edges) == 1
        assert edges[0].component == "Part"

    def test_domain_dependents(self):
        lattice = self._lattice()
        owners = lattice.domain_dependents("C")
        assert ("I", "c") in owners and ("K", "cs") in owners
