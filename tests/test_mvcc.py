"""MVCC snapshot reads (ROADMAP item 3), proven safe by the isolation
oracle.

Five layers:

1. **Version chains** — the :class:`SnapshotManager`'s epoch-stamped
   chains: visibility at pinned epochs, tombstones, the GC floor and
   pruning bound, live fallbacks, detach hygiene.
2. **Snapshot transactions** — lock-free reads that never block behind
   X-lock holders, read-your-writes, and first-updater-wins validation
   of snapshot-mode writers.
3. **Lost-update regression** — the seeded ISO-LOST-UPDATE interleaving
   from test_isocheck must NOT reproduce once the reads are snapshot
   reads and the writes stay locked: first-updater-wins aborts the
   loser and the recorded history checks clean.
4. **The oracle e2e** — the B9 composite mix with snapshot readers,
   recorded by :class:`HistoryRecorder` and fed to ``check_history``
   (no ISO-* errors) and to ``repro-check iso --strict`` (exit 0).
5. **Truncated-replay property** — for every epoch E, a snapshot read
   at E equals the state recovered from the journal truncated at E's
   commit marker (Hypothesis, random op streams).
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import AttributeSpec, Database
from repro.analysis.history import HistoryRecorder
from repro.analysis.isocheck import check_history
from repro.errors import (
    LockConflictError,
    SnapshotConflictError,
    SnapshotTooOldError,
    TransactionStateError,
    UnknownObjectError,
)
from repro.locking.table import LockTable
from repro.mvcc import SnapshotManager
from repro.storage.durable import DurableDatabase
from repro.storage.journal import (
    JOURNAL_HEADER_SIZE,
    JOURNAL_MAGIC,
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    Journal,
)
from repro.txn.manager import TransactionManager
from repro.workloads.txmix import composite_mix, memory_fixture, run_tm_mix


def _cell_db(max_versions=16):
    db = Database()
    db.make_class("Cell", attributes=[
        AttributeSpec("V", domain="integer"),
    ])
    manager = SnapshotManager(db, max_versions=max_versions)
    return db, manager


def _account_db():
    db = Database()
    db.make_class("Account", attributes=[
        AttributeSpec("Balance", domain="integer"),
    ])
    manager = SnapshotManager(db)
    x = db.make("Account", values={"Balance": 100})
    return db, manager, x


# ---------------------------------------------------------------------------
# 1. Version chains
# ---------------------------------------------------------------------------


class TestVersionChains:
    def test_pinned_epoch_sees_old_value_after_write(self):
        db, manager = _cell_db()
        uid = db.make("Cell", values={"V": 1})
        pinned = manager.current_epoch
        db.set_value(uid, "V", 2)
        assert manager.read_at(uid, "V", pinned) == 1
        assert manager.read_at(uid, "V", manager.current_epoch) == 2

    def test_each_commit_is_a_distinct_epoch(self):
        db, manager = _cell_db()
        uid = db.make("Cell", values={"V": 0})
        epochs = []
        for value in (1, 2, 3):
            db.set_value(uid, "V", value)
            epochs.append(manager.current_epoch)
        assert epochs == sorted(set(epochs))
        for epoch, value in zip(epochs, (1, 2, 3)):
            assert manager.read_at(uid, "V", epoch) == value

    def test_tombstone_hides_object_after_delete_epoch(self):
        db, manager = _cell_db()
        uid = db.make("Cell", values={"V": 7})
        alive = manager.current_epoch
        db.delete(uid)
        assert manager.read_at(uid, "V", alive) == 7
        assert manager.instance_at(uid, manager.current_epoch) is None
        with pytest.raises(UnknownObjectError):
            manager.read_at(uid, "V", manager.current_epoch)

    def test_creation_is_invisible_below_its_epoch(self):
        db, manager = _cell_db()
        before = manager.current_epoch
        uid = db.make("Cell", values={"V": 5})
        db.set_value(uid, "V", 6)  # force a chain (creation seeds _ABSENT)
        assert manager.instance_at(uid, before) is None

    def test_read_below_floor_raises(self):
        db = Database()
        db.make_class("Cell", attributes=[AttributeSpec("V")])
        db.commit_epoch = 10
        manager = SnapshotManager(db)
        assert manager.floor_epoch == 10
        with pytest.raises(SnapshotTooOldError) as exc:
            manager.instance_at("whatever", 9)
        assert exc.value.floor == 10

    def test_pruned_chain_raises_snapshot_too_old(self):
        db, manager = _cell_db(max_versions=3)
        uid = db.make("Cell", values={"V": 0})
        early = manager.current_epoch
        for value in range(1, 8):
            db.set_value(uid, "V", value)
        assert manager.versions_pruned > 0
        with pytest.raises(SnapshotTooOldError):
            manager.read_at(uid, "V", early)
        assert manager.read_at(uid, "V", manager.current_epoch) == 7

    def test_untouched_object_falls_through_to_live(self):
        # "Untouched" means never written since the manager attached:
        # the live object IS the committed state at every retained epoch.
        db = Database()
        db.make_class("Cell", attributes=[AttributeSpec("V")])
        uid = db.make("Cell", values={"V": 3})
        other = db.make("Cell", values={"V": 4})
        manager = SnapshotManager(db)
        db.set_value(uid, "V", 30)
        before = manager.live_fallbacks
        assert manager.read_at(other, "V", manager.floor_epoch) == 4
        assert manager.live_fallbacks == before + 1

    def test_aborted_transaction_installs_no_version(self):
        db, manager = _cell_db()
        tm = TransactionManager(db, LockTable())
        uid = db.make("Cell", values={"V": 1})
        stamped = manager.versions_stamped
        txn = tm.begin()
        tm.write(txn, uid, "V", 99)
        tm.abort(txn)
        assert manager.versions_stamped == stamped
        assert manager.read_at(uid, "V", manager.current_epoch) == 1

    def test_detach_restores_database(self):
        db, manager = _cell_db()
        manager.detach()
        assert db.snapshot_manager is None
        assert all(callback not in hooks
                   for hooks, callback in manager._hooks)
        manager.detach()  # idempotent

    def test_stats_row_shape(self):
        db, manager = _cell_db()
        uid = db.make("Cell", values={"V": 1})
        db.set_value(uid, "V", 2)
        manager.read_at(uid, "V", manager.current_epoch)
        row = manager.stats_row()
        assert row["chains"] == 1
        assert row["snapshot_reads"] == 1
        assert row["epoch"] == manager.current_epoch


# ---------------------------------------------------------------------------
# 2. Snapshot transactions through the manager
# ---------------------------------------------------------------------------


class TestSnapshotTransactions:
    def test_snapshot_read_does_not_block_behind_x_lock(self):
        db, manager, x = _account_db()
        table = LockTable()
        writer_tm = TransactionManager(db, table)
        reader_tm = TransactionManager(db, table)
        writer = writer_tm.begin()
        writer_tm.write(writer, x, "Balance", 150)  # X lock held
        locked = reader_tm.begin()
        with pytest.raises(LockConflictError):
            reader_tm.read(locked, x, "Balance")
        reader_tm.abort(locked)
        snap = reader_tm.begin(snapshot=True)
        assert reader_tm.read(snap, x, "Balance") == 100
        reader_tm.commit(snap)
        writer_tm.commit(writer)

    def test_read_your_writes(self):
        db, manager, x = _account_db()
        tm = TransactionManager(db, LockTable())
        txn = tm.begin(snapshot=True)
        tm.write(txn, x, "Balance", 175)
        assert tm.read(txn, x, "Balance") == 175
        tm.commit(txn)

    def test_first_updater_wins_aborts_second_writer(self):
        db, manager, x = _account_db()
        tm1 = TransactionManager(db, LockTable())
        tm2 = TransactionManager(db, LockTable())
        t1 = tm1.begin(snapshot=True)
        t2 = tm2.begin(snapshot=True)
        tm1.read(t1, x, "Balance")
        tm2.read(t2, x, "Balance")
        tm2.write(t2, x, "Balance", 125)
        tm2.commit(t2)
        with pytest.raises(SnapshotConflictError) as exc:
            tm1.write(t1, x, "Balance", 110)
        assert exc.value.committed_epoch > exc.value.snapshot_epoch
        tm1.abort(t1)
        assert db.value(x, "Balance") == 125
        assert manager.write_conflicts == 1

    def test_explicit_epoch_token_pins_the_read(self):
        db, manager, x = _account_db()
        tm = TransactionManager(db, LockTable())
        token = manager.current_epoch
        db.set_value(x, "Balance", 500)
        txn = tm.begin(snapshot=True, epoch=token)
        assert txn.snapshot_epoch == token
        assert tm.read(txn, x, "Balance") == 100
        tm.commit(txn)

    def test_snapshot_begin_without_manager_raises(self):
        db = Database()
        tm = TransactionManager(db, LockTable())
        with pytest.raises(TransactionStateError, match="SnapshotManager"):
            tm.begin(snapshot=True)


# ---------------------------------------------------------------------------
# 3. Lost-update regression (the seeded anomaly must not reproduce)
# ---------------------------------------------------------------------------


class TestLostUpdateRegression:
    """test_isocheck seeds ISO-LOST-UPDATE through two managers with
    *private* lock tables (no mutual lock visibility, so 2PL cannot
    save them).  The same interleaving under snapshot reads + locked,
    first-updater-validated writes must not lose the update."""

    def _run_interleaving(self, snapshot):
        db, manager, x = _account_db()
        tm1 = TransactionManager(db, LockTable())
        tm2 = TransactionManager(db, LockTable())
        with HistoryRecorder(db) as recorder:
            t1 = tm1.begin(snapshot=snapshot)
            t2 = tm2.begin(snapshot=snapshot)
            stale_1 = tm1.read(t1, x, "Balance")
            stale_2 = tm2.read(t2, x, "Balance")
            tm2.write(t2, x, "Balance", stale_2 + 25)
            tm2.commit(t2)
            try:
                tm1.write(t1, x, "Balance", stale_1 + 10)
                tm1.commit(t1)
            except SnapshotConflictError:
                tm1.abort(t1)
        return db, x, check_history(recorder.history)

    def test_plain_reads_still_lose_the_update(self):
        # Control: the anomaly is real without snapshot validation.
        db, x, report = self._run_interleaving(snapshot=False)
        assert report.by_rule("ISO-LOST-UPDATE")
        assert db.value(x, "Balance") == 110  # t2's +25 silently lost

    def test_snapshot_reads_prevent_the_lost_update(self):
        db, x, report = self._run_interleaving(snapshot=True)
        assert report.clean, [str(f) for f in report.findings]
        assert not report.by_rule("ISO-LOST-UPDATE")
        assert db.value(x, "Balance") == 125  # t2's update survived


# ---------------------------------------------------------------------------
# 4. The B9 mix under snapshot readers, checked by the oracle
# ---------------------------------------------------------------------------


def _record_b9_mix(tmp_path):
    db = Database()
    manager = SnapshotManager(db)
    roots, components = memory_fixture(db, roots=6, parts_per_root=3)
    scripts = composite_mix(
        roots,
        transactions=24,
        steps_per_txn=3,
        read_ratio=0.7,
        components_by_root=components,
        seed=20260807,
    )
    path = tmp_path / "mvcc-b9.jsonl"
    table = LockTable()
    with HistoryRecorder(db, path=str(path)) as recorder:
        stats = run_tm_mix(db, scripts, lock_table=table,
                           snapshot_readers=True)
        history = recorder.history
    return manager, stats, history, path


class TestB9MixOracle:
    def test_mix_checks_clean_under_snapshot_readers(self, tmp_path):
        manager, stats, history, _path = _record_b9_mix(tmp_path)
        assert stats["snapshot_transactions"] > 0
        assert manager.snapshot_reads > 0  # readers really went lock-free
        report = check_history(history)
        iso_errors = [f for f in report.errors
                      if f.rule.startswith("ISO-")]
        assert not iso_errors, [str(f) for f in iso_errors]

    def test_recorded_history_passes_strict_cli(self, tmp_path, capsys):
        from repro.analysis.cli import main

        _manager, _stats, _history, path = _record_b9_mix(tmp_path)
        code = main(["iso", str(path), "--strict"])
        out = capsys.readouterr().out
        assert code == 0, out


# ---------------------------------------------------------------------------
# 5. Snapshot at E == journal replay truncated at E (Hypothesis)
# ---------------------------------------------------------------------------

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


def _commit_offsets(journal_bytes):
    """Byte offset just past each commit marker, keyed by commit_seq."""
    offsets = {}
    position = JOURNAL_HEADER_SIZE if journal_bytes.startswith(
        JOURNAL_MAGIC) else 0
    seq = 0
    while position + 5 <= len(journal_bytes):
        kind = journal_bytes[position:position + 1]
        (length,) = _U32.unpack_from(journal_bytes, position + 1)
        end = position + 5 + length
        if end > len(journal_bytes):
            break
        if kind == b"C":
            seq = _U64.unpack_from(journal_bytes, position + 5)[0]
            offsets[seq] = end
        position = end
    return offsets


def _forward_state(db):
    """The same forward-value projection ``SnapshotManager.state_at``
    produces, computed from a plain database's live objects."""
    state = {}
    for instance in db.live_instances():
        state[instance.uid] = {
            name: (sorted(value, key=repr) if isinstance(value, list)
                   else value)
            for name, value in instance.values.items()
        }
    return state


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("make"), st.integers(0, 99)),
        st.tuples(st.just("set"), st.integers(0, 7), st.integers(0, 99)),
        st.tuples(st.just("delete"), st.integers(0, 7)),
    ),
    min_size=1,
    max_size=14,
)


class TestTruncatedReplayProperty:
    @given(ops=_OPS)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_snapshot_equals_replay_truncated_at_every_epoch(
        self, tmp_path_factory, ops
    ):
        root = tmp_path_factory.mktemp("mvcc-replay")
        db = DurableDatabase(root, sync_policy="commit")
        try:
            db.make_class("Cell", attributes=[
                AttributeSpec("V", domain="integer"),
            ])
            manager = SnapshotManager(db, max_versions=64)
            floor = manager.floor_epoch
            uids = []
            for op in ops:
                if op[0] == "make":
                    uids.append(db.make("Cell", values={"V": op[1]}))
                elif not uids:
                    continue
                elif op[0] == "set":
                    db.set_value(uids[op[1] % len(uids)], "V", op[2])
                else:
                    victim = uids.pop(op[1] % len(uids))
                    if db.exists(victim):
                        db.delete(victim)
            journal_bytes = (root / JOURNAL_NAME).read_bytes()
            offsets = _commit_offsets(journal_bytes)
            snapshot_path = root / SNAPSHOT_NAME
            for epoch in range(floor, manager.current_epoch + 1):
                expected = manager.state_at(epoch)
                replay_dir = root / f"replay-{epoch}"
                replay_dir.mkdir()
                if snapshot_path.exists():
                    (replay_dir / SNAPSHOT_NAME).write_bytes(
                        snapshot_path.read_bytes()
                    )
                cut = max((off for seq, off in offsets.items()
                           if seq <= epoch), default=JOURNAL_HEADER_SIZE)
                (replay_dir / JOURNAL_NAME).write_bytes(
                    journal_bytes[:cut]
                )
                replayed = Database()
                Journal.recover_into(replayed, replay_dir)
                assert _forward_state(replayed) == expected, (
                    f"divergence at epoch {epoch}"
                )
                assert replayed.commit_epoch == epoch
        finally:
            db.close()
