"""CrashSim end-to-end: seeded crash plans must recover a committed
prefix with a clean fsck.

Three layers of assurance, cheapest first:

* hand-picked plans covering each crash mode / policy / fault family
  deterministically;
* a Hypothesis property over *random* plans × all four sync policies ×
  random workloads (satellite 1 of the ISSUE);
* a fast subset of the CI crash sweep (the full ≥200-plan sweep runs as
  its own CI job via ``python -m repro.faults.sweep``).
"""

from __future__ import annotations

import io
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CrashSim, FaultPlan, FaultRule, random_plan
from repro.faults.crashsim import state_fingerprint
from repro.faults.sweep import SEED_STRIDE, main, run_sweep, sweep_seeds
from repro.storage.journal import SYNC_POLICIES

#: Base seed of the tier-1 smoke subset — the same seed CI's full sweep
#: uses, so the smoke plans are a strict prefix of the CI grid.
SMOKE_SEED = 20260806


def _run(plan):
    with tempfile.TemporaryDirectory(prefix="crashsim-test-") as root:
        return CrashSim(plan, root).run()


class TestFixedPlans:
    @pytest.mark.parametrize("policy", SYNC_POLICIES)
    def test_pure_crash_recovers(self, policy):
        plan = FaultPlan(seed=7, policy=policy, units=6, stop_at_unit=4)
        report = _run(plan)
        assert report.ok, report.summary()
        assert report.completed_units == 4
        assert not report.crashed_by_fault

    @pytest.mark.parametrize("policy", SYNC_POLICIES)
    def test_torn_write_recovers(self, policy):
        plan = FaultPlan(seed=11, policy=policy, units=8, rules=[
            FaultRule(site="journal.write_record", action="torn",
                      nth=5, torn_bytes=6),
        ])
        report = _run(plan)
        assert report.ok, report.summary()

    def test_lying_fsync_under_power_cut(self):
        # The adversarial pairing: a lying fsync claims durability while
        # the power cut only honors *real* fsyncs — recovery must still
        # land on a committed prefix (the lie just lowers the floor).
        plan = FaultPlan(seed=13, policy="commit", crash_mode="power",
                         units=8, rules=[
                             FaultRule(site="journal.fsync", action="skip",
                                       nth=2, count=None),
                         ])
        report = _run(plan)
        assert report.ok, report.summary()

    def test_fsync_error_crashes_and_recovers(self):
        plan = FaultPlan(seed=17, policy="always", units=10, rules=[
            FaultRule(site="journal.fsync", action="error", nth=4),
        ])
        report = _run(plan)
        assert report.ok, report.summary()
        assert report.crashed_by_fault
        assert ("journal.fsync", 4, "error") in report.faults_triggered

    def test_reports_are_deterministic(self):
        plan = random_plan(20260806)
        first, second = _run(plan), _run(plan)
        assert first.ok and second.ok
        assert first.completed_units == second.completed_units
        assert first.crashed_by_fault == second.crashed_by_fault
        assert first.faults_triggered == second.faults_triggered
        assert first.surviving_bytes == second.surviving_bytes
        assert first.recovered_index == second.recovered_index
        assert first.durable_floor == second.durable_floor

    def test_report_summary_is_reproduction_line(self):
        report = _run(FaultPlan(seed=23, policy="group", stop_at_unit=3))
        text = report.summary()
        assert "seed=23" in text
        assert "policy=group" in text
        assert "[ok]" in text


class TestFingerprint:
    def test_set_order_is_canonicalized(self, tmp_path):
        # Two databases with the same membership in different list order
        # must fingerprint identically (an abort's undo re-inserts
        # members at the tail).
        from repro import AttributeSpec, Database, SetOf

        def build(order):
            db = Database()
            db.make_class("P")
            db.make_class("S", attributes=[
                AttributeSpec("Members", domain=SetOf("P"), composite=True,
                              exclusive=False, dependent=True),
            ])
            a, b = db.make("P"), db.make("P")
            section = db.make("S")
            for member in order(a, b):
                db.insert_into(section, "Members", member)
            return state_fingerprint(db)

        assert build(lambda a, b: (a, b)) == build(lambda a, b: (b, a))


class TestSweep:
    def test_seed_grid_round_robins_policies(self):
        grid = sweep_seeds(100, 6)
        assert [policy for _seed, policy in grid] == \
            list(SYNC_POLICIES) + list(SYNC_POLICIES[:2])
        assert [seed for seed, _ in grid] == \
            [100 + i * SEED_STRIDE for i in range(6)]

    def test_smoke_subset_of_ci_sweep_is_clean(self):
        # Tier-1 smoke (satellite 5): the first 24 plans of the CI grid
        # — 6 per policy — must recover clean.  The full 200-plan run is
        # the dedicated CI job.
        failures = run_sweep(SMOKE_SEED, 24)
        assert failures == [], [f.summary() for f in failures]

    def test_cli_reports_and_exits_zero(self, capsys):
        assert main(["--plans", "8", "--seed", str(SMOKE_SEED)]) == 0
        out = capsys.readouterr().out
        assert "crash sweep: 8/8 plans recovered clean" in out

    def test_cli_verbose_prints_every_plan(self):
        stream = io.StringIO()
        failures = run_sweep(SMOKE_SEED, 4, report_stream=stream,
                             verbose=True)
        assert failures == []
        assert stream.getvalue().count("ok    ") == 4

    def test_cli_rejects_bad_plan_count(self):
        with pytest.raises(SystemExit):
            main(["--plans", "0"])


class TestRandomPlansProperty:
    @settings(deadline=None, max_examples=12)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           policy=st.sampled_from(SYNC_POLICIES))
    def test_random_fault_plan_recovers_committed_prefix(self, seed, policy):
        # Satellite 1: random fault plans × every sync policy × random
        # workloads ⇒ committed-prefix recovery and zero fsck findings.
        report = _run(random_plan(seed, policy=policy))
        assert report.ok, report.summary()
        assert report.fsck_clean, report.fsck_summary
