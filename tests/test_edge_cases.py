"""Edge-case sweep across subsystems: version-aware authorization, the
operation-log registry, simulator internals, recorder, lock stats."""

import pytest

from repro import AttributeSpec, AuthorizationConflict, Database, SetOf
from repro.authorization import AuthorizationEngine
from repro.versions import VersionManager


class TestVersionAwareAuthorization:
    @pytest.fixture
    def env(self):
        database = Database()
        database.make_class("Part2")
        database.make_class("Design", versionable=True, attributes=[
            AttributeSpec("Secret", domain="string"),
            AttributeSpec("Parts", domain=SetOf("Part2"), composite=True,
                          exclusive=True, dependent=True),
        ])
        manager = VersionManager(database)
        engine = AuthorizationEngine(database,
                                     version_registry=manager.registry)
        return database, manager, engine

    def test_grant_on_generic_covers_versions(self, env):
        database, manager, engine = env
        generic, v0 = manager.create("Design", values={"Secret": "x"})
        v1 = manager.derive(v0).new_version
        engine.grant("alice", "sR", on_instance=generic)
        assert engine.check("alice", "R", v0)
        assert engine.check("alice", "R", v1)
        # Future versions are covered too (implicit, not stored).
        v2 = manager.derive(v1).new_version
        assert engine.check("alice", "R", v2)
        assert engine.stored_record_count() == 1

    def test_grant_on_one_version_does_not_cover_others(self, env):
        database, manager, engine = env
        generic, v0 = manager.create("Design")
        v1 = manager.derive(v0).new_version
        engine.grant("bob", "sR", on_instance=v0)
        assert engine.check("bob", "R", v0)
        assert not engine.check("bob", "R", v1)
        assert not engine.check("bob", "R", generic)

    def test_generic_grant_covers_version_components(self, env):
        database, manager, engine = env
        part = database.make("Part2")
        generic, v0 = manager.create("Design", values={"Parts": [part]})
        engine.grant("carol", "sW", on_instance=generic)
        # Component of a covered version: covered via the composite walk
        # from the version instance.
        assert engine.check("carol", "W", v0)
        assert engine.check("carol", "W", part)

    def test_grant_conflict_checked_across_versions(self, env):
        database, manager, engine = env
        generic, v0 = manager.create("Design")
        engine.grant("dave", "s¬W", on_instance=v0)
        with pytest.raises(AuthorizationConflict):
            engine.grant("dave", "sW", on_instance=generic)

    def test_without_registry_generics_grant_nothing_extra(self):
        database = Database()
        database.make_class("Design", versionable=True)
        manager = VersionManager(database)
        engine = AuthorizationEngine(database)  # no registry wired
        generic, v0 = manager.create("Design")
        engine.grant("erin", "sR", on_instance=generic)
        assert not engine.check("erin", "R", v0)


class TestOperationLogRegistry:
    def test_prune_everything(self):
        from repro.schema.oplog import OperationLogRegistry

        registry = OperationLogRegistry()
        registry.append("I2", "Widget", "Piece", "Part")
        registry.append("I3", "Widget", "Piece", "Part")
        assert registry.log_sizes() == {"Part": 2}
        registry.prune()
        assert registry.log_sizes() == {}
        # CC keeps counting monotonically after a prune.
        entry = registry.append("I4", "Widget", "Piece", "Part")
        assert entry.cc == 3

    def test_prune_older_than(self):
        from repro.schema.oplog import OperationLogRegistry

        registry = OperationLogRegistry()
        first = registry.append("I2", "W", "A", "P")
        second = registry.append("I3", "W", "A", "P")
        registry.prune(older_than=first.cc)
        assert registry.log_sizes() == {"P": 1}
        remaining = registry.entries_for(["P"], newer_than=0)
        assert remaining == [second]

    def test_entries_for_merges_lineage_in_cc_order(self):
        from repro.schema.oplog import OperationLogRegistry

        registry = OperationLogRegistry()
        a = registry.append("I2", "W", "A", "Base")
        b = registry.append("I3", "W", "A", "Derived")
        c = registry.append("I4", "W", "A", "Base")
        merged = registry.entries_for(["Derived", "Base"], newer_than=0)
        assert [e.cc for e in merged] == [a.cc, b.cc, c.cc]


class TestLockStatsAndRecorder:
    def test_lock_stats_reset(self):
        from repro.locking.modes import LockMode
        from repro.locking.table import LockTable

        table = LockTable()
        table.acquire("T", "r", LockMode.S)
        assert table.stats.requests == 1
        table.stats.reset()
        assert table.stats.requests == 0 and table.stats.grants == 0

    def test_io_stats_snapshot_delta(self):
        from repro.storage.stats import IOStats

        stats = IOStats()
        before = stats.snapshot()
        stats.page_faults += 3
        stats.buffer_hits += 7
        delta = before.delta(stats.snapshot())
        assert delta.page_faults == 3 and delta.buffer_hits == 7

    def test_recorder_overwrites_same_id(self):
        from repro.bench import Recorder

        recorder = Recorder()
        recorder.record("X", "first", rows=[{"a": 1}])
        recorder.record("X", "second", rows=[{"a": 2}])
        assert recorder.get("X").description == "second"
        assert len(recorder.all_records()) == 1


class TestSimulatorInternals:
    def test_step_work_spreads_over_ticks(self):
        from repro.sim import ConcurrencySimulator, Step
        from repro.workloads.parts import build_assembly

        database = Database()
        tree = build_assembly(database, depth=1, fanout=2)
        sim = ConcurrencySimulator(database, "composite")
        result = sim.run([[Step("read_composite", tree.root, work=5)]])
        assert result.ticks == 5

    def test_two_writers_same_composite_serialize(self):
        from repro.sim import ConcurrencySimulator, Step
        from repro.workloads.parts import build_assembly

        database = Database()
        tree = build_assembly(database, depth=1, fanout=2)
        sim = ConcurrencySimulator(database, "composite")
        scripts = [[Step("update_composite", tree.root, work=2)]
                   for _ in range(2)]
        result = sim.run(scripts)
        assert result.committed == 2
        # Strictly serialized: the second writer blocks until the first
        # releases (one overlap tick thanks to within-tick promotion).
        assert result.ticks == 3
        assert result.lock_blocks >= 1

    def test_max_ticks_guard(self):
        from repro.sim import ConcurrencySimulator, Step
        from repro.workloads.parts import build_assembly

        database = Database()
        tree = build_assembly(database, depth=1, fanout=2)
        sim = ConcurrencySimulator(database, "composite")
        with pytest.raises(RuntimeError):
            sim.run([[Step("read_composite", tree.root, work=10)]],
                    max_ticks=3)


class TestDatabaseMisc:
    def test_len_and_contains(self, db):
        db.make_class("Thing")
        uid = db.make("Thing")
        assert len(db) == 1 and uid in db
        db.delete(uid)
        assert len(db) == 0 and uid not in db

    def test_class_of_falls_back_for_dead_objects(self, db):
        db.make_class("Thing")
        uid = db.make("Thing")
        db.delete(uid)
        assert db.class_of(uid) == "Thing"  # from the UID

    def test_validate_detects_planted_corruption(self, db):
        from repro import TopologyError

        db.make_class("Leaf")
        db.make_class("Box", attributes=[
            AttributeSpec("l", domain="Leaf", composite=True),
        ])
        leaf = db.make("Leaf")
        box = db.make("Box", values={"l": leaf})
        # Corrupt: drop the reverse reference behind the database's back.
        db.peek(leaf).reverse_references.clear()
        with pytest.raises(TopologyError):
            db.validate()

    def test_validate_detects_stale_reverse_ref(self, db):
        from repro import TopologyError

        db.make_class("Leaf")
        db.make_class("Box", attributes=[
            AttributeSpec("l", domain="Leaf", composite=True),
        ])
        leaf = db.make("Leaf")
        box = db.make("Box", values={"l": leaf})
        db.peek(box).values["l"] = None  # forward side vanishes
        with pytest.raises(TopologyError):
            db.validate()
