"""Tests for the lock table and deadlock detector."""

import pytest

from repro.errors import DeadlockError, LockConflictError
from repro.locking.deadlock import DeadlockDetector, choose_victim, find_cycle
from repro.locking.modes import LockMode as M
from repro.locking.table import LockTable


class TestBasicGrants:
    def test_grant_compatible(self):
        table = LockTable()
        assert table.acquire("T1", "r", M.S)
        assert table.acquire("T2", "r", M.S)
        assert set(table.holders("r")) == {"T1", "T2"}

    def test_incompatible_nowait_raises(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        with pytest.raises(LockConflictError) as excinfo:
            table.acquire("T2", "r", M.S, wait=False)
        assert excinfo.value.resource == "r"
        assert excinfo.value.requested is M.S
        assert "T1" in excinfo.value.holders

    def test_incompatible_wait_queues(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        assert table.acquire("T2", "r", M.S, wait=True) is False
        assert len(table.waiters("r")) == 1

    def test_reacquire_held_mode_noop(self):
        table = LockTable()
        table.acquire("T1", "r", M.S)
        assert table.acquire("T1", "r", M.S)
        assert table.modes_held("T1", "r") == {M.S}

    def test_requeue_does_not_duplicate(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        table.acquire("T2", "r", M.S, wait=True)
        table.acquire("T2", "r", M.S, wait=True)
        assert len(table.waiters("r")) == 1

    def test_mode_type_checked(self):
        with pytest.raises(TypeError):
            LockTable().acquire("T1", "r", "X")

    def test_mode_sets_union(self):
        # The composite protocol holds ISO and ISOS on one class at once.
        table = LockTable()
        table.acquire("T1", "c", M.ISO)
        table.acquire("T1", "c", M.ISOS)
        assert table.modes_held("T1", "c") == {M.ISO, M.ISOS}
        # A request must be compatible with BOTH held modes.
        with pytest.raises(LockConflictError):
            table.acquire("T2", "c", M.IXOS, wait=False)
        assert table.acquire("T2", "c", M.ISO)

    def test_own_locks_never_conflict(self):
        table = LockTable()
        table.acquire("T1", "r", M.S)
        assert table.acquire("T1", "r", M.X)  # conversion

    def test_conversion_checked_against_others(self):
        table = LockTable()
        table.acquire("T1", "r", M.S)
        table.acquire("T2", "r", M.S)
        with pytest.raises(LockConflictError):
            table.acquire("T1", "r", M.X, wait=False)


class TestReleaseAndPromotion:
    def test_release_grants_waiter(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        table.acquire("T2", "r", M.S, wait=True)
        granted = table.release_all("T1")
        assert [req.txn for req in granted] == ["T2"]
        assert table.modes_held("T2", "r") == {M.S}

    def test_release_clears_queue_entries(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        table.acquire("T2", "r", M.S, wait=True)
        table.release_all("T2")
        assert table.waiters("r") == []

    def test_fifo_no_barging(self):
        # A new S request must wait behind a queued X request.
        table = LockTable()
        table.acquire("T1", "r", M.S)
        table.acquire("T2", "r", M.X, wait=True)
        assert table.acquire("T3", "r", M.S, wait=True) is False
        granted = table.release_all("T1")
        # X goes first (FIFO), S after it.
        assert [req.txn for req in granted] == ["T2"]
        granted = table.release_all("T2")
        assert [req.txn for req in granted] == ["T3"]

    def test_multiple_compatible_waiters_granted_together(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        table.acquire("T2", "r", M.S, wait=True)
        table.acquire("T3", "r", M.S, wait=True)
        granted = table.release_all("T1")
        assert {req.txn for req in granted} == {"T2", "T3"}

    def test_lock_count(self):
        table = LockTable()
        table.acquire("T1", "a", M.S)
        table.acquire("T1", "b", M.IX)
        table.acquire("T1", "b", M.IXO)
        assert table.lock_count() == 3
        table.release_all("T1")
        assert table.lock_count() == 0

    def test_held_resources(self):
        table = LockTable()
        table.acquire("T1", "a", M.S)
        table.acquire("T1", "b", M.S)
        assert set(table.held_resources("T1")) == {"a", "b"}

    def test_stats_counters(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        with pytest.raises(LockConflictError):
            table.acquire("T2", "r", M.X, wait=False)
        table.acquire("T3", "r", M.X, wait=True)
        table.release_all("T1")
        stats = table.stats
        assert stats.grants >= 2 and stats.denials == 1 and stats.blocks == 1
        assert stats.releases >= 1


class TestWaitForGraph:
    def test_edges_to_holders(self):
        table = LockTable()
        table.acquire("T1", "r", M.X)
        table.acquire("T2", "r", M.S, wait=True)
        assert ("T2", "T1") in table.wait_for_edges()

    def test_edges_to_earlier_waiters(self):
        table = LockTable()
        table.acquire("T1", "r", M.S)
        table.acquire("T2", "r", M.X, wait=True)
        table.acquire("T3", "r", M.X, wait=True)
        edges = table.wait_for_edges()
        assert ("T3", "T2") in edges

    def test_no_self_edges(self):
        table = LockTable()
        table.acquire("T1", "r", M.S)
        table.acquire("T1", "r2", M.S)
        assert all(a != b for a, b in table.wait_for_edges())


class TestFindCycle:
    def test_acyclic(self):
        assert find_cycle([(1, 2), (2, 3), (1, 3)]) is None

    def test_two_cycle(self):
        cycle = find_cycle([(1, 2), (2, 1)])
        assert set(cycle) == {1, 2}

    def test_long_cycle(self):
        cycle = find_cycle([(1, 2), (2, 3), (3, 4), (4, 2)])
        assert set(cycle) == {2, 3, 4}

    def test_empty(self):
        assert find_cycle([]) is None

    def test_victim_is_youngest(self):
        assert choose_victim([3, 1, 2]) == 3


class TestDeadlockDetector:
    def _deadlock_table(self):
        table = LockTable()
        table.acquire("A", "r1", M.X)
        table.acquire("B", "r2", M.X)
        table.acquire("A", "r2", M.X, wait=True)
        table.acquire("B", "r1", M.X, wait=True)
        return table

    def test_detects_and_raises(self):
        detector = DeadlockDetector(self._deadlock_table())
        with pytest.raises(DeadlockError) as excinfo:
            detector.check()
        assert set(excinfo.value.cycle) == {"A", "B"}
        assert excinfo.value.victim == "B"  # youngest by string comparison

    def test_returns_victim_without_raise(self):
        detector = DeadlockDetector(self._deadlock_table())
        assert detector.check(raise_on_deadlock=False) == "B"
        assert detector.detections == 1

    def test_no_deadlock(self):
        table = LockTable()
        table.acquire("A", "r1", M.X)
        table.acquire("B", "r1", M.S, wait=True)
        detector = DeadlockDetector(table)
        assert detector.check() is None

    def test_three_way_deadlock(self):
        table = LockTable()
        for txn, res in (("A", "r1"), ("B", "r2"), ("C", "r3")):
            table.acquire(txn, res, M.X)
        table.acquire("A", "r2", M.S, wait=True)
        table.acquire("B", "r3", M.S, wait=True)
        table.acquire("C", "r1", M.S, wait=True)
        victim = DeadlockDetector(table).check(raise_on_deadlock=False)
        assert victim in ("A", "B", "C")
