"""Tests for the group-commit durability pipeline.

Covers the journal's sync policies (``always`` | ``commit`` | ``group`` |
``none``), commit-scoped batching with abort-drop, write coalescing,
digest-based dedup bookkeeping, the closed-journal guard rails, the
asyncio server's group-commit window, and an exhaustive torn-final-batch
crash-consistency sweep.
"""

import struct
import threading

import pytest

from repro import AttributeSpec, Database, SetOf
from repro.analysis.fsck import fsck_database
from repro.errors import StorageError
from repro.storage.durable import DurableDatabase
from repro.storage.journal import (
    JOURNAL_HEADER_SIZE,
    JOURNAL_MAGIC,
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    Journal,
)
from repro.storage.serializer import encode_instance
from repro.txn import TransactionManager

_U32 = struct.Struct(">I")


def _schema(db):
    db.make_class("Paragraph", attributes=[
        AttributeSpec("Text", domain="string"),
    ])
    db.make_class("Section", attributes=[
        AttributeSpec("Content", domain=SetOf("Paragraph"), composite=True,
                      exclusive=False, dependent=True),
    ])


def _journal_size(db):
    return db.journal.journal_path.stat().st_size


def _frames(data, start=0):
    """Parse a journal byte string into complete (kind, start, end) frames."""
    frames = []
    position = start
    while position + 5 <= len(data):
        kind = data[position:position + 1]
        size = _U32.unpack(data[position + 1:position + 5])[0]
        end = position + 5 + size
        if end > len(data):
            break
        frames.append((kind, position, end))
        position = end
    return frames


def _recover(directory):
    """Offline recovery (read-only): (state map, fsck report)."""
    db = Database()
    Journal.recover_into(db, directory)
    state = {
        instance.uid: encode_instance(instance)
        for instance in db.live_instances()
    }
    return state, fsck_database(db)


class TestSyncPolicyConfig:
    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="sync policy"):
            DurableDatabase(tmp_path / "bad", sync_policy="sometimes")

    def test_policies_all_roundtrip(self, tmp_path):
        for policy in ("always", "commit", "group", "none"):
            db = DurableDatabase(tmp_path / policy, sync_policy=policy)
            _schema(db)
            p = db.make("Paragraph", values={"Text": policy})
            db.close()
            recovered = DurableDatabase.open(tmp_path / policy)
            assert recovered.value(p, "Text") == policy
            assert recovered.fsck().clean
            recovered.close()


class TestCommitBatching:
    def test_records_buffer_until_commit(self, tmp_path):
        db = DurableDatabase(tmp_path / "d", sync_policy="commit")
        _schema(db)
        tm = TransactionManager(db)
        size_before = _journal_size(db)
        fsyncs_before = db.journal.fsyncs
        txn = tm.begin()
        for i in range(5):
            tm.make(txn, "Paragraph", values={"Text": f"p{i}"})
        # Nothing reaches the file while the transaction is open.
        assert _journal_size(db) == size_before
        assert db.journal.fsyncs == fsyncs_before
        tm.commit(txn)
        # One seal, one fsync, all five records.
        assert _journal_size(db) > size_before
        assert db.journal.fsyncs == fsyncs_before + 1
        assert db.journal.records_written == 5
        db.close()
        recovered = DurableDatabase.open(tmp_path / "d")
        assert len(recovered.instances_of("Paragraph")) == 5
        recovered.close()

    def test_abort_drops_batch_without_trace(self, tmp_path):
        db = DurableDatabase(tmp_path / "d", sync_policy="commit")
        _schema(db)
        p = db.make("Paragraph", values={"Text": "keep"})
        tm = TransactionManager(db)
        size_before = _journal_size(db)
        txn = tm.begin()
        tm.write(txn, p, "Text", "dirty")
        ghost = tm.make(txn, "Paragraph", values={"Text": "ghost"})
        tm.abort(txn)
        # The batch — original and compensating records alike — never
        # touched the file.
        assert _journal_size(db) == size_before
        assert db.journal.batches_dropped == 1
        assert db.journal.records_dropped >= 1
        # Digest bookkeeping for the dropped batch is cleared too.
        assert ghost not in db.journal._last_image
        db.close()
        recovered = DurableDatabase.open(tmp_path / "d")
        assert recovered.value(p, "Text") == "keep"
        assert not recovered.exists(ghost)
        assert recovered.fsck().clean
        recovered.close()

    def test_abort_after_midtxn_checkpoint_stays_consistent(self, tmp_path):
        # A checkpoint inside an open transaction persists uncommitted
        # state; the abort must then *write* its compensating records
        # instead of dropping them.
        db = DurableDatabase(tmp_path / "d", sync_policy="commit")
        _schema(db)
        p = db.make("Paragraph", values={"Text": "orig"})
        tm = TransactionManager(db)
        txn = tm.begin()
        tm.write(txn, p, "Text", "dirty")
        db.checkpoint()  # snapshot now carries the uncommitted "dirty"
        tm.abort(txn)
        db.close()
        recovered = DurableDatabase.open(tmp_path / "d")
        assert recovered.value(p, "Text") == "orig"
        recovered.close()

    def test_deletion_cascade_coalesces_to_tombstones(self, tmp_path):
        db = DurableDatabase(tmp_path / "d", sync_policy="commit")
        _schema(db)
        paragraphs = [db.make("Paragraph") for _ in range(2)]
        section = db.make("Section", values={"Content": paragraphs})
        records_before = db.journal.records_written
        db.delete(section)  # cascades to both dependent paragraphs
        # One batch: the fix-up re-images of the paragraphs coalesced
        # into their tombstones — exactly one record per dead instance.
        assert db.journal.records_written - records_before == 3
        assert db.journal.records_coalesced > 0
        db.close()
        recovered = DurableDatabase.open(tmp_path / "d")
        assert len(recovered) == 0
        assert recovered.fsck().clean
        recovered.close()


class TestGroupPolicyEmbedded:
    def test_fsync_deferred_until_group_size(self, tmp_path):
        db = DurableDatabase(tmp_path / "d", sync_policy="group",
                             group_size=3)
        _schema(db)
        fsyncs_before = db.journal.fsyncs
        db.make("Paragraph", values={"Text": "a"})
        db.make("Paragraph", values={"Text": "b"})
        assert db.journal.fsyncs == fsyncs_before  # sealed, not synced
        assert db.journal.needs_sync
        db.make("Paragraph", values={"Text": "c"})  # third seal: auto-sync
        assert db.journal.fsyncs == fsyncs_before + 1
        assert not db.journal.needs_sync
        db.close()

    def test_explicit_sync_flushes(self, tmp_path):
        db = DurableDatabase(tmp_path / "d", sync_policy="group",
                             group_size=0)  # never auto-sync
        _schema(db)
        db.make("Paragraph", values={"Text": "a"})
        assert db.journal.needs_sync
        db.journal.sync()
        assert not db.journal.needs_sync
        db.close()

    def test_none_policy_never_syncs_while_running(self, tmp_path):
        db = DurableDatabase(tmp_path / "d", sync_policy="none")
        _schema(db)
        fsyncs_before = db.journal.fsyncs
        for i in range(10):
            db.make("Paragraph", values={"Text": f"p{i}"})
        assert db.journal.fsyncs == fsyncs_before
        db.close()  # clean shutdown still syncs
        recovered = DurableDatabase.open(tmp_path / "d")
        assert len(recovered.instances_of("Paragraph")) == 10
        recovered.close()


class TestClosePath:
    def test_mutation_after_close_degrades_to_memory(self, tmp_path):
        db = DurableDatabase(tmp_path / "d")
        _schema(db)
        db.make("Paragraph", values={"Text": "durable"})
        db.close()
        size_after_close = _journal_size(db)
        # No raw ValueError from a closed file: the hooks are gone, so
        # the mutation succeeds in-memory and journals nothing.
        volatile = db.make("Paragraph", values={"Text": "volatile"})
        db.set_value(volatile, "Text", "still volatile")
        db.delete(volatile)
        assert _journal_size(db) == size_after_close
        recovered = DurableDatabase.open(tmp_path / "d")
        texts = [i.get("Text") for i in recovered.instances_of("Paragraph")]
        assert texts == ["durable"]
        recovered.close()

    def test_ddl_after_close_skips_checkpoint(self, tmp_path):
        db = DurableDatabase(tmp_path / "d")
        _schema(db)
        db.close()
        db.make_class("Late")  # in-memory only; no crash, no snapshot
        recovered = DurableDatabase.open(tmp_path / "d")
        with pytest.raises(Exception):
            recovered.classdef("Late")
        recovered.close()

    def test_journal_methods_raise_after_close(self, tmp_path):
        db = DurableDatabase(tmp_path / "d")
        _schema(db)
        db.close()
        with pytest.raises(StorageError, match="closed"):
            db.journal.checkpoint()
        with pytest.raises(StorageError, match="closed"):
            db.journal.sync()
        with pytest.raises(StorageError, match="closed"):
            db.checkpoint()

    def test_close_is_idempotent(self, tmp_path):
        db = DurableDatabase(tmp_path / "d")
        _schema(db)
        db.close()
        db.close()

    def test_close_seals_open_transaction_batches(self, tmp_path):
        # Clean shutdown persists even a still-open transaction's writes
        # (matching the write-through semantics of the always policy).
        db = DurableDatabase(tmp_path / "d", sync_policy="commit")
        _schema(db)
        tm = TransactionManager(db)
        txn = tm.begin()
        p = tm.make(txn, "Paragraph", values={"Text": "inflight"})
        db.close()
        recovered = DurableDatabase.open(tmp_path / "d")
        assert recovered.value(p, "Text") == "inflight"
        recovered.close()


class TestDigestBookkeeping:
    def test_last_image_holds_digests_not_images(self, tmp_path):
        db = DurableDatabase(tmp_path / "d")
        _schema(db)
        big = "x" * 4096
        p = db.make("Paragraph", values={"Text": big})
        entry = db.journal._last_image[p]
        assert len(entry) == 16  # blake2b-128, not the multi-KB image
        assert entry != encode_instance(db.resolve(p))
        db.close()

    def test_identical_reimage_skipped(self, tmp_path):
        db = DurableDatabase(tmp_path / "d")
        _schema(db)
        p = db.make("Paragraph", values={"Text": "v"})
        records_before = db.journal.records_written
        db.set_value(p, "Text", "v")  # byte-identical image
        assert db.journal.records_written == records_before
        assert db.journal.records_skipped > 0
        db.close()


class TestServerGroupCommit:
    def _server(self, db, **kwargs):
        from repro.server.server import ServerThread

        return ServerThread(database=db, **kwargs)

    def test_stats_expose_durability_counters(self, tmp_path):
        from repro.server.client import Client

        db = DurableDatabase(tmp_path / "d", sync_policy="group",
                             group_size=0)
        with self._server(db, group_commit_window=0.005) as handle:
            with Client(port=handle.port) as client:
                client.make_class("Item")
                for _ in range(3):
                    client.make("Item")
                stats = client.stats()
        durability = stats["durability"]
        assert durability["policy"] == "group"
        assert durability["records_written"] >= 3
        assert durability["group_flushes"] >= 1
        assert durability["group_window_s"] == 0.005
        db.close()
        recovered = DurableDatabase.open(tmp_path / "d")
        assert len(recovered.instances_of("Item")) == 3
        recovered.close()

    def test_concurrent_commits_share_fsyncs(self, tmp_path):
        from repro.server.client import Client

        db = DurableDatabase(tmp_path / "d", sync_policy="group",
                             group_size=0)
        threads, per_thread = 4, 3
        with self._server(db, group_commit_window=0.05) as handle:
            with Client(port=handle.port) as client:
                client.make_class("Item")

            def worker():
                with Client(port=handle.port) as worker_client:
                    for _ in range(per_thread):
                        worker_client.make("Item")

            pool = [threading.Thread(target=worker) for _ in range(threads)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            flushes = handle.server.gate.flushes
        mutations = threads * per_thread
        # The whole point of the window: far fewer fsyncs than commits.
        assert 1 <= flushes < mutations
        db.close()
        recovered = DurableDatabase.open(tmp_path / "d")
        assert len(recovered.instances_of("Item")) == mutations
        assert recovered.fsck().clean
        recovered.close()


class TestCrashConsistency:
    """Torn-final-batch sweep: truncate at every byte of the final batch,
    recover, and require a consistent prefix state (satellite 5)."""

    def _build(self, directory, policy):
        db = DurableDatabase(directory, sync_policy=policy, group_size=0)
        _schema(db)
        tm = TransactionManager(db)
        # Committed transaction: instances plus composite links.
        txn = tm.begin()
        paragraphs = [
            tm.make(txn, "Paragraph", values={"Text": f"p{i}"})
            for i in range(3)
        ]
        section = tm.make(
            txn, "Section", values={"Content": paragraphs[:2]}
        )
        tm.commit(txn)
        # Plain (auto-batched) operations.
        db.set_value(paragraphs[2], "Text", "edited")
        extra = db.make("Paragraph", parents=[(section, "Content")])
        # Aborted transaction: must leave no trace under batching.
        txn = tm.begin()
        tm.write(txn, paragraphs[0], "Text", "dirty")
        tm.make(txn, "Paragraph", values={"Text": "ghost"})
        tm.abort(txn)
        # A deletion cascade.
        db.remove_from(section, "Content", paragraphs[1])
        db.delete(paragraphs[1])
        if db.journal.needs_sync:
            db.journal.sync()
        size_before_final = _journal_size(db)
        # The final batch: one committed transaction with two records.
        txn = tm.begin()
        tm.write(txn, paragraphs[2], "Text", "final")
        tm.make(txn, "Paragraph", values={"Text": "last"})
        tm.commit(txn)
        db.close()
        return size_before_final

    def _sweep(self, tmp_path, policy):
        store = tmp_path / f"store-{policy}"
        final_start = self._build(store, policy)
        data = (store / JOURNAL_NAME).read_bytes()
        snapshot = (store / SNAPSHOT_NAME).read_bytes()
        assert final_start < len(data)
        # Record frames start after the epoch header.
        assert data.startswith(JOURNAL_MAGIC)
        base = JOURNAL_HEADER_SIZE
        # Every committed batch boundary is a legal recovery target.
        marker_ends = [base] + [
            end for kind, _start, end in _frames(data, base) if kind == b"C"
        ]
        scratch = tmp_path / f"scratch-{policy}"
        scratch.mkdir()
        (scratch / SNAPSHOT_NAME).write_bytes(snapshot)

        def state_at(size):
            (scratch / JOURNAL_NAME).write_bytes(data[:size])
            return _recover(scratch)

        reference = {}
        for end in marker_ends:
            state, report = state_at(end)
            assert report.clean, (
                f"{policy}: batch-boundary state at {end} fails fsck: "
                f"{report.summary()}"
            )
            reference[end] = state
        ghost_free = policy != "always"
        for size in range(final_start, len(data)):
            state, report = state_at(size)
            boundary = max(end for end in marker_ends if end <= size)
            assert state == reference[boundary], (
                f"{policy}: truncation at byte {size} is not the batch-"
                f"boundary state at {boundary}"
            )
            assert report.clean
        if ghost_free:
            # An aborted transaction's records never reach the journal
            # under a batching policy — no state ever contains them.
            for state in reference.values():
                assert all(b"ghost" not in image for image in state.values())
        # The untruncated journal recovers the full final state.
        full_state, full_report = state_at(len(data))
        assert full_report.clean
        assert any(b"final" in image for image in full_state.values())
        assert any(b"last" in image for image in full_state.values())

    @pytest.mark.parametrize("policy", ["always", "commit", "group", "none"])
    def test_torn_final_batch_yields_prefix_state(self, tmp_path, policy):
        self._sweep(tmp_path, policy)
