"""Analysis plane 5: the history recorder and the isolation checker.

Four layers:

1. **Event/History** — JSONL round-trips, torn-tail tolerance, corrupt
   line rejection, boot-marker epochs.
2. **Recorder** — version counters, transaction attribution, auto-txn
   sealing, abort rewind (undo writes must not look like new installs),
   detach idempotence.
3. **Checker** — every ISO-* rule on hand-built event lists where the
   expected DSG is computable by eye, then live seeded anomalies through
   real transaction managers, then hypothesis properties (serial and
   strict-2PL histories are anomaly-free; the seeded lost update never
   escapes).
4. **Wiring** — the plane registry / CLI / server stay five-wide in
   lockstep, the server records and checks over TCP, and codelint's
   CODE-HOOK-LEAK catches recorder-style hook leaks.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import AttributeSpec, Database
from repro.analysis.codelint import lint_source
from repro.analysis.findings import PLANES, Severity, plane_for_rule
from repro.analysis.history import (
    EVENT_KINDS,
    Event,
    History,
    HistoryRecorder,
)
from repro.analysis.isocheck import build_dsg, check_history, predict_isolation
from repro.analysis.locklint import TransactionTemplate
from repro.errors import LockConflictError
from repro.locking.table import LockTable
from repro.txn.manager import TransactionManager


def _account_db():
    db = Database()
    db.make_class("Account", attributes=[
        AttributeSpec("Balance", domain="integer"),
    ])
    x = db.make("Account", values={"Balance": 100})
    y = db.make("Account", values={"Balance": 100})
    return db, x, y


def _broken_pair(db):
    """Two managers with private lock tables: real undo/hook paths, no
    mutual lock visibility — anomalies can actually happen."""
    return (
        TransactionManager(db, LockTable()),
        TransactionManager(db, LockTable()),
    )


# ---------------------------------------------------------------------------
# Event / History serialization
# ---------------------------------------------------------------------------


class TestHistorySerialization:
    def test_event_round_trip_drops_defaults(self):
        event = Event(kind="read", txn="t1", uid="Account#1",
                      attribute="Balance", version=3, installer="t2")
        assert Event.from_dict(event.to_dict()) == event
        bare = Event(kind="boot")
        assert bare.to_dict() == {"k": "boot"}
        assert Event.from_dict({"k": "boot"}) == bare

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Event.from_dict({"k": "observe"})

    def test_history_jsonl_round_trip(self, tmp_path):
        history = History([
            Event(kind="boot"),
            Event(kind="write", txn="t1", uid="X", attribute="A", version=1),
            Event(kind="commit", txn="t1"),
        ])
        assert History.loads(history.dumps()).events == history.events
        path = tmp_path / "h.jsonl"
        history.dump(path)
        assert History.load(path).events == history.events

    def test_torn_final_line_tolerated(self):
        text = History([Event(kind="boot"),
                        Event(kind="commit", txn="t1")]).dumps()
        torn = History.loads(text + '{"k":"wri')
        assert len(torn) == 2

    def test_corrupt_interior_line_raises(self):
        text = '{"k":"boot"}\nnot json at all\n{"k":"commit","t":"t1"}\n'
        with pytest.raises(ValueError, match="history line 2 is corrupt"):
            History.loads(text)

    def test_epochs_split_on_boot(self):
        history = History([
            Event(kind="boot"),
            Event(kind="commit", txn="t1"),
            Event(kind="boot"),
            Event(kind="commit", txn="t2"),
        ])
        epochs = history.epochs()
        assert [len(epoch) for epoch in epochs] == [1, 1]
        assert epochs[0][0].txn == "t1"
        assert epochs[1][0].txn == "t2"


# ---------------------------------------------------------------------------
# The recorder
# ---------------------------------------------------------------------------


class TestHistoryRecorder:
    def test_versions_count_up_and_reads_observe_installer(self):
        db, x, _y = _account_db()
        tm = TransactionManager(db)
        with HistoryRecorder(db) as recorder:
            t1 = tm.begin()
            tm.write(t1, x, "Balance", 110)
            tm.commit(t1)
            t2 = tm.begin()
            assert tm.read(t2, x, "Balance") == 110
            tm.commit(t2)
        events = recorder.history.events
        writes = [e for e in events if e.kind == "write"]
        assert [e.version for e in writes] == [1]
        reads = [e for e in events if e.kind == "read" and e.txn == f"t{t2.txn_id}"]
        assert reads and reads[-1].version == 1
        assert reads[-1].installer == f"t{t1.txn_id}"

    def test_abort_rewinds_versions_and_suppresses_undo_writes(self):
        db, x, _y = _account_db()
        tm = TransactionManager(db)
        with HistoryRecorder(db) as recorder:
            t1 = tm.begin()
            tm.write(t1, x, "Balance", 999)
            tm.abort(t1)
            t2 = tm.begin()
            assert tm.read(t2, x, "Balance") == 100
            tm.commit(t2)
        events = recorder.history.events
        # The undo write-back is not an event: only the manager's
        # undo-image read, the original install, and the abort.
        t1_key = f"t{t1.txn_id}"
        assert [e.kind for e in events
                if e.txn == t1_key] == ["read", "write", "abort"]
        # After the rewind t2 observes the initial version again.
        read = [e for e in events
                if e.kind == "read" and e.txn == f"t{t2.txn_id}"][-1]
        assert read.version == 0 and read.installer is None
        assert check_history(recorder.history).clean

    def test_bare_ops_get_auto_txns(self):
        db, x, _y = _account_db()
        with HistoryRecorder(db) as recorder:
            db.set_value(x, "Balance", 150)
            db.value(x, "Balance")
        events = recorder.history.events
        auto = {e.txn for e in events if e.txn.startswith("b")}
        assert len(auto) == 2  # one auto-txn per bare op
        assert [e.kind for e in events if e.kind == "commit"] == ["commit"] * 2
        assert check_history(recorder.history).clean

    def test_detach_is_idempotent_and_stops_recording(self):
        db, x, _y = _account_db()
        recorder = HistoryRecorder(db)
        assert recorder.attached
        recorder.detach()
        recorder.detach()
        assert not recorder.attached
        before = len(recorder.history)
        db.set_value(x, "Balance", 1)
        assert len(recorder.history) == before
        assert not db.on_read and not db.on_update

    def test_streaming_path_and_stats(self, tmp_path):
        db, x, _y = _account_db()
        path = tmp_path / "live.jsonl"
        recorder = HistoryRecorder(db, path=str(path))
        db.set_value(x, "Balance", 7)
        recorder.close()
        loaded = History.load(path)
        assert loaded.events == recorder.history.events
        assert loaded.events[0].kind == "boot"
        row = recorder.stats_row()
        assert row["attached"] is False
        assert row["events"] == len(recorder.history)
        assert row["writes"] == 1


# ---------------------------------------------------------------------------
# The checker on hand-built histories
# ---------------------------------------------------------------------------


def _committed(*txns):
    return [Event(kind="commit", txn=txn) for txn in txns]


class TestCheckerRules:
    def test_serial_history_is_clean(self):
        report = check_history([
            Event(kind="write", txn="t1", uid="X", version=1),
            Event(kind="commit", txn="t1"),
            Event(kind="read", txn="t2", uid="X", version=1, installer="t1"),
            Event(kind="write", txn="t2", uid="X", version=2),
            Event(kind="commit", txn="t2"),
        ])
        assert report.clean
        assert report.checked == 5

    def test_g0_pure_write_cycle(self):
        report = check_history([
            Event(kind="write", txn="t1", uid="X", version=1),
            Event(kind="write", txn="t2", uid="X", version=2),
            Event(kind="write", txn="t2", uid="Y", version=1),
            Event(kind="write", txn="t1", uid="Y", version=2),
        ] + _committed("t1", "t2"))
        assert report.by_rule("ISO-G0")
        assert not report.by_rule("ISO-G2")

    def test_g1a_aborted_writer_is_error(self):
        report = check_history([
            Event(kind="write", txn="t1", uid="X", version=1),
            Event(kind="read", txn="t2", uid="X", version=1, installer="t1"),
            Event(kind="abort", txn="t1"),
            Event(kind="commit", txn="t2"),
        ])
        (finding,) = report.by_rule("ISO-G1A")
        assert finding.severity is Severity.ERROR
        assert finding.detail["status"] == "aborted"

    def test_g1a_unfinished_writer_is_warning(self):
        report = check_history([
            Event(kind="write", txn="t1", uid="X", version=1),
            Event(kind="read", txn="t2", uid="X", version=1, installer="t1"),
            Event(kind="commit", txn="t2"),
        ])
        (finding,) = report.by_rule("ISO-G1A")
        assert finding.severity is Severity.WARNING
        assert finding.detail["status"] == "unfinished"
        assert report.ok is False and not report.errors

    def test_g1b_intermediate_read(self):
        report = check_history([
            Event(kind="write", txn="t1", uid="X", version=1),
            Event(kind="read", txn="t2", uid="X", version=1, installer="t1"),
            Event(kind="write", txn="t1", uid="X", version=2),
        ] + _committed("t1", "t2"))
        (finding,) = report.by_rule("ISO-G1B")
        assert finding.detail["final_version"] == 2

    def test_g1c_wr_cycle(self):
        report = check_history([
            Event(kind="write", txn="t1", uid="X", version=1),
            Event(kind="read", txn="t2", uid="X", version=1, installer="t1"),
            Event(kind="write", txn="t2", uid="Y", version=1),
            Event(kind="read", txn="t1", uid="Y", version=1, installer="t2"),
        ] + _committed("t1", "t2"))
        assert report.by_rule("ISO-G1C")
        assert not report.by_rule("ISO-G0")

    def test_g2_write_skew_shape(self):
        report = check_history([
            Event(kind="read", txn="t1", uid="X", version=0),
            Event(kind="read", txn="t2", uid="Y", version=0),
            Event(kind="write", txn="t1", uid="Y", version=1),
            Event(kind="write", txn="t2", uid="X", version=1),
        ] + _committed("t1", "t2"))
        assert report.by_rule("ISO-G2")
        (skew,) = report.by_rule("ISO-WRITE-SKEW")
        assert set(skew.detail["cycle"]) == {"t1", "t2"}

    def test_g2_lost_update_shape(self):
        report = check_history([
            Event(kind="read", txn="t1", uid="X", version=0),
            Event(kind="read", txn="t2", uid="X", version=0),
            Event(kind="write", txn="t2", uid="X", version=1),
            Event(kind="commit", txn="t2"),
            Event(kind="write", txn="t1", uid="X", version=2),
            Event(kind="commit", txn="t1"),
        ])
        cycles = report.by_rule("ISO-G2")
        assert cycles and len(cycles[0].detail["cycle"]) == 2
        (lost,) = report.by_rule("ISO-LOST-UPDATE")
        assert "lost update on X" in lost.message

    def test_aborted_writers_leave_no_dsg_edges(self):
        edges = build_dsg([
            Event(kind="write", txn="t1", uid="X", version=1),
            Event(kind="abort", txn="t1"),
            Event(kind="write", txn="t2", uid="X", version=2),
            Event(kind="commit", txn="t2"),
        ])
        assert edges == []

    def test_boot_marker_isolates_epochs(self):
        # The same skew events as above, split across a crash: no edge
        # crosses the boot marker, so the cycle disappears.
        split = [
            Event(kind="boot"),
            Event(kind="read", txn="t1", uid="X", version=0),
            Event(kind="write", txn="t1", uid="Y", version=1),
            Event(kind="commit", txn="t1"),
            Event(kind="boot"),
            Event(kind="read", txn="t2", uid="Y", version=0),
            Event(kind="write", txn="t2", uid="X", version=1),
            Event(kind="commit", txn="t2"),
        ]
        assert check_history(split).clean
        merged = [event for event in split if event.kind != "boot"]
        assert check_history(merged).by_rule("ISO-G2")


# ---------------------------------------------------------------------------
# Live seeded anomalies through real managers
# ---------------------------------------------------------------------------


class TestLiveAnomalies:
    def test_lost_update_detected_with_minimal_witness(self):
        db, x, _y = _account_db()
        tm1, tm2 = _broken_pair(db)
        with HistoryRecorder(db) as recorder:
            t1, t2 = tm1.begin(), tm2.begin()
            stale_1 = tm1.read(t1, x, "Balance")
            stale_2 = tm2.read(t2, x, "Balance")
            tm1.write(t1, x, "Balance", stale_1 + 10)
            tm2.write(t2, x, "Balance", stale_2 + 25)
            tm1.commit(t1)
            tm2.commit(t2)
        report = check_history(recorder.history)
        (cycle,) = report.by_rule("ISO-G2")
        assert set(cycle.detail["cycle"]) == {f"t{t1.txn_id}", f"t{t2.txn_id}"}
        assert report.by_rule("ISO-LOST-UPDATE")

    def test_shared_lock_table_prevents_the_same_interleaving(self):
        db, x, _y = _account_db()
        table = LockTable()
        tm1 = TransactionManager(db, table)
        tm2 = TransactionManager(db, table)
        with HistoryRecorder(db) as recorder:
            t1, t2 = tm1.begin(), tm2.begin()
            tm1.read(t1, x, "Balance")
            with pytest.raises(LockConflictError):
                tm2.write(t2, x, "Balance", 125)
            tm2.abort(t2)
            tm1.write(t1, x, "Balance", 110)
            tm1.commit(t1)
        assert check_history(recorder.history).clean

    def test_dirty_read_from_aborted_writer(self):
        db, x, _y = _account_db()
        tm1, tm2 = _broken_pair(db)
        with HistoryRecorder(db) as recorder:
            t1, t2 = tm1.begin(), tm2.begin()
            tm1.write(t1, x, "Balance", 999)
            tm2.read(t2, x, "Balance")
            tm1.abort(t1)
            tm2.commit(t2)
        report = check_history(recorder.history)
        assert any(f.severity is Severity.ERROR
                   for f in report.by_rule("ISO-G1A"))


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------


_mix_settings = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestProperties:
    @given(
        script=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),   # 0 read, 1 write
                st.integers(min_value=0, max_value=1),   # which account
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=12,
        ),
        chunks=st.lists(st.integers(min_value=1, max_value=4), max_size=5),
    )
    @_mix_settings
    def test_serial_histories_are_clean(self, script, chunks):
        """Any serial transaction sequence records an anomaly-free
        history — each transaction commits before the next begins."""
        db, x, y = _account_db()
        tm = TransactionManager(db)
        accounts = (x, y)
        steps = iter(script)
        with HistoryRecorder(db) as recorder:
            for size in chunks:
                txn = tm.begin()
                for _ in range(size):
                    step = next(steps, None)
                    if step is None:
                        break
                    action, which, delta = step
                    if action == 0:
                        tm.read(txn, accounts[which], "Balance")
                    else:
                        tm.write(txn, accounts[which], "Balance", 100 + delta)
                tm.commit(txn)
        assert check_history(recorder.history).clean

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @_mix_settings
    def test_strict_2pl_interleavings_never_yield_iso_errors(self, seed):
        from repro.workloads.txmix import (
            composite_mix,
            memory_fixture,
            run_tm_mix,
        )

        db = Database()
        roots, components = memory_fixture(db, roots=3, parts_per_root=2)
        scripts = composite_mix(
            roots, transactions=6, steps_per_txn=3,
            components_by_root=components, seed=seed,
        )
        with HistoryRecorder(db) as recorder:
            run_tm_mix(db, scripts)
        report = check_history(recorder.history)
        assert not report.errors, report.summary()

    @given(
        delta_1=st.integers(min_value=1, max_value=100),
        delta_2=st.integers(min_value=1, max_value=100),
        first_committer=st.integers(min_value=0, max_value=1),
    )
    @_mix_settings
    def test_seeded_lost_update_always_classified(
        self, delta_1, delta_2, first_committer
    ):
        db, x, _y = _account_db()
        tm1, tm2 = _broken_pair(db)
        with HistoryRecorder(db) as recorder:
            t1, t2 = tm1.begin(), tm2.begin()
            stale_1 = tm1.read(t1, x, "Balance")
            stale_2 = tm2.read(t2, x, "Balance")
            tm1.write(t1, x, "Balance", stale_1 + delta_1)
            tm2.write(t2, x, "Balance", stale_2 + delta_2)
            order = [(tm1, t1), (tm2, t2)]
            if first_committer:
                order.reverse()
            for manager, txn in order:
                manager.commit(txn)
        report = check_history(recorder.history)
        assert report.by_rule("ISO-LOST-UPDATE"), report.summary()


# ---------------------------------------------------------------------------
# Static half: template predictions
# ---------------------------------------------------------------------------


class TestPredictIsolation:
    @pytest.fixture()
    def assembly(self):
        from repro.workloads.parts import build_assembly

        db = Database()
        roots = [build_assembly(db, depth=2, fanout=2).root
                 for _ in range(2)]
        return db, roots

    def test_read_modify_write_predicts_lost_update(self, assembly):
        db, roots = assembly
        racy = TransactionTemplate("increment", [
            ("read_instance", roots[0]), ("update_instance", roots[0]),
        ])
        report = predict_isolation(db, [racy])
        (finding,) = report.by_rule("ISO-TEMPLATE-LOST-UPDATE")
        assert finding.severity is Severity.WARNING
        assert "second concurrent instance" in finding.message

    def test_mutual_pair_predicts_skew(self, assembly):
        db, roots = assembly
        left = TransactionTemplate("left", [
            ("read_instance", roots[0]), ("update_instance", roots[1]),
        ])
        right = TransactionTemplate("right", [
            ("read_instance", roots[1]), ("update_instance", roots[0]),
        ])
        report = predict_isolation(db, [left, right])
        (finding,) = report.by_rule("ISO-TEMPLATE-SKEW")
        assert set(finding.detail["templates"]) == {"left", "right"}

    def test_read_only_templates_are_clean(self, assembly):
        db, roots = assembly
        audit = TransactionTemplate("audit", [
            ("read_composite", roots[0]), ("read_composite", roots[1]),
        ])
        assert predict_isolation(db, [audit]).clean

    def test_three_template_hazard_ring(self, assembly):
        db, roots = assembly
        from repro.workloads.parts import build_assembly

        roots = roots + [build_assembly(db, depth=2, fanout=2).root]
        ring = [
            TransactionTemplate(f"hop{i}", [
                ("read_instance", roots[i]),
                ("update_instance", roots[(i + 1) % 3]),
            ])
            for i in range(3)
        ]
        report = predict_isolation(db, ring)
        (finding,) = report.by_rule("ISO-TEMPLATE-CYCLE")
        assert len(finding.detail["cycle"]) == 3


# ---------------------------------------------------------------------------
# Wiring: plane registry drift, server recording, hook-leak lint
# ---------------------------------------------------------------------------


class TestPlaneWiring:
    def test_registry_cli_and_server_stay_in_lockstep(self):
        from repro.analysis import cli
        from repro.server import dispatch

        registry_cli = {name for spec in PLANES for name in spec.cli}
        assert registry_cli | {"self-test"} == set(cli.SUBCOMMANDS)
        registry_server = {name for spec in PLANES for name in spec.server}
        assert registry_server | {"all"} == set(dispatch.CHECK_PLANES)
        assert len(PLANES) == 5

    def test_every_iso_rule_maps_to_the_iso_plane(self):
        for rule in ("ISO-G0", "ISO-G1A", "ISO-G2", "ISO-LOST-UPDATE",
                     "ISO-TEMPLATE-SKEW"):
            assert plane_for_rule(rule).name == "iso"
        assert plane_for_rule("CODE-HOOK-LEAK").name == "concurrency"

    def test_event_kinds_is_the_wire_vocabulary(self):
        assert EVENT_KINDS == {"read", "write", "delete", "commit",
                               "abort", "boot"}


class TestServerRecording:
    def test_server_records_and_checks_over_tcp(self, tmp_path):
        from repro.server import Client, ServerThread

        path = tmp_path / "server.jsonl"
        with ServerThread(record_history=str(path)) as handle:
            with Client(port=handle.port) as client:
                client.make_class("Doc", attributes=[
                    {"name": "Title", "domain": "string"},
                ])
                doc = client.make("Doc", values={"Title": "a"})
                client.begin()
                client.set_value(doc, "Title", "b")
                client.commit()
                assert client.value(doc, "Title") == "b"
                verdict = client.check("iso")
                assert verdict["iso"]["counts"]["error"] == 0
                stats = client.stats()
                assert stats["history"]["attached"] is True
                assert stats["history"]["events"] > 0
        # The streamed file is the same history, offline.
        offline = History.load(path)
        assert offline.events[0].kind == "boot"
        assert not check_history(offline).errors

    def test_iso_plane_refused_without_a_recorder(self):
        from repro.server import Client, ServerThread

        with ServerThread() as handle:
            with Client(port=handle.port) as client:
                report = client.check()  # "all" simply omits the plane
                assert "iso" not in report
                with pytest.raises(Exception, match="disabled"):
                    client.check("iso")


class TestHookLeakLint:
    LEAKY = '''
class Watcher:
    def __init__(self, db):
        self.db = db
        db.on_op_end.append(self._tick)

    def _tick(self):
        pass
'''

    FIXED = '''
class Watcher:
    def __init__(self, db):
        self.db = db
        db.on_op_end.append(self._tick)

    def close(self):
        self.db.on_op_end.remove(self._tick)

    def _tick(self):
        pass
'''

    def test_leaky_hook_attachment_flagged(self):
        report = lint_source(self.LEAKY, "watcher.py")
        assert report.by_rule("CODE-HOOK-LEAK")

    def test_detach_in_close_passes(self):
        report = lint_source(self.FIXED, "watcher.py")
        assert not report.by_rule("CODE-HOOK-LEAK")

    def test_real_package_has_no_hook_leaks(self):
        from repro.analysis.codelint import lint_package

        report = lint_package()
        assert not report.by_rule("CODE-HOOK-LEAK"), [
            f.location for f in report.by_rule("CODE-HOOK-LEAK")
        ]


# ---------------------------------------------------------------------------
# CrashSim / sweep integration
# ---------------------------------------------------------------------------


class TestCrashSimHistories:
    def test_crash_plan_history_checks_clean(self, tmp_path):
        from repro.faults.crashsim import CrashSim
        from repro.faults.plan import random_plan

        plan = random_plan(20260807)
        path = tmp_path / "plan.jsonl"
        report = CrashSim(plan, tmp_path / "scratch",
                          record_history=path).run()
        assert report.ok, report.summary()
        assert report.history is not None
        assert report.iso_summary.startswith("iso:")
        streamed = History.load(path)
        assert [e.to_dict() for e in streamed] == [
            e.to_dict() for e in report.history
        ]
        assert not check_history(streamed).errors

    def test_cli_checks_a_recorded_history_file(self, tmp_path, capsys):
        from repro.analysis.cli import main

        db, x, _y = _account_db()
        tm1, tm2 = _broken_pair(db)
        path = tmp_path / "anomaly.jsonl"
        with HistoryRecorder(db, path=str(path)):
            t1, t2 = tm1.begin(), tm2.begin()
            stale_1 = tm1.read(t1, x, "Balance")
            stale_2 = tm2.read(t2, x, "Balance")
            tm1.write(t1, x, "Balance", stale_1 + 1)
            tm2.write(t2, x, "Balance", stale_2 + 2)
            tm1.commit(t1)
            tm2.commit(t2)
        code = main(["iso", str(path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(f["rule"] == "ISO-LOST-UPDATE"
                   for f in payload["findings"])
