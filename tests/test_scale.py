"""Laptop-scale smoke: the subsystems stay correct at thousands of objects.

Not a performance test (the benchmarks measure that) — a correctness test
at a size where O(n^2) accidents, recursion limits, and bookkeeping drift
would surface.
"""

import pytest

from repro import AttributeSpec, Database, SetOf
from repro.workloads import build_corpus, build_part_tree


class TestScale:
    def test_five_thousand_object_corpus(self):
        db = Database()
        corpus = build_corpus(db, documents=120, sections_per_document=6,
                              paragraphs_per_section=5, share_ratio=0.4,
                              seed=99)
        assert len(db) > 2500
        db.validate()
        # Operations stay consistent at scale.
        doc = corpus.documents[0]
        components = db.components_of(doc)
        for uid in components[:50]:
            assert db.component_of(uid, doc)
        # Tear down every document; only the independent images survive.
        for document in corpus.documents:
            if db.exists(document):
                db.delete(document)
        survivors = [inst for inst in db.live_instances()]
        assert all(inst.class_name == "Image" for inst in survivors)
        db.validate()

    def test_deep_tree_no_recursion_limit(self):
        # 600 levels deep: all traversals and the deletion cascade are
        # iterative, so Python's recursion limit is never at risk.
        db = Database()
        db.make_class("Link", attributes=[
            AttributeSpec("next", domain="Link", composite=True,
                          exclusive=True, dependent=True),
        ])
        head = db.make("Link")
        current = head
        for _ in range(600):
            current = db.make("Link", parents=[(current, "next")])
        assert len(db.components_of(head)) == 600
        assert len(db.ancestors_of(current)) == 600
        assert db.roots_of(current) == [head]
        report = db.delete(head)
        assert report.deleted_count == 601
        assert len(db) == 0

    def test_wide_tree_operations(self):
        db = Database()
        tree = build_part_tree(db, depth=2, fanout=40)  # 1 + 40 + 1600
        assert tree.size == 1641
        assert len(db.components_of(tree.root)) == 1640
        assert len(db.components_of(tree.root, level=1)) == 40
        db.validate()

    def test_serializer_on_large_instance(self):
        from repro.storage.serializer import decode_instance, encode_instance

        db = Database()
        db.make_class("Doc", attributes=[
            AttributeSpec("Body", domain="string"),
            AttributeSpec("Refs", domain=SetOf("Doc")),
        ])
        others = [db.make("Doc") for _ in range(500)]
        big = db.make("Doc", values={"Body": "x" * 200_000, "Refs": others})
        restored = decode_instance(encode_instance(db.resolve(big)))
        assert restored.values["Body"] == "x" * 200_000
        assert restored.values["Refs"] == others

    @pytest.mark.parametrize("buffer_capacity", [4, 64])
    def test_paged_database_at_scale(self, buffer_capacity):
        db = Database(paged=True, buffer_capacity=buffer_capacity)
        build_corpus(db, documents=40, share_ratio=0.3, seed=5)
        # Every record survives a cold-cache read-back.
        db.store.drop_cache()
        for instance in list(db.live_instances())[:200]:
            stored = db.store.read(instance.uid)
            assert stored.values == instance.values
