"""Tests for the Section 7 composite locking protocols (Figure 9) and the
GARZ88 root-locking algorithm's shared-reference anomaly."""

import pytest

from repro import AttributeSpec, SetOf
from repro.errors import LockConflictError
from repro.locking.modes import LockMode as M
from repro.locking.protocol import (
    CompositeLockingProtocol,
    InstanceLockingBaseline,
    RootLockingAlgorithm,
)
from repro.locking.table import LockTable


class TestCompositePlans:
    def test_read_plan_modes(self, figure9_db):
        database, h = figure9_db
        protocol = CompositeLockingProtocol(database)
        plan = dict(protocol.plan_composite(h["k1"], "read"))
        assert plan[("class", "K")] is M.IS
        assert plan[("instance", h["k1"])] is M.S
        assert plan[("class", "C")] is M.ISOS  # shared link
        assert plan[("class", "W")] is M.ISO   # exclusive link below C

    def test_write_plan_modes(self, figure9_db):
        database, h = figure9_db
        protocol = CompositeLockingProtocol(database)
        plan = dict(protocol.plan_composite(h["i1"], "write"))
        assert plan[("class", "I")] is M.IX
        assert plan[("instance", h["i1"])] is M.X
        assert plan[("class", "C")] is M.IXO
        assert plan[("class", "W")] is M.IXO

    def test_instance_plan(self, figure9_db):
        database, h = figure9_db
        protocol = CompositeLockingProtocol(database)
        plan = dict(protocol.plan_instance(h["c1"], "write"))
        assert plan[("class", "C")] is M.IX
        assert plan[("instance", h["c1"])] is M.X

    def test_bad_intent_rejected(self, figure9_db):
        database, h = figure9_db
        protocol = CompositeLockingProtocol(database)
        with pytest.raises(ValueError):
            protocol.plan_composite(h["i1"], "browse")

    def test_mixed_link_types_lock_both_modes(self, db):
        # A component class reached through an exclusive AND a shared link
        # is locked in both corresponding modes.
        db.make_class("Leaf")
        db.make_class("Mid", attributes=[
            AttributeSpec("leafE", domain="Leaf", composite=True,
                          exclusive=True, dependent=False),
            AttributeSpec("leafS", domain=SetOf("Leaf"), composite=True,
                          exclusive=False, dependent=False),
        ])
        mid = db.make("Mid")
        protocol = CompositeLockingProtocol(db)
        plan = protocol.plan_composite(mid, "read")
        modes = {mode for res, mode in plan if res == ("class", "Leaf")}
        assert modes == {M.ISO, M.ISOS}


class TestFigure9Examples:
    def test_examples_1_and_2_coexist(self, figure9_db):
        database, h = figure9_db
        table = LockTable()
        protocol = CompositeLockingProtocol(database, table)
        protocol.lock_composite("T1", h["i1"], "write")   # Example 1
        protocol.lock_composite("T2", h["k1"], "read")    # Example 2
        assert table.modes_held("T1", ("class", "C")) == {M.IXO}
        assert table.modes_held("T2", ("class", "C")) == {M.ISOS}

    def test_example_3_conflicts_with_1(self, figure9_db):
        database, h = figure9_db
        table = LockTable()
        protocol = CompositeLockingProtocol(database, table)
        protocol.lock_composite("T1", h["i1"], "write")
        with pytest.raises(LockConflictError) as excinfo:
            protocol.lock_composite("T3", h["k2"], "write", wait=False)
        assert excinfo.value.resource == ("class", "C")

    def test_example_3_conflicts_with_2(self, figure9_db):
        database, h = figure9_db
        table = LockTable()
        protocol = CompositeLockingProtocol(database, table)
        protocol.lock_composite("T2", h["k1"], "read")
        with pytest.raises(LockConflictError):
            protocol.lock_composite("T3", h["k2"], "write", wait=False)

    def test_release_unblocks(self, figure9_db):
        database, h = figure9_db
        table = LockTable()
        protocol = CompositeLockingProtocol(database, table)
        protocol.lock_composite("T1", h["i1"], "write")
        with pytest.raises(LockConflictError):
            protocol.lock_composite("T3", h["k2"], "write", wait=False)
        protocol.release("T3")
        protocol.release("T1")
        protocol.lock_composite("T3", h["k2"], "write", wait=False)

    def test_disjoint_composites_same_hierarchy_update_concurrently(self, db):
        # "multiple users [may] read and update different composite objects
        # that share the same composite class hierarchy"
        from repro.workloads.parts import build_assembly

        t1 = build_assembly(db, depth=1, fanout=3)
        t2 = build_assembly(db, depth=1, fanout=3)
        table = LockTable()
        protocol = CompositeLockingProtocol(db, table)
        protocol.lock_composite("T1", t1.root, "write")
        protocol.lock_composite("T2", t2.root, "write")  # no conflict
        assert table.modes_held("T1", ("class", "Part")) == {M.IXO}
        assert table.modes_held("T2", ("class", "Part")) == {M.IXO}

    def test_composite_writer_blocks_direct_component_writer(self, figure9_db):
        # The paper's own restriction: composite access excludes direct
        # instance access to the component classes.
        database, h = figure9_db
        table = LockTable()
        protocol = CompositeLockingProtocol(database, table)
        protocol.lock_composite("T1", h["i1"], "write")   # C locked IXO
        with pytest.raises(LockConflictError):
            protocol.lock_instance("T2", h["c2"], "write", wait=False)  # C IX

    def test_composite_reader_allows_direct_component_reader(self, figure9_db):
        database, h = figure9_db
        table = LockTable()
        protocol = CompositeLockingProtocol(database, table)
        protocol.lock_composite("T1", h["i1"], "read")    # C locked ISO
        protocol.lock_instance("T2", h["c2"], "read", wait=False)  # C IS: ok


class TestInstanceBaseline:
    def test_lock_count_grows_with_composite_size(self, db):
        from repro.workloads.parts import build_assembly

        small = build_assembly(db, depth=1, fanout=2)
        large = build_assembly(db, depth=2, fanout=4)
        baseline = InstanceLockingBaseline(db)
        protocol = CompositeLockingProtocol(db)
        small_plan = baseline.plan_composite(small.root, "read")
        large_plan = baseline.plan_composite(large.root, "read")
        assert len(large_plan) > len(small_plan)
        # The composite protocol's plan does not grow with object size.
        assert len(protocol.plan_composite(small.root, "read")) == len(
            protocol.plan_composite(large.root, "read")
        )

    def test_baseline_acquires_every_instance(self, db):
        from repro.workloads.parts import build_assembly

        tree = build_assembly(db, depth=1, fanout=3)
        table = LockTable()
        baseline = InstanceLockingBaseline(db, table)
        baseline.lock_composite("T1", tree.root, "write")
        for uid in tree.all_uids:
            assert table.modes_held("T1", ("instance", uid)) == {M.X}


class TestRootLockingAlgorithm:
    def test_exclusive_hierarchy_sound(self, vehicle_db):
        database, v = vehicle_db
        table = LockTable()
        algorithm = RootLockingAlgorithm(database, table)
        algorithm.lock_component("T1", v.body, "read")
        # Conflicting access collides on the single root in the table.
        with pytest.raises(LockConflictError):
            algorithm.lock_component("T2", v.drivetrain, "write", wait=False)
        assert algorithm.detect_implicit_conflicts() == []

    def test_lock_call_count_independent_of_size(self, vehicle_db):
        database, v = vehicle_db
        algorithm = RootLockingAlgorithm(database)
        roots = algorithm.lock_component("T1", v.body, "read")
        assert roots == [v.vehicle]

    def test_shared_reference_anomaly(self, figure5_db):
        # The paper: "The algorithm cannot be used for shared composite
        # references."  T1 reads p (root j), T2 writes q (root k) — no
        # root-level conflict, but both implicitly cover shared o'.
        database, h = figure5_db
        algorithm = RootLockingAlgorithm(database)
        algorithm.lock_component("T1", h["p"], "read")
        algorithm.lock_component("T2", h["q"], "write")
        conflicts = algorithm.detect_implicit_conflicts()
        assert any(c.instance == h["o_prime"] for c in conflicts)

    def test_shared_component_access_locks_all_roots(self, figure5_db):
        database, h = figure5_db
        table = LockTable()
        algorithm = RootLockingAlgorithm(database, table)
        algorithm.lock_component("T1", h["o_prime"], "read")
        assert table.modes_held("T1", ("instance", h["j"])) == {M.S}
        assert table.modes_held("T1", ("instance", h["k"])) == {M.S}

    def test_release_clears_implicit_coverage(self, figure5_db):
        database, h = figure5_db
        algorithm = RootLockingAlgorithm(database)
        algorithm.lock_component("T1", h["p"], "read")
        algorithm.release("T1")
        assert algorithm.implicit_coverage("T1") == {}
