"""Tests for Instance objects and their reverse-reference bookkeeping."""

import pytest

from repro.core.identity import UID
from repro.core.instance import Instance
from repro.errors import TopologyError


def _instance():
    return Instance(UID(1, "C"), "C", {"x": 1})


class TestValues:
    def test_get_set(self):
        obj = _instance()
        assert obj.get("x") == 1
        obj.set("y", "hello")
        assert obj.get("y") == "hello"

    def test_get_default(self):
        assert _instance().get("missing", 42) == 42

    def test_drop_value(self):
        obj = _instance()
        obj.drop_value("x")
        assert obj.get("x") is None

    def test_drop_missing_value_tolerated(self):
        _instance().drop_value("nope")


class TestReverseReferences:
    def test_add_and_find(self):
        obj = _instance()
        parent = UID(2, "P")
        obj.add_reverse_reference(parent, dependent=True, exclusive=True,
                                  attribute="kids")
        ref = obj.find_reverse_reference(parent, "kids")
        assert ref is not None and ref.dependent and ref.exclusive

    def test_find_any_attribute(self):
        obj = _instance()
        parent = UID(2, "P")
        obj.add_reverse_reference(parent, False, False, "a")
        assert obj.find_reverse_reference(parent) is not None

    def test_duplicate_rejected(self):
        obj = _instance()
        parent = UID(2, "P")
        obj.add_reverse_reference(parent, True, True, "kids")
        with pytest.raises(TopologyError):
            obj.add_reverse_reference(parent, True, True, "kids")

    def test_same_parent_different_attribute_allowed(self):
        obj = _instance()
        parent = UID(2, "P")
        obj.add_reverse_reference(parent, True, False, "a")
        obj.add_reverse_reference(parent, True, False, "b")
        assert len(obj.reverse_references) == 2

    def test_remove(self):
        obj = _instance()
        parent = UID(2, "P")
        obj.add_reverse_reference(parent, True, True, "kids")
        removed = obj.remove_reverse_reference(parent, "kids")
        assert removed is not None and not obj.reverse_references

    def test_remove_missing_returns_none(self):
        assert _instance().remove_reverse_reference(UID(9, "P"), "x") is None

    def test_replace(self):
        obj = _instance()
        parent = UID(2, "P")
        obj.add_reverse_reference(parent, True, True, "kids")
        ref = obj.reverse_references[0]
        obj.replace_reverse_reference(ref, ref.with_flags(dependent=False))
        assert not obj.reverse_references[0].dependent


class TestDefinition1Partitions:
    """Ix/Dx/Is/Ds of Definition 1 (paper 2.2)."""

    def test_partitions(self):
        obj = _instance()
        p_ix, p_dx, p_is, p_ds = (UID(n, "P") for n in (10, 11, 12, 13))
        obj.add_reverse_reference(p_ix, dependent=False, exclusive=True, attribute="a")
        assert obj.ix_parents() == [p_ix]
        obj.remove_reverse_reference(p_ix, "a")
        obj.add_reverse_reference(p_dx, dependent=True, exclusive=True, attribute="a")
        assert obj.dx_parents() == [p_dx]
        obj.remove_reverse_reference(p_dx, "a")
        obj.add_reverse_reference(p_is, dependent=False, exclusive=False, attribute="a")
        obj.add_reverse_reference(p_ds, dependent=True, exclusive=False, attribute="a")
        assert obj.is_parents() == [p_is]
        assert obj.ds_parents() == [p_ds]
        assert set(obj.composite_parents()) == {p_is, p_ds}

    def test_flag_queries(self):
        obj = _instance()
        assert not obj.has_composite_reference()
        obj.add_reverse_reference(UID(2, "P"), False, False, "a")
        assert obj.has_composite_reference()
        assert obj.has_shared_reference()
        assert not obj.has_exclusive_reference()


class TestStorageSize:
    def test_reverse_references_grow_object(self):
        # Paper 2.4: keeping reverse pointers in the object "causes the
        # object size to increase" — the B5 metric.
        small = _instance()
        big = _instance()
        for n in range(10):
            big.add_reverse_reference(UID(100 + n, "P"), False, False, "a")
        assert big.storage_size() > small.storage_size()

    def test_size_counts_values(self):
        empty = Instance(UID(1, "C"), "C")
        full = Instance(UID(2, "C"), "C", {"text": "x" * 100})
        assert full.storage_size() > empty.storage_size() + 90
