"""Tests for the s-expression reader, message interpreter, and indexes."""

import pytest

from repro import TopologyError
from repro.query import (
    Interpreter,
    Keyword,
    QueryEvaluationError,
    QuerySyntaxError,
    Symbol,
    parse,
    parse_all,
    tokenize,
)
from repro.query.sexpr import QUOTE


class TestReader:
    def test_tokenize_basics(self):
        assert tokenize("(a b)") == ["(", "a", "b", ")"]

    def test_tokenize_string(self):
        assert tokenize('(x "hello world")') == ["(", "x", ('"', "hello world"), ")"]

    def test_tokenize_escaped_string(self):
        assert tokenize(r'"a\"b"') == [('"', 'a"b')]

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize('"oops')

    def test_comments_skipped(self):
        assert parse("(a ; a comment\n b)") == [Symbol("a"), Symbol("b")]

    def test_parse_atoms(self):
        assert parse_all("42 -3 2.5 t nil :domain hello") == [
            42, -3, 2.5, True, None, Keyword("domain"), Symbol("hello"),
        ]

    def test_parse_nested(self):
        form = parse("(a (b 1) (c (d)))")
        assert form[0] == Symbol("a")
        assert form[1] == [Symbol("b"), 1]
        assert form[2] == [Symbol("c"), [Symbol("d")]]

    def test_quote(self):
        assert parse("'x") == [QUOTE, Symbol("x")]
        assert parse("'(a b)") == [QUOTE, [Symbol("a"), Symbol("b")]]

    def test_missing_paren(self):
        with pytest.raises(QuerySyntaxError):
            parse("(a (b)")

    def test_stray_paren(self):
        with pytest.raises(QuerySyntaxError):
            parse(")")

    def test_multiple_forms_rejected_by_parse(self):
        with pytest.raises(QuerySyntaxError):
            parse("(a) (b)")


@pytest.fixture
def interp():
    interpreter = Interpreter()
    interpreter.run("""
      (make-class 'AutoBody)
      (make-class 'AutoTires)
      (make-class 'Vehicle
        :attributes '((Color :domain string)
                      (Doors :domain integer :init 4)
                      (Body :domain AutoBody :composite t :exclusive t
                            :dependent nil)
                      (Tires :domain (set-of AutoTires) :composite t
                             :exclusive t :dependent nil)))
    """)
    return interpreter


class TestSchemaMessages:
    def test_make_class_defined(self, interp):
        classdef = interp.db.classdef("Vehicle")
        assert classdef.attribute("Doors").init == 4
        assert classdef.attribute("Body").is_composite
        assert not classdef.attribute("Body").dependent
        assert classdef.attribute("Tires").is_set

    def test_superclasses(self, interp):
        interp.run("(make-class 'Sports :superclasses (Vehicle))")
        assert interp.db.lattice.is_subclass("Sports", "Vehicle")

    def test_versionable_keyword(self, interp):
        interp.run("(make-class 'Design :versionable t)")
        assert interp.db.classdef("Design").versionable

    def test_describe(self, interp):
        text = interp.run_one("(describe Vehicle)")
        assert "make-class 'Vehicle" in text

    def test_class_predicates(self, interp):
        assert interp.run_one("(compositep Vehicle)")
        assert interp.run_one("(compositep Vehicle Body)")
        assert not interp.run_one("(compositep Vehicle Color)")
        assert interp.run_one("(exclusive-compositep Vehicle Body)")
        assert not interp.run_one("(shared-compositep Vehicle Body)")
        assert not interp.run_one("(dependent-compositep Vehicle Body)")


class TestInstanceMessages:
    def test_make_and_get(self, interp):
        interp.run('(setq v (make Vehicle :Color "red"))')
        assert interp.run_one("(get v Color)") == "red"
        assert interp.run_one("(get v Doors)") == 4

    def test_set(self, interp):
        interp.run('(setq v (make Vehicle)) (set v Color "blue")')
        assert interp.run_one("(get v Color)") == "blue"

    def test_make_with_parent(self, interp):
        interp.run("""
          (setq v (make Vehicle))
          (setq b (make AutoBody :parent ((v Body))))
        """)
        v, b = interp.env["v"], interp.env["b"]
        assert interp.db.parents_of(b) == [v]
        assert interp.run_one("(child-of b v)")

    def test_insert_remove(self, interp):
        interp.run("""
          (setq v (make Vehicle))
          (setq t1 (make AutoTires))
          (insert v Tires t1)
        """)
        assert interp.run_one("(get v Tires)") == [interp.env["t1"]]
        assert interp.run_one("(remove v Tires t1)")
        assert interp.run_one("(get v Tires)") == []

    def test_make_part_of_and_remove(self, interp):
        interp.run("""
          (setq v (make Vehicle))
          (setq b (make AutoBody))
          (make-part-of b v Body)
        """)
        assert interp.run_one("(component-of b v)")
        interp.run("(remove-part-of b v Body)")
        assert not interp.run_one("(component-of b v)")

    def test_delete_returns_report(self, interp):
        interp.run("(setq v (make Vehicle))")
        report = interp.run_one("(delete v)")
        assert report.deleted == [interp.env["v"]]

    def test_topology_errors_propagate(self, interp):
        interp.run("""
          (setq b (make AutoBody))
          (setq v1 (make Vehicle :Body b))
          (setq v2 (make Vehicle))
        """)
        with pytest.raises(TopologyError):
            interp.run("(set v2 Body b)")

    def test_unbound_variable(self, interp):
        with pytest.raises(QueryEvaluationError):
            interp.run("(get nobody Color)")

    def test_unknown_message(self, interp):
        with pytest.raises(QueryEvaluationError):
            interp.run("(frobnicate 1)")


class TestTraversalMessages:
    @pytest.fixture
    def loaded(self, interp):
        interp.run("""
          (setq b (make AutoBody))
          (setq t1 (make AutoTires))
          (setq t2 (make AutoTires))
          (setq v (make Vehicle :Body b))
          (insert v Tires t1)
          (insert v Tires t2)
        """)
        return interp

    def test_components_of(self, loaded):
        result = loaded.run_one("(components-of v)")
        assert set(result) == {loaded.env["b"], loaded.env["t1"], loaded.env["t2"]}

    def test_components_with_class_filter(self, loaded):
        result = loaded.run_one("(components-of v (AutoTires))")
        assert set(result) == {loaded.env["t1"], loaded.env["t2"]}

    def test_components_with_level(self, loaded):
        assert loaded.run_one("(components-of v nil nil nil 1)") == \
            loaded.run_one("(components-of v)")

    def test_parents_and_ancestors(self, loaded):
        assert loaded.run_one("(parents-of b)") == [loaded.env["v"]]
        assert loaded.run_one("(ancestors-of t1)") == [loaded.env["v"]]

    def test_predicate_messages(self, loaded):
        assert loaded.run_one("(exclusive-component-of b v)")
        assert not loaded.run_one("(shared-component-of b v)")


class TestSelect:
    @pytest.fixture
    def fleet(self, interp):
        interp.run("""
          (setq r1 (make Vehicle :Color "red" :Doors 2))
          (setq r2 (make Vehicle :Color "red" :Doors 4))
          (setq b1 (make Vehicle :Color "blue" :Doors 4))
        """)
        return interp

    def test_select_all(self, fleet):
        assert len(fleet.run_one("(select Vehicle)")) == 3

    def test_select_equality(self, fleet):
        result = fleet.run_one('(select Vehicle (= Color "red"))')
        assert set(result) == {fleet.env["r1"], fleet.env["r2"]}

    def test_select_comparison(self, fleet):
        result = fleet.run_one("(select Vehicle (> Doors 2))")
        assert set(result) == {fleet.env["r2"], fleet.env["b1"]}

    def test_select_and_or_not(self, fleet):
        result = fleet.run_one(
            '(select Vehicle (and (= Color "red") (= Doors 4)))')
        assert result == [fleet.env["r2"]]
        result = fleet.run_one(
            '(select Vehicle (or (= Doors 2) (= Color "blue")))')
        assert set(result) == {fleet.env["r1"], fleet.env["b1"]}
        result = fleet.run_one('(select Vehicle (not (= Color "red")))')
        assert result == [fleet.env["b1"]]

    def test_select_contains(self, fleet):
        fleet.run("""
          (setq t1 (make AutoTires))
          (insert r1 Tires t1)
        """)
        result = fleet.run_one("(select Vehicle (contains Tires t1))")
        assert result == [fleet.env["r1"]]

    def test_select_none_comparison_safe(self, fleet):
        fleet.run("(setq x (make Vehicle))")  # Color is None
        assert fleet.env["x"] not in fleet.run_one(
            '(select Vehicle (< Color "z"))')

    def test_select_unknown_class(self, fleet):
        with pytest.raises(QueryEvaluationError):
            fleet.run("(select Nothing)")

    def test_select_subclass_instances_included(self, fleet):
        fleet.run("""
          (make-class 'Sports :superclasses (Vehicle))
          (setq s (make Sports :Color "red"))
        """)
        result = fleet.run_one('(select Vehicle (= Color "red"))')
        assert fleet.env["s"] in result


class TestIndexes:
    @pytest.fixture
    def indexed(self, interp):
        interp.run("""
          (create-index Vehicle Color)
          (setq r1 (make Vehicle :Color "red"))
          (setq r2 (make Vehicle :Color "red"))
          (setq b1 (make Vehicle :Color "blue"))
        """)
        return interp

    def test_indexed_select_matches_scan(self, indexed):
        index = indexed.indexes.index_for("Vehicle", "Color")
        before = index.hits
        result = indexed.run_one('(select Vehicle (= Color "red"))')
        assert set(result) == {indexed.env["r1"], indexed.env["r2"]}
        assert index.hits == before + 1  # the index was actually used

    def test_index_follows_updates(self, indexed):
        indexed.run('(set r1 Color "green")')
        assert indexed.run_one('(select Vehicle (= Color "red"))') == \
            [indexed.env["r2"]]
        assert indexed.run_one('(select Vehicle (= Color "green"))') == \
            [indexed.env["r1"]]

    def test_index_follows_deletes(self, indexed):
        indexed.run("(delete r1)")
        assert indexed.run_one('(select Vehicle (= Color "red"))') == \
            [indexed.env["r2"]]

    def test_index_validates_stale_entries(self, indexed):
        # Mutate behind the index's back; validation still gives the right
        # answer (the index is a self-verifying hint).
        instance = indexed.db.resolve(indexed.env["r1"])
        instance.set("Color", "black")
        assert indexed.env["r1"] not in indexed.run_one(
            '(select Vehicle (= Color "red"))')

    def test_superclass_index_covers_subclass(self, indexed):
        indexed.run("""
          (make-class 'Sports :superclasses (Vehicle))
          (setq s (make Sports :Color "red"))
        """)
        result = indexed.run_one('(select Sports (= Color "red"))')
        assert result == [indexed.env["s"]]

    def test_create_index_on_unknown_attribute(self, indexed):
        from repro.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            indexed.run("(create-index Vehicle Nope)")

    def test_drop_index(self, indexed):
        assert indexed.indexes.drop_index("Vehicle", "Color")
        assert indexed.indexes.index_for("Vehicle", "Color") is None
        assert not indexed.indexes.drop_index("Vehicle", "Color")


class TestEndToEndScript:
    def test_document_example_via_messages(self):
        interpreter = Interpreter()
        results = interpreter.run("""
          (make-class 'Paragraph :attributes '((Text :domain string)))
          (make-class 'Section
            :attributes '((Content :domain (set-of Paragraph)
                           :composite t :exclusive nil :dependent t)))
          (make-class 'Document
            :attributes '((Title :domain string)
                          (Sections :domain (set-of Section)
                           :composite t :exclusive nil :dependent t)))
          (setq p (make Paragraph :Text "shared"))
          (setq s (make Section))
          (insert s Content p)
          (setq d1 (make Document :Title "A"))
          (setq d2 (make Document :Title "B"))
          (insert d1 Sections s)
          (insert d2 Sections s)
          (ancestors-of p)
          (delete d1)
          (component-of p d2)
        """)
        assert results[-1] is True
        db = interpreter.db
        assert db.exists(interpreter.env["p"])
        db.validate()


class TestCompositePredicatesInSelect:
    @pytest.fixture
    def nested(self, interp):
        interp.run("""
          (setq b (make AutoBody))
          (setq t1 (make AutoTires))
          (setq v (make Vehicle :Body b))
          (insert v Tires t1)
          (setq loose (make AutoTires))
        """)
        return interp

    def test_part_of_predicate(self, nested):
        result = nested.run_one("(select AutoTires (part-of v))")
        assert result == [nested.env["t1"]]

    def test_part_of_excludes_loose_parts(self, nested):
        result = nested.run_one("(select AutoTires (not (part-of v)))")
        assert result == [nested.env["loose"]]

    def test_has_part_predicate(self, nested):
        result = nested.run_one("(select Vehicle (has-part b))")
        assert result == [nested.env["v"]]

    def test_combined_with_value_predicate(self, nested):
        nested.run('(set v Color "red")')
        result = nested.run_one(
            '(select Vehicle (and (= Color "red") (has-part t1)))')
        assert result == [nested.env["v"]]

    def test_instances_of_message(self, nested):
        result = nested.run_one("(instances-of AutoTires)")
        assert set(result) == {nested.env["t1"], nested.env["loose"]}


class TestTopLevelLazyExports:
    def test_lazy_exports_resolve(self):
        import repro

        assert repro.VersionManager.__name__ == "VersionManager"
        assert repro.Interpreter.__name__ == "Interpreter"
        assert repro.CheckoutManager.__name__ == "CheckoutManager"
        assert callable(repro.copy_composite)

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing


class TestEvolutionMessages:
    @pytest.fixture
    def evolving(self, interp):
        interp.run("""
          (setq b (make AutoBody))
          (setq v (make Vehicle :Body b))
        """)
        return interp

    def test_make_shared_message(self, evolving):
        evolving.run("(make-shared Vehicle Body)")
        assert evolving.db.shared_compositep("Vehicle", "Body")
        # Sharing is now possible.
        evolving.run("(setq v2 (make Vehicle :Body b))")
        assert len(evolving.db.parents_of(evolving.env["b"])) == 2

    def test_make_dependent_deferred(self, evolving):
        evolving.run("(make-dependent Vehicle Body deferred)")
        raw = evolving.db.peek(evolving.env["b"])
        assert not raw.reverse_references[0].dependent  # not yet applied
        evolving.db.resolve(evolving.env["b"])          # access catches up
        assert evolving.db.peek(evolving.env["b"]).reverse_references[0].dependent

    def test_make_noncomposite_message(self, evolving):
        evolving.run("(make-noncomposite Vehicle Body)")
        assert not evolving.db.compositep("Vehicle", "Body")
        assert evolving.db.peek(evolving.env["b"]).reverse_references == []

    def test_drop_attribute_message(self, evolving):
        evolving.run("(drop-attribute Vehicle Color)")
        assert not evolving.db.classdef("Vehicle").has_attribute("Color")

    def test_rename_attribute_message(self, evolving):
        evolving.run("(rename-attribute Vehicle Color Paint)")
        evolving.run('(set v Paint "red")')
        assert evolving.run_one("(get v Paint)") == "red"

    def test_rename_class_message(self, evolving):
        evolving.run("(rename-class Vehicle Car)")
        assert "Car" in evolving.db.lattice
        assert evolving.run_one("(components-of v)") == [evolving.env["b"]]

    def test_drop_class_message(self, evolving):
        evolving.run("(drop-class Vehicle)")
        assert "Vehicle" not in evolving.db.lattice
        assert not evolving.db.exists(evolving.env["v"])

    def test_make_exclusive_composite_from_weak(self, interp):
        interp.run("""
          (make-class 'Holder :attributes '((ref :domain AutoBody)))
          (setq b2 (make AutoBody))
          (setq h (make Holder :ref b2))
          (make-exclusive-composite Holder ref)
        """)
        assert interp.db.exclusive_compositep("Holder", "ref")
        assert interp.db.parents_of(interp.env["b2"]) == [interp.env["h"]]
