"""Tests for the five reference types and reverse references (paper 2.1, 2.4)."""

import pytest

from repro.core.identity import UID
from repro.core.references import (
    ALL_REFERENCE_KINDS,
    COMPOSITE_REFERENCE_KINDS,
    ReferenceKind,
    ReverseReference,
)


class TestReferenceKind:
    def test_five_kinds(self):
        assert len(ALL_REFERENCE_KINDS) == 5

    def test_four_composite_kinds(self):
        assert len(COMPOSITE_REFERENCE_KINDS) == 4
        assert ReferenceKind.WEAK not in COMPOSITE_REFERENCE_KINDS

    def test_weak_flags(self):
        weak = ReferenceKind.WEAK
        assert not weak.composite and not weak.exclusive and not weak.dependent
        assert not weak.shared

    @pytest.mark.parametrize(
        "kind, exclusive, dependent",
        [
            (ReferenceKind.DEPENDENT_EXCLUSIVE, True, True),
            (ReferenceKind.INDEPENDENT_EXCLUSIVE, True, False),
            (ReferenceKind.DEPENDENT_SHARED, False, True),
            (ReferenceKind.INDEPENDENT_SHARED, False, False),
        ],
    )
    def test_composite_flags(self, kind, exclusive, dependent):
        assert kind.composite
        assert kind.exclusive is exclusive
        assert kind.dependent is dependent
        assert kind.shared is (not exclusive)

    def test_from_flags_noncomposite(self):
        assert ReferenceKind.from_flags(False) is ReferenceKind.WEAK

    def test_from_flags_paper_defaults(self):
        # Defaults exclusive=True, dependent=True mirror [KIM87b].
        assert ReferenceKind.from_flags(True) is ReferenceKind.DEPENDENT_EXCLUSIVE

    @pytest.mark.parametrize("kind", COMPOSITE_REFERENCE_KINDS)
    def test_from_flags_roundtrip(self, kind):
        assert (
            ReferenceKind.from_flags(True, kind.exclusive, kind.dependent) is kind
        )


class TestReverseReference:
    def _ref(self, dependent=True, exclusive=True):
        return ReverseReference(
            parent=UID(1, "P"),
            dependent=dependent,
            exclusive=exclusive,
            attribute="Body",
        )

    def test_kind_mapping(self):
        assert self._ref(True, True).kind is ReferenceKind.DEPENDENT_EXCLUSIVE
        assert self._ref(False, True).kind is ReferenceKind.INDEPENDENT_EXCLUSIVE
        assert self._ref(True, False).kind is ReferenceKind.DEPENDENT_SHARED
        assert self._ref(False, False).kind is ReferenceKind.INDEPENDENT_SHARED

    def test_with_flags_dependent(self):
        updated = self._ref().with_flags(dependent=False)
        assert not updated.dependent and updated.exclusive
        assert updated.parent == UID(1, "P") and updated.attribute == "Body"

    def test_with_flags_exclusive(self):
        updated = self._ref().with_flags(exclusive=False)
        assert updated.dependent and not updated.exclusive

    def test_with_flags_noop_preserves(self):
        ref = self._ref()
        assert ref.with_flags() == ref

    def test_frozen(self):
        with pytest.raises(AttributeError):
            self._ref().dependent = False

    def test_str_shows_flags(self):
        text = str(self._ref(True, True))
        assert "DX" in text and "Body" in text
        text = str(self._ref(False, False))
        assert "--" in text
