"""Tests for the derived lock-compatibility matrices (Figures 7 and 8).

The archival figures are partly illegible; these tests pin the derivation
to every constraint the paper states in prose, plus the classic [GRAY78]
granularity submatrix, symmetry, and monotonicity sanity properties.
"""

import pytest

from repro.locking.claims import Claim, Op, Scope, derive_matrix, modes_compatible
from repro.locking.modes import (
    COMPATIBILITY,
    FIGURE7_MATRIX,
    FIGURE7_MODES,
    FIGURE8_MODES,
    MODE_CLAIMS,
    LockMode as M,
    compatible,
    render_matrix,
    supremum,
)


class TestGraySubmatrix:
    """The five granularity modes must reproduce [GRAY78] exactly."""

    GRAY = {
        (M.IS, M.IS): True, (M.IS, M.IX): True, (M.IS, M.S): True,
        (M.IS, M.SIX): True, (M.IS, M.X): False,
        (M.IX, M.IX): True, (M.IX, M.S): False, (M.IX, M.SIX): False,
        (M.IX, M.X): False,
        (M.S, M.S): True, (M.S, M.SIX): False, (M.S, M.X): False,
        (M.SIX, M.SIX): False, (M.SIX, M.X): False,
        (M.X, M.X): False,
    }

    @pytest.mark.parametrize("pair, expected", sorted(GRAY.items(),
                                                      key=lambda kv: str(kv[0])))
    def test_gray_entry(self, pair, expected):
        assert compatible(*pair) is expected
        assert compatible(pair[1], pair[0]) is expected


class TestPaperProseConstraints:
    def test_is_ix_do_not_conflict(self):
        assert compatible(M.IS, M.IX)

    def test_iso_conflicts_with_ix(self):
        assert not compatible(M.ISO, M.IX)

    def test_ixo_conflicts_with_is_and_ix(self):
        assert not compatible(M.IXO, M.IS)
        assert not compatible(M.IXO, M.IX)

    def test_sixo_conflicts_with_is_and_ix(self):
        assert not compatible(M.SIXO, M.IS)
        assert not compatible(M.SIXO, M.IX)

    def test_readers_and_writers_on_exclusive_component_class(self):
        # "several readers and writers on a component class of exclusive
        # references"
        assert compatible(M.ISO, M.ISO)
        assert compatible(M.ISO, M.IXO)
        assert compatible(M.IXO, M.IXO)

    def test_readers_xor_one_writer_on_shared_component_class(self):
        # "several readers and one writer on a component class of shared
        # references" — standard read/write semantics.
        assert compatible(M.ISOS, M.ISOS)
        assert not compatible(M.ISOS, M.IXOS)
        assert not compatible(M.IXOS, M.IXOS)

    def test_example1_compatible_with_example2(self):
        # Ex1 locks C in IXO; Ex2 locks C in ISOS and W in ISO.
        assert compatible(M.IXO, M.ISOS)
        assert compatible(M.ISO, M.ISO)

    def test_example3_conflicts_with_example1(self):
        # Ex3 locks C in IXOS; Ex1 holds IXO on C.
        assert not compatible(M.IXOS, M.IXO)

    def test_example3_conflicts_with_example2(self):
        assert not compatible(M.IXOS, M.ISOS)


class TestMatrixProperties:
    def test_symmetry(self):
        for a in FIGURE8_MODES:
            for b in FIGURE8_MODES:
                assert compatible(a, b) == compatible(b, a)

    def test_x_conflicts_with_everything(self):
        for mode in FIGURE8_MODES:
            assert not compatible(M.X, mode)

    def test_is_iso_isos_mutually_compatible(self):
        # The three pure read-intent modes coexist.
        for a in (M.IS, M.ISO, M.ISOS):
            for b in (M.IS, M.ISO, M.ISOS):
                assert compatible(a, b)

    def test_s_compatible_with_composite_readers(self):
        assert compatible(M.S, M.ISO)
        assert compatible(M.S, M.ISOS)
        assert not compatible(M.S, M.IXO)
        assert not compatible(M.S, M.IXOS)

    def test_six_analogues(self):
        # SIXO relates to ISO/IXO the way SIX relates to IS/IX...
        assert compatible(M.SIX, M.IS) == compatible(M.SIXO, M.ISO)
        assert compatible(M.SIX, M.IX) == compatible(M.SIXO, M.IXO)
        assert compatible(M.SIX, M.SIX) == compatible(M.SIXO, M.SIXO)
        # ...but NOT for the shared-composite family: SIX tolerates IS
        # because the IX half is arbitrated by instance locks, whereas
        # SIXOS's write half (OSH) has no instance locks, so even a shared
        # reader is excluded — consistent with ISOS vs IXOS.
        assert not compatible(M.SIXOS, M.ISOS)
        assert not compatible(M.SIXOS, M.IXOS)

    def test_figure7_is_restriction_of_figure8(self):
        for pair, value in FIGURE7_MATRIX.items():
            assert COMPATIBILITY[pair] is value
        assert len(FIGURE7_MATRIX) == len(FIGURE7_MODES) ** 2

    def test_figure8_complete(self):
        assert len(COMPATIBILITY) == len(FIGURE8_MODES) ** 2


class TestClaimsModel:
    def test_every_mode_has_claims(self):
        for mode in FIGURE8_MODES:
            assert MODE_CLAIMS[mode]

    def test_read_only_modes_have_no_write_claims(self):
        for mode in (M.IS, M.S, M.ISO, M.ISOS):
            assert all(c.op is Op.READ for c in MODE_CLAIMS[mode])

    def test_derive_matrix_is_symmetric_by_construction(self):
        matrix = derive_matrix(MODE_CLAIMS)
        for (a, b), value in matrix.items():
            assert matrix[(b, a)] is value

    def test_ind_claims_never_self_conflict(self):
        reader = (Claim(Scope.IND, Op.READ),)
        writer = (Claim(Scope.IND, Op.WRITE),)
        assert modes_compatible(reader, writer)
        assert modes_compatible(writer, writer)

    def test_all_write_conflicts_with_all(self):
        w = (Claim(Scope.ALL, Op.WRITE),)
        for scope in Scope:
            for op in Op:
                assert not modes_compatible(w, (Claim(scope, op),))


class TestSupremum:
    def test_identity(self):
        assert supremum(M.IS, M.IS) is M.IS

    def test_classic_cases(self):
        assert supremum(M.IS, M.IX) is M.IX
        assert supremum(M.S, M.IX) is M.SIX
        assert supremum(M.ISO, M.IXO) is M.IXO
        assert supremum(M.S, M.IXO) is M.SIXO
        assert supremum(M.S, M.IXOS) is M.SIXOS

    def test_fallback_is_x(self):
        assert supremum(M.IXO, M.IXOS) is M.X

    def test_commutative(self):
        for a in FIGURE8_MODES:
            for b in FIGURE8_MODES:
                assert supremum(a, b) is supremum(b, a)


class TestRendering:
    def test_render_has_all_modes(self):
        text = render_matrix()
        for mode in FIGURE8_MODES:
            assert str(mode) in text

    def test_render_figure7_subset(self):
        text = render_matrix(FIGURE7_MODES, FIGURE7_MATRIX)
        assert "ISOS" not in text
        assert "ISO" in text
