"""The sharding subsystem: placement, coordinator log, router, cluster.

The unit half exercises placement arithmetic and the 2PC decision log
in-process.  The end-to-end half starts *real* clusters — N spawned
worker processes plus an asyncio router process, talking over real TCP
— and drives them with the blocking client: single-shard fast-path
commits, cross-shard two-phase commits, coordinator and participant
crashes at armed 2PC failpoints, and worker failover with the client's
reconnect handshake.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import UID
from repro.errors import (
    ShardError,
    ShardUnavailableError,
    StorageError,
    TransactionStateError,
)
from repro.faults import fault_scope
from repro.server import Client, ServerThread
from repro.shard.placement import (
    Manifest,
    audit_cluster,
    ensure_manifest,
    make_policy,
    read_endpoint,
    shard_dir_name,
    shard_of_uid,
    write_endpoint,
)
from repro.shard.twopc import COORD_LOG_NAME, CoordinatorLog
from repro.shard.worker import ShardCluster
from repro.workloads.txmix import run_tcp_mix, single_root_mix, tcp_fixture


# ---------------------------------------------------------------------------
# Placement units
# ---------------------------------------------------------------------------


class TestPlacement:
    def test_shard_of_uid_matches_strided_allocation(self):
        for shards in (1, 2, 3, 5):
            for shard_id in range(shards):
                for k in range(4):
                    number = (shard_id + 1) + k * shards
                    uid = UID(number, "Thing")
                    assert shard_of_uid(uid, shards) == shard_id

    def test_round_robin_cycles(self):
        policy = make_policy("round_robin", 3)
        assert [policy.place_free("A") for _ in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]

    def test_hash_class_is_stable_and_in_range(self):
        policy = make_policy("hash_class", 4)
        for name in ("Vehicle", "Body", "Engine", "Chassis"):
            first = policy.place_free(name)
            assert 0 <= first < 4
            assert policy.place_free(name) == first
            assert make_policy("hash_class", 4).place_free(name) == first

    def test_unknown_policy_raises(self):
        with pytest.raises(ShardError, match="unknown placement policy"):
            make_policy("mystery", 2)

    def test_manifest_round_trips(self, tmp_path):
        manifest = Manifest(shards=3, policy="hash_class",
                            sync_policy="group")
        manifest.save(tmp_path)
        loaded = Manifest.load(tmp_path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.shard_path(tmp_path, 2) == \
            tmp_path / shard_dir_name(2)

    def test_ensure_manifest_refuses_layout_change(self, tmp_path):
        ensure_manifest(tmp_path, shards=2)
        again = ensure_manifest(tmp_path, shards=2)
        assert again.shards == 2
        with pytest.raises(ShardError, match="refusing to reopen"):
            ensure_manifest(tmp_path, shards=3)
        with pytest.raises(ShardError, match="refusing to reopen"):
            ensure_manifest(tmp_path, shards=2, policy="hash_class")

    def test_newer_manifest_version_rejected(self, tmp_path):
        manifest = Manifest(shards=1)
        data = manifest.to_dict()
        data["version"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(data))
        with pytest.raises(StorageError, match="newer"):
            Manifest.load(tmp_path)

    def test_endpoint_round_trips(self, tmp_path):
        write_endpoint(tmp_path, "127.0.0.1", 4957)
        endpoint = read_endpoint(tmp_path)
        assert endpoint["host"] == "127.0.0.1"
        assert endpoint["port"] == 4957
        assert endpoint["pid"] == os.getpid()

    def test_endpoint_missing_or_corrupt_is_none(self, tmp_path):
        assert read_endpoint(tmp_path) is None
        (tmp_path / "endpoint.json").write_text("{torn")
        assert read_endpoint(tmp_path) is None
        (tmp_path / "endpoint.json").write_text('{"host": "x"}')
        assert read_endpoint(tmp_path) is None


class TestCoordinatorLog:
    def test_decide_and_load_round_trip(self, tmp_path):
        log = CoordinatorLog.in_root(tmp_path)
        log.decide("g1", "commit", shards=[0, 1])
        log.decide("g2", "abort", shards=[1])
        assert CoordinatorLog.in_root(tmp_path).load() == {
            "g1": "commit", "g2": "abort",
        }

    def test_torn_tail_is_not_a_decision(self, tmp_path):
        log = CoordinatorLog.in_root(tmp_path)
        log.decide("g1", "commit", shards=[0])
        with open(tmp_path / COORD_LOG_NAME, "ab") as handle:
            handle.write(b'{"gtid": "g2", "outc')  # crash mid-append
        assert CoordinatorLog.in_root(tmp_path).load() == {"g1": "commit"}

    def test_torn_first_line_keeps_glued_decisions(self, tmp_path):
        # A crash mid-append leaves no trailing newline, so the next
        # coordinator's fsynced decisions physically concatenate onto
        # the torn bytes: the same *physical* line then holds garbage
        # followed by real decisions, which must not be thrown away.
        with open(tmp_path / COORD_LOG_NAME, "wb") as handle:
            handle.write(b'{"gtid": "g0", "outc')  # torn very first line
        log = CoordinatorLog.in_root(tmp_path)
        log.decide("g1", "commit", shards=[0])
        log.decide("g2", "abort", shards=[1])
        raw = (tmp_path / COORD_LOG_NAME).read_bytes()
        assert raw.startswith(b'{"gtid": "g0", "outc{')  # really glued
        assert CoordinatorLog.in_root(tmp_path).load() == {
            "g1": "commit", "g2": "abort",
        }

    def test_duplicate_gtid_keeps_the_first_decision(self, tmp_path):
        # The first fsynced line was the commit point and a participant
        # may already have applied it; a later contradictory line (a
        # buggy or replayed coordinator) must never win.
        log = CoordinatorLog.in_root(tmp_path)
        log.decide("g1", "commit", shards=[0])
        log.decide("g1", "abort", shards=[0])
        assert CoordinatorLog.in_root(tmp_path).load() == {"g1": "commit"}


class TestInDoubtSettle:
    """The worker's pre-serve in-doubt settlement, driven in-process:
    real journals and recovery, no sockets."""

    def _in_doubt_db(self, tmp_path, gtid="g1"):
        """A recovered shard holding one prepared-but-undecided batch."""
        from repro.storage.durable import DurableDatabase
        from repro.txn.manager import TransactionManager

        directory = tmp_path / "shard-00"
        db = DurableDatabase(str(directory), sync_policy="commit")
        db.make_class("Doc", attributes=[
            {"name": "Stamp", "domain": "integer"},
        ])
        manager = TransactionManager(db)
        txn = manager.begin()
        manager.make(txn, "Doc", values={"Stamp": 7})
        db.journal.prepare_txn(txn, gtid)
        db.journal.abandon()  # the crash simulator's power cut
        recovered = DurableDatabase(str(directory), sync_policy="commit")
        assert gtid in recovered.in_doubt
        return recovered

    def test_grace_expiry_presumes_abort(self, tmp_path):
        import asyncio
        from types import SimpleNamespace

        db = self._in_doubt_db(tmp_path)
        from repro.shard.worker import _settle_in_doubt

        spec = SimpleNamespace(
            coord_log=str(tmp_path / COORD_LOG_NAME), grace=0.05,
        )
        asyncio.run(_settle_in_doubt(db, spec))
        assert not db.in_doubt
        assert not db.instances_of("Doc")  # the batch was dropped
        db.close()
        # The resolution was journaled (R record): the next recovery
        # does not re-raise the doubt.
        from repro.storage.durable import DurableDatabase

        again = DurableDatabase(str(tmp_path / "shard-00"),
                                sync_policy="commit")
        assert not again.in_doubt
        assert not again.instances_of("Doc")
        again.close()

    def test_decision_arriving_during_grace_commits(self, tmp_path):
        import asyncio
        from types import SimpleNamespace

        db = self._in_doubt_db(tmp_path)
        from repro.shard.worker import _settle_in_doubt

        log = CoordinatorLog.in_root(tmp_path)
        spec = SimpleNamespace(coord_log=str(log.path), grace=10.0)

        async def scenario():
            async def decide_soon():
                await asyncio.sleep(0.15)
                log.decide("g1", "commit", shards=[0])

            deliver = asyncio.ensure_future(decide_soon())
            await _settle_in_doubt(db, spec)
            await deliver

        asyncio.run(scenario())
        assert not db.in_doubt
        assert len(db.instances_of("Doc")) == 1  # the commit applied
        db.close()

    def test_decision_already_logged_needs_no_grace(self, tmp_path):
        import asyncio
        from types import SimpleNamespace

        db = self._in_doubt_db(tmp_path)
        from repro.shard.worker import _settle_in_doubt

        log = CoordinatorLog.in_root(tmp_path)
        log.decide("g1", "abort", shards=[0])
        spec = SimpleNamespace(coord_log=str(log.path), grace=10.0)
        started = time.monotonic()
        asyncio.run(_settle_in_doubt(db, spec))
        assert time.monotonic() - started < 5.0  # no grace wait
        assert not db.in_doubt
        assert not db.instances_of("Doc")
        db.close()


# ---------------------------------------------------------------------------
# Live clusters (spawned worker + router processes)
# ---------------------------------------------------------------------------


def _vehicle_schema(client):
    client.make_class("Body")
    client.make_class("Car", attributes=[
        {"name": "Body", "domain": "Body", "composite": True,
         "exclusive": True, "dependent": True},
    ])


class TestClusterEndToEnd:
    def test_happy_path(self, tmp_path):
        with ShardCluster(tmp_path, shards=2) as cluster:
            client = Client(port=cluster.router_port, timeout=20.0)
            assert client.ping() == "pong"
            _vehicle_schema(client)

            # Free objects spread round-robin; each shard allocates on
            # its own UID stride.
            cars = [client.make("Car") for _ in range(4)]
            assert {shard_of_uid(uid, 2) for uid in cars} == {0, 1}

            # Composite children are co-located with their parent.
            body = client.make("Body", parents=[(cars[0], "Body")])
            assert shard_of_uid(body, 2) == shard_of_uid(cars[0], 2)

            # Single-shard transaction: fast path, no 2PC.
            with client.transaction():
                client.set_value(cars[0], "Body", None)
            # Cross-shard transaction: two-phase commit.
            with client.transaction():
                client.set_value(cars[0], "Body", body)
                client.set_value(cars[1], "Body", None)
            stats = client.stats()["router"]
            assert stats["fast_commits"] == 1
            assert stats["twopc_commits"] == 1
            assert stats["twopc_aborts"] == 0

            # Scatter ops union the shards.
            assert sorted(u.number for u in client.instances_of("Car")) \
                == sorted(u.number for u in cars)
            # The live placement audit runs on every shard.
            assert client.check("placement")["ok"]
            client.close()
        report = audit_cluster(tmp_path)
        assert report.ok, report.to_dict()

    def test_bottom_up_make_anchors_on_composite_values(self, tmp_path):
        """make(values={composite: uid}) must land on the component's
        shard; components scattered over different shards are refused
        with a typed error (UIDs cannot migrate under striding)."""
        with ShardCluster(tmp_path, shards=2) as cluster:
            client = Client(port=cluster.router_port, timeout=20.0)
            client.make_class("Body")
            client.make_class("Tandem", attributes=[
                {"name": "FrontBody", "domain": "Body", "composite": True},
                {"name": "RearBody", "domain": "Body", "composite": True},
                {"name": "Tag", "domain": "string"},
            ])

            # Free bodies spread round-robin until both shards hold one.
            bodies = [client.make("Body") for _ in range(2)]
            assert {shard_of_uid(uid, 2) for uid in bodies} == {0, 1}

            # One component: the parent is co-located with it, not
            # placed by the free-object policy.
            for body in bodies:
                tandem = client.make("Tandem", values={"FrontBody": body})
                assert shard_of_uid(tandem, 2) == shard_of_uid(body, 2)

            # Components on different shards: refused, typed, and the
            # message says how to build the hierarchy instead.
            with pytest.raises(ShardError, match="root's shard"):
                client.make("Tandem", values={"FrontBody": bodies[0],
                                              "RearBody": bodies[1]})

            # Weak (non-composite) references still have to *resolve*
            # on the owning shard, so they anchor placement when no
            # composite constraint does.
            client.make_class("Note", attributes=[
                {"name": "About", "domain": "Tandem"},
            ])
            for _ in range(2):
                note = client.make("Note", values={"About": tandem})
                assert shard_of_uid(note, 2) == shard_of_uid(tandem, 2)
            client.close()
        assert audit_cluster(tmp_path).ok

    def test_txmix_workload_through_router(self, tmp_path):
        with ShardCluster(tmp_path, shards=2) as cluster:
            client = Client(port=cluster.router_port, timeout=20.0)
            roots, components = tcp_fixture(client, roots=4,
                                            parts_per_root=2)
            for root in roots:
                for part in components[root]:
                    assert shard_of_uid(part, 2) == shard_of_uid(root, 2)
            scripts = single_root_mix(roots, transactions=8,
                                      steps_per_txn=3, seed=11)
            stats = run_tcp_mix(client, scripts)
            assert stats["transactions"] == 8
            assert stats["ops"] == 24
            router = client.stats()["router"]
            # Single-root scripts on co-located hierarchies never span
            # shards: every commit takes the fast path.
            assert router["twopc_commits"] == 0
            assert router["fast_commits"] + router["trivial_commits"] == 8
            client.close()
        assert audit_cluster(tmp_path).ok

    def test_kill_one_worker_failover(self, tmp_path):
        """A restarted worker is rediscovered, and the client's
        reconnect runs a fresh handshake (new session, clean state)."""
        with ShardCluster(tmp_path, shards=2) as cluster:
            client = Client(port=cluster.router_port, timeout=20.0)
            _vehicle_schema(client)
            cars = [client.make("Car") for _ in range(2)]
            victim = next(u for u in cars if shard_of_uid(u, 2) == 1)
            session_before = client.session_id

            assert cluster.kill_worker(1) is not None
            cluster.restart_worker(1)
            # resolve is retryable: the client reconnects (re-running the
            # version handshake) and the router re-dials the worker's
            # freshly published endpoint.
            assert client.resolve(victim)["class"] == "Car"
            with client.transaction():
                client.set_value(victim, "Body", None)
            assert client.session_id is not None
            assert session_before is not None
            client.close()
        assert audit_cluster(tmp_path).ok

    def test_coordinator_killed_after_logging_commit(self, tmp_path):
        """The decision fsync is the commit point: a coordinator killed
        right after it leaves both participants parked, and the
        restarted router's reconciliation delivers the commit."""
        cluster = ShardCluster(
            tmp_path, shards=2,
            router_failpoints=[{
                "site": "coord.decided", "action": "kill", "nth": 1,
                "count": 1, "torn_bytes": 8, "delay_s": 0.0, "message": "",
            }],
        )
        with cluster:
            client = Client(port=cluster.router_port, timeout=20.0,
                            max_retries=0)
            _vehicle_schema(client)
            cars = [client.make("Car") for _ in range(2)]
            client.begin()
            for car in cars:
                client.set_value(car, "Body", None)
            with pytest.raises((ConnectionError, TimeoutError)):
                client.commit()
            client.close()
            assert cluster.wait_router() == 17

            cluster.restart_router()
            client = Client(port=cluster.router_port, timeout=20.0)
            for car in cars:
                assert client.value(car, "Body") is None
            assert client.check("placement")["ok"]
            client.close()
        assert audit_cluster(tmp_path).ok

    def test_worker_killed_after_prepare_aborts(self, tmp_path):
        """A participant that dies between its durable prepare and its
        vote makes the coordinator abort; the restarted worker finds the
        abort in the log and rolls back."""
        cluster = ShardCluster(
            tmp_path, shards=2,
            worker_failpoints={1: [{
                "site": "twopc.prepared", "action": "kill", "nth": 1,
                "count": 1, "torn_bytes": 8, "delay_s": 0.0, "message": "",
            }]},
        )
        with cluster:
            client = Client(port=cluster.router_port, timeout=20.0)
            _vehicle_schema(client)
            cars = [client.make("Car") for _ in range(2)]
            body = client.make("Body", parents=[(cars[0], "Body")])
            client.begin()
            for car in cars:
                client.set_value(car, "Body", None)
            with pytest.raises(ShardUnavailableError):
                client.commit()
            assert cluster.wait_worker(1) == 17

            cluster.restart_worker(1)
            assert client.value(cars[0], "Body") == body  # rolled back
            assert client.check("placement")["ok"]
            client.close()
        assert audit_cluster(tmp_path).ok


# ---------------------------------------------------------------------------
# Standalone-server satellites: --port-file, ping, reconnect handshake
# ---------------------------------------------------------------------------


class TestPortFileDiscovery:
    def test_port_zero_with_port_file(self, tmp_path):
        port_file = tmp_path / "port"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server",
             "--port", "0", "--port-file", str(port_file)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 15.0
            while not port_file.exists() and time.monotonic() < deadline:
                assert proc.poll() is None, proc.stdout.read().decode()
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            assert port > 0
            with Client(port=port, timeout=10.0) as client:
                assert client.ping() == "pong"
        finally:
            proc.terminate()
            proc.wait(timeout=10.0)


@pytest.fixture()
def handle():
    with ServerThread() as server:
        yield server


class TestPingHealth:
    def test_ping_times_out_fast_against_a_wedged_server(self, handle):
        client = Client(port=handle.port, timeout=30.0, max_retries=0)
        try:
            with fault_scope() as faults:
                faults.add("server.send_frame", "delay", delay_s=2.0)
                started = time.monotonic()
                with pytest.raises(TimeoutError):
                    client.ping(timeout=0.3)
                elapsed = time.monotonic() - started
            # The probe used its own deadline, not the 30s one — and the
            # connection was dropped so the late pong can't mis-pair.
            assert elapsed < 2.0
            assert client._sock is None
        finally:
            client.close()

    def test_healthy_true_then_false_after_shutdown(self):
        server = ServerThread().start()
        client = Client(port=server.port, timeout=5.0, max_retries=0)
        assert client.healthy()
        server.stop()
        assert not client.healthy()
        client.close()

    def test_reconnect_runs_a_fresh_handshake(self, handle):
        client = Client(port=handle.port, timeout=10.0)
        _vehicle_schema(client)
        client.begin()
        assert client._in_transaction
        first_session = client.session_id
        client.close()
        client.connect()
        # A reconnect is a new server session: renegotiated version,
        # new session id, and no inherited transaction state.
        assert client.protocol_version == max(client.versions)
        assert client.session_id != first_session
        assert not client._in_transaction
        with pytest.raises(TransactionStateError):
            client.commit()
        client.close()
