"""Tests for the version subsystem (paper Section 5, Figures 1-3)."""

import pytest

from repro import AttributeSpec, Database, NotVersionableError, SetOf, VersionError
from repro.errors import TopologyError, VersionTopologyError
from repro.versions import VersionManager


@pytest.fixture
def vdb():
    database = Database()
    database.make_class("B", versionable=True, attributes=[
        AttributeSpec("data", domain="string"),
    ])
    database.make_class("A", versionable=True, attributes=[
        AttributeSpec("b", domain="B", composite=True, exclusive=True,
                      dependent=False),
        AttributeSpec("note", domain="string"),
    ])
    database.make_class("Plain")
    manager = VersionManager(database)
    return database, manager


class TestRegistryBasics:
    def test_create_returns_generic_and_version(self, vdb):
        database, manager = vdb
        generic, version = manager.create("B", values={"data": "v0"})
        assert manager.registry.is_generic(generic)
        assert manager.registry.is_version(version)
        assert manager.registry.generic_of(version) == generic
        assert database.value(version, "data") == "v0"

    def test_nonversionable_class_rejected(self, vdb):
        database, manager = vdb
        with pytest.raises(NotVersionableError):
            manager.create("Plain")

    def test_version_numbers_monotonic(self, vdb):
        database, manager = vdb
        generic, v0 = manager.create("B")
        v1 = manager.derive(v0).new_version
        v2 = manager.derive(v1).new_version
        info = manager.registry
        assert info.version_info(v0).number == 1
        assert info.version_info(v1).number == 2
        assert info.version_info(v2).number == 3

    def test_derivation_tree(self, vdb):
        database, manager = vdb
        generic, v0 = manager.create("B")
        v1 = manager.derive(v0).new_version
        v2 = manager.derive(v0).new_version  # branch
        tree = manager.registry.derivation_tree(generic)
        assert (None, v0) in tree and (v0, v1) in tree and (v0, v2) in tree

    def test_hierarchy_key(self, vdb):
        database, manager = vdb
        generic, v0 = manager.create("B")
        plain = database.make("Plain")
        registry = manager.registry
        assert registry.hierarchy_key(generic) == generic
        assert registry.hierarchy_key(v0) == generic
        assert registry.hierarchy_key(plain) == plain


class TestDefaultVersions:
    def test_system_default_is_latest(self, vdb):
        database, manager = vdb
        generic, v0 = manager.create("B")
        v1 = manager.derive(v0).new_version
        assert manager.default_version(generic) == v1

    def test_user_default_overrides(self, vdb):
        database, manager = vdb
        generic, v0 = manager.create("B")
        v1 = manager.derive(v0).new_version
        manager.set_default(generic, v0)
        assert manager.default_version(generic) == v0
        manager.set_default(generic, None)
        assert manager.default_version(generic) == v1

    def test_default_must_be_a_version(self, vdb):
        database, manager = vdb
        generic, v0 = manager.create("B")
        other_generic, other_v = manager.create("B")
        with pytest.raises(VersionError):
            manager.set_default(generic, other_v)

    def test_dereference(self, vdb):
        database, manager = vdb
        generic, v0 = manager.create("B")
        assert manager.dereference(generic) == v0
        assert manager.dereference(v0) == v0

    def test_resolve_value_dynamic(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": gb})  # dynamic binding
        assert manager.is_dynamically_bound(a0, "b")
        assert manager.resolve_value(a0, "b") == b0
        b1 = manager.derive(b0).new_version
        assert manager.resolve_value(a0, "b") == b1  # default moved


class TestFigure1Derivation:
    def test_independent_exclusive_rebinds_to_generic(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})  # static binding
        report = manager.derive(a0)
        assert database.value(report.new_version, "b") == gb
        assert report.rebound["b"] == [(b0, gb)]

    def test_dependent_reference_set_to_nil(self):
        database = Database()
        database.make_class("D", versionable=True)
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("d", domain="D", composite=True, exclusive=True,
                          dependent=True),
        ])
        manager = VersionManager(database)
        gd, d0 = manager.create("D")
        gc, c0 = manager.create("C", values={"d": d0})
        report = manager.derive(c0)
        assert database.value(report.new_version, "d") is None
        assert report.nilled["d"] == [d0]

    def test_independent_shared_static_kept(self):
        database = Database()
        database.make_class("D", versionable=True)
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("ds", domain=SetOf("D"), composite=True,
                          exclusive=False, dependent=False),
        ])
        manager = VersionManager(database)
        gd, d0 = manager.create("D")
        gc, c0 = manager.create("C", values={"ds": [d0]})
        report = manager.derive(c0)
        assert database.value(report.new_version, "ds") == [d0]
        assert report.kept_static["ds"] == [d0]

    def test_dynamic_reference_kept(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": gb})
        report = manager.derive(a0)
        assert database.value(report.new_version, "b") == gb
        assert report.kept_dynamic["b"] == [gb]

    def test_exclusive_to_nonversionable_nilled(self):
        database = Database()
        database.make_class("P")
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("p", domain="P", composite=True, exclusive=True,
                          dependent=False),
        ])
        manager = VersionManager(database)
        p = database.make("P")
        gc, c0 = manager.create("C", values={"p": p})
        report = manager.derive(c0)
        assert database.value(report.new_version, "p") is None
        assert report.nilled["p"] == [p]

    def test_non_composite_values_copied(self, vdb):
        database, manager = vdb
        ga, a0 = manager.create("A", values={"note": "hello"})
        new = manager.derive(a0).new_version
        assert database.value(new, "note") == "hello"

    def test_overrides_apply(self, vdb):
        database, manager = vdb
        ga, a0 = manager.create("A", values={"note": "old"})
        new = manager.derive(a0, overrides={"note": "new"}).new_version
        assert database.value(new, "note") == "new"


class TestCV2X:
    def test_version_instance_single_exclusive_ref(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})
        ga2, a2_0 = manager.create("A")
        with pytest.raises(TopologyError):
            database.set_value(a2_0, "b", b0)

    def test_generic_exclusive_refs_same_hierarchy_only(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": gb})
        a1 = manager.derive(a0).new_version
        database.set_value(a1, "b", gb)  # same hierarchy: allowed
        gc, c0 = manager.create("A")
        with pytest.raises(VersionTopologyError):
            database.set_value(c0, "b", gb)  # different hierarchy

    def test_generic_shared_refs_unconstrained(self):
        database = Database()
        database.make_class("D", versionable=True)
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("ds", domain=SetOf("D"), composite=True,
                          exclusive=False, dependent=False),
        ])
        manager = VersionManager(database)
        gd, d0 = manager.create("D")
        for _ in range(3):
            gc, c0 = manager.create("C", values={"ds": [gd]})
        assert len(manager.generic_parents(gd)) == 3

    def test_cv3x_corollary_across_objects(self, vdb):
        # Versions of different objects may not hold exclusive references
        # to different versions of the same object.
        database, manager = vdb
        gb, b0 = manager.create("B")
        b1 = manager.derive(b0).new_version
        ga, a0 = manager.create("A", values={"b": b0})
        gc, c0 = manager.create("A")
        with pytest.raises(VersionTopologyError):
            database.set_value(c0, "b", b1)


class TestFigure3RefCounts:
    def test_counts_aggregate_static_and_dynamic(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})
        a1 = manager.derive(a0).new_version  # rebinds to gb
        a2 = manager.derive(a1).new_version  # keeps dynamic gb
        assert manager.ref_count(ga, "b", gb) == 3

    def test_decrement_and_removal(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})
        a1 = manager.derive(a0).new_version
        database.set_value(a0, "b", None)
        assert manager.ref_count(ga, "b", gb) == 1
        database.set_value(a1, "b", None)
        assert manager.ref_count(ga, "b", gb) == 0
        assert manager.generic_parents(gb) == []

    def test_generic_parents_reproduces_figure3b(self, vdb):
        # parents-of on the generic b1 yields a1 even when all composite
        # references are statically bound.
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})
        assert manager.generic_parents(gb) == [ga]

    def test_generic_links_flags(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})
        links = manager.generic_links(gb)
        assert len(links) == 1
        link, count = links[0]
        assert link.source == ga and link.exclusive and not link.dependent
        assert count == 1

    def test_nonversionable_parent_key_is_itself(self, vdb):
        database, manager = vdb
        database.make_class("Holder", attributes=[
            AttributeSpec("b", domain="B", composite=True, exclusive=False,
                          dependent=False),
        ])
        gb, b0 = manager.create("B")
        holder = database.make("Holder", values={"b": b0})
        assert manager.generic_parents(gb) == [holder]


class TestCV4XDeletion:
    def test_delete_nonlast_version_keeps_generic(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        b1 = manager.derive(b0).new_version
        manager.delete_version(b0)
        assert manager.registry.is_generic(gb)
        assert database.exists(b1)
        assert not database.exists(b0)

    def test_delete_last_version_deletes_generic(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        manager.delete_version(b0)
        assert not manager.registry.is_generic(gb)
        assert not database.exists(gb)

    def test_generic_deletion_spares_independent_exclusive_targets(self, vdb):
        # A.b is *independent* exclusive: under the dependency-based CV-4X
        # reading (see manager docstring) the module generics survive.
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})
        manager.delete_generic(ga)
        assert not manager.registry.is_generic(ga)
        assert manager.registry.is_generic(gb)
        assert database.exists(b0)
        # The survivor is detached and reusable.
        assert database.peek(b0).reverse_references == []

    def test_generic_deletion_cascades_dependent_exclusive_generics(self):
        database = Database()
        database.make_class("D", versionable=True)
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("d", domain="D", composite=True, exclusive=True,
                          dependent=True),
        ])
        manager = VersionManager(database)
        gd, d0 = manager.create("D")
        gc, c0 = manager.create("C", values={"d": d0})
        manager.delete_generic(gc)
        assert not manager.registry.is_generic(gc)
        assert not manager.registry.is_generic(gd)
        assert not database.exists(d0)

    def test_generic_deletion_dependent_shared_last_source(self):
        database = Database()
        database.make_class("D", versionable=True)
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("ds", domain=SetOf("D"), composite=True,
                          exclusive=False, dependent=True),
        ])
        manager = VersionManager(database)
        gd, d0 = manager.create("D")
        gc1, c1 = manager.create("C", values={"ds": [d0]})
        gc2, c2 = manager.create("C", values={"ds": [d0]})
        manager.delete_generic(gc1)
        assert manager.registry.is_generic(gd)  # gc2 still depends on it
        manager.delete_generic(gc2)
        assert not manager.registry.is_generic(gd)

    def test_generic_deletion_spares_shared_targets(self):
        database = Database()
        database.make_class("D", versionable=True)
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("ds", domain=SetOf("D"), composite=True,
                          exclusive=False, dependent=False),
        ])
        manager = VersionManager(database)
        gd, d0 = manager.create("D")
        gc, c0 = manager.create("C", values={"ds": [d0]})
        manager.delete_generic(gc)
        assert manager.registry.is_generic(gd)
        assert database.exists(d0)

    def test_dependent_static_cascade_on_version_delete(self):
        database = Database()
        database.make_class("D", versionable=True)
        database.make_class("C", versionable=True, attributes=[
            AttributeSpec("d", domain="D", composite=True, exclusive=True,
                          dependent=True),
        ])
        manager = VersionManager(database)
        gd, d0 = manager.create("D")
        gc, c0 = manager.create("C", values={"d": d0})
        manager.delete_version(c0)
        assert not database.exists(d0)
        assert not manager.registry.is_generic(gd)  # emptied by cascade

    def test_default_falls_back_after_user_default_deleted(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        b1 = manager.derive(b0).new_version
        manager.set_default(gb, b0)
        manager.delete_version(b0)
        assert manager.default_version(gb) == b1


class TestManagerGuards:
    def test_single_manager_per_database(self, vdb):
        database, manager = vdb
        with pytest.raises(VersionError):
            VersionManager(database)

    def test_version_info_of_plain_object_raises(self, vdb):
        database, manager = vdb
        plain = database.make("Plain")
        with pytest.raises(NotVersionableError):
            manager.registry.version_info(plain)


class TestCV2XStaticDynamicInteraction:
    """Regression: exclusive static and dynamic references to the same
    versionable object must be mutually visible across hierarchies."""

    def test_dynamic_after_foreign_static_rejected(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})   # static, hierarchy A
        gc, c0 = manager.create("A")
        with pytest.raises(VersionTopologyError):
            database.set_value(c0, "b", gb)              # dynamic, hierarchy C

    def test_static_after_foreign_dynamic_rejected(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": gb})   # dynamic, hierarchy A
        gc, c0 = manager.create("A")
        with pytest.raises(VersionTopologyError):
            database.set_value(c0, "b", b0)              # static, hierarchy C

    def test_same_hierarchy_mixing_is_legal(self, vdb):
        database, manager = vdb
        gb, b0 = manager.create("B")
        b1 = manager.derive(b0).new_version
        ga, a0 = manager.create("A", values={"b": b0})   # static
        a1 = manager.derive(a0).new_version              # rebinds to gb
        assert database.value(a1, "b") == gb
        database.validate()

    def test_failed_derive_leaves_no_orphan_version(self, vdb):
        # Atomicity of _new_version: force a mid-materialization failure
        # and check the registry holds no half-wired version.
        database, manager = vdb
        gb, b0 = manager.create("B")
        ga, a0 = manager.create("A", values={"b": b0})
        versions_before = list(manager.registry.generic_info(ga).versions)
        count_before = len(database)
        with pytest.raises(Exception):
            manager.derive(a0, overrides={"b": "not-a-uid"})
        assert manager.registry.generic_info(ga).versions == versions_before
        assert len(database) == count_before
        database.validate()
