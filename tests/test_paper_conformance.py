"""Executable specification: one test per rule the paper states.

Each test quotes (or tightly paraphrases) the paper and asserts the
behaviour *through the ORION message language* — the user-visible surface
— so this suite doubles as conformance documentation.  Section order
follows the paper.
"""

import pytest

from repro import LegacyModelError, TopologyError
from repro.errors import VersionTopologyError
from repro.query import Interpreter


@pytest.fixture
def orion():
    return Interpreter()


def _vehicle_schema(orion):
    orion.run("""
      (make-class 'AutoBody)
      (make-class 'AutoDrivetrain)
      (make-class 'AutoTires)
      (make-class 'Vehicle
        :attributes '((Body :domain AutoBody :composite t :exclusive t
                            :dependent nil)
                      (Drivetrain :domain AutoDrivetrain :composite t
                                  :exclusive t :dependent nil)
                      (Tires :domain (set-of AutoTires) :composite t
                             :exclusive t :dependent nil)))
    """)


def _document_schema(orion):
    orion.run("""
      (make-class 'Paragraph)
      (make-class 'Image)
      (make-class 'Section
        :attributes '((Content :domain (set-of Paragraph) :composite t
                               :exclusive nil :dependent t)))
      (make-class 'Document
        :attributes '((Sections :domain (set-of Section) :composite t
                                :exclusive nil :dependent t)
                      (Figures :domain (set-of Image) :composite t
                               :exclusive nil :dependent nil)
                      (Annotations :domain (set-of Paragraph) :composite t
                                   :exclusive t :dependent t)))
    """)


class TestSection1Shortcomings:
    """The three [KIM87b] shortcomings the extended model removes."""

    def test_logical_hierarchy_an_identical_chapter_in_two_books(self, orion):
        # "an identical chapter may be a part of two different books"
        _document_schema(orion)
        orion.run("""
          (setq chapter (make Section))
          (setq book1 (make Document))
          (setq book2 (make Document))
          (insert book1 Sections chapter)
          (insert book2 Sections chapter)
        """)
        assert len(orion.run_one("(parents-of chapter)")) == 2

    def test_bottom_up_creation_by_assembling_existing_objects(self, orion):
        _vehicle_schema(orion)
        orion.run("""
          (setq body (make AutoBody))     ;; component exists first
          (setq v (make Vehicle))
          (make-part-of body v Body)
        """)
        assert orion.run_one("(component-of body v)")

    def test_deletion_no_longer_forces_component_loss(self, orion):
        # "Sometimes, however, it impedes reuse of objects" — independent
        # references fix it.
        _vehicle_schema(orion)
        orion.run("""
          (setq body (make AutoBody))
          (setq v (make Vehicle :Body body))
          (delete v)
        """)
        assert orion.run_one("(parents-of body)") == []
        # the body is alive and reusable:
        orion.run("(setq v2 (make Vehicle :Body body))")
        assert orion.run_one("(component-of body v2)")

    def test_kim87b_baseline_still_rejects_all_three(self):
        from repro import AttributeSpec, LegacyDatabase

        legacy = LegacyDatabase()
        legacy.make_class("P")
        with pytest.raises(LegacyModelError):  # no shared references
            legacy.make_class("Bad", attributes=[
                AttributeSpec("x", domain="P", composite=True,
                              exclusive=False),
            ])


class TestSection2Semantics:
    def test_composite_reference_is_a_weak_reference_plus_is_part_of(self, orion):
        _vehicle_schema(orion)
        orion.run("""
          (setq body (make AutoBody))
          (setq v (make Vehicle :Body body))
        """)
        # The reference holds the UID (weak aspect)...
        assert orion.run_one("(get v Body)") == orion.env["body"]
        # ...plus IS-PART-OF (the composite aspect).
        assert orion.run_one("(child-of body v)")

    def test_exclusive_means_part_of_only_one(self, orion):
        _vehicle_schema(orion)
        orion.run("""
          (setq body (make AutoBody))
          (setq v1 (make Vehicle :Body body))
          (setq v2 (make Vehicle))
        """)
        with pytest.raises(TopologyError):
            orion.run("(set v2 Body body)")

    def test_shared_means_part_of_possibly_many(self, orion):
        _document_schema(orion)
        orion.run("""
          (setq p (make Paragraph))
          (setq s1 (make Section))
          (setq s2 (make Section))
          (insert s1 Content p)
          (insert s2 Content p)
        """)
        assert len(orion.run_one("(parents-of p)")) == 2

    def test_root_of_a_composite_object_may_change(self, orion):
        # "an object which is the current root of a composite object may
        # become the target of a composite reference from another object"
        _document_schema(orion)
        orion.run("""
          (setq s (make Section))         ;; s is its own root
          (setq d (make Document))
          (insert d Sections s)           ;; now d is the root
        """)
        assert orion.db.roots_of(orion.env["s"]) == [orion.env["d"]]

    def test_deletion_rule_dependent_shared_refcounting(self, orion):
        # del(O') => del(O) only if DS(O) = {O'}
        _document_schema(orion)
        orion.run("""
          (setq s (make Section))
          (setq d1 (make Document))
          (setq d2 (make Document))
          (insert d1 Sections s)
          (insert d2 Sections s)
          (delete d1)
        """)
        assert orion.db.exists(orion.env["s"])
        orion.run("(delete d2)")
        assert not orion.db.exists(orion.env["s"])

    def test_example2_annotations_exclusive_figures_independent(self, orion):
        _document_schema(orion)
        orion.run("""
          (setq note (make Paragraph))
          (setq fig (make Image))
          (setq d (make Document))
          (insert d Annotations note)
          (insert d Figures fig)
          (delete d)
        """)
        # "we assume that a given annotation is used in only one document"
        # (dependent exclusive: dies), "the existence of images does not
        # depend on the documents containing them" (independent: lives).
        assert not orion.db.exists(orion.env["note"])
        assert orion.db.exists(orion.env["fig"])

    def test_multi_parent_make_requires_shared_attributes(self, orion):
        # "because of topology rule 3, these attributes must be shared
        # composite attributes"
        _vehicle_schema(orion)
        _document_schema(orion)
        orion.run("""
          (setq v (make Vehicle))
          (setq d (make Document))
        """)
        # Tires is exclusive: two composite parents are illegal.
        with pytest.raises(TopologyError):
            orion.db.make(
                "AutoTires",
                parents=[(orion.env["v"], "Tires"),
                         (orion.env["v"], "Tires")],
            )

    def test_simultaneous_shared_parents_succeed(self, orion):
        _document_schema(orion)
        orion.run("""
          (setq s1 (make Section))
          (setq s2 (make Section))
          (setq p (make Paragraph :parent ((s1 Content) (s2 Content))))
        """)
        assert len(orion.run_one("(parents-of p)")) == 2


class TestSection3Operations:
    @pytest.fixture
    def loaded(self, orion):
        _document_schema(orion)
        orion.run("""
          (setq p (make Paragraph))
          (setq s (make Section))
          (insert s Content p)
          (setq d (make Document))
          (insert d Sections s)
        """)
        return orion

    def test_components_of_all_levels(self, loaded):
        assert set(loaded.run_one("(components-of d)")) == {
            loaded.env["s"], loaded.env["p"],
        }

    def test_level_argument_is_shortest_path(self, loaded):
        assert loaded.run_one("(components-of d nil nil nil 1)") == \
            [loaded.env["s"]]

    def test_ancestors_of(self, loaded):
        assert set(loaded.run_one("(ancestors-of p)")) == {
            loaded.env["s"], loaded.env["d"],
        }

    def test_component_of_direct_and_indirect(self, loaded):
        assert loaded.run_one("(component-of p d)")     # indirect
        assert loaded.run_one("(child-of s d)")         # direct
        assert not loaded.run_one("(child-of p d)")     # not direct

    def test_shared_component_of_equivalence(self, loaded):
        # "sending the component-of and exclusive-component-of messages in
        # sequence has the same effect as shared-component-of"
        direct = loaded.run_one("(shared-component-of s d)")
        derived = loaded.run_one("(component-of s d)") and not \
            loaded.run_one("(exclusive-component-of s d)")
        assert direct == derived is True

    def test_compositep_without_attribute(self, loaded):
        # "If the argument AttributeName is not supplied, the message
        # returns True if the class has at least one attribute with such
        # property."
        assert loaded.run_one("(compositep Document)")
        assert not loaded.run_one("(compositep Paragraph)")


class TestSection5Versions:
    def test_cv2x_one_exclusive_reference_per_version_instance(self):
        from repro import AttributeSpec, Database
        from repro.versions import VersionManager

        db = Database()
        db.make_class("B", versionable=True)
        db.make_class("A", versionable=True, attributes=[
            AttributeSpec("b", domain="B", composite=True, exclusive=True,
                          dependent=False),
        ])
        vm = VersionManager(db)
        gb, b0 = vm.create("B")
        ga, a0 = vm.create("A", values={"b": b0})
        gc, c0 = vm.create("A")
        with pytest.raises(TopologyError):
            db.set_value(c0, "b", b0)

    def test_cv2x_generic_exclusive_same_hierarchy_only(self):
        from repro import AttributeSpec, Database
        from repro.versions import VersionManager

        db = Database()
        db.make_class("B", versionable=True)
        db.make_class("A", versionable=True, attributes=[
            AttributeSpec("b", domain="B", composite=True, exclusive=True,
                          dependent=False),
        ])
        vm = VersionManager(db)
        gb, b0 = vm.create("B")
        ga, a0 = vm.create("A", values={"b": gb})
        a1 = vm.derive(a0).new_version
        db.set_value(a1, "b", gb)  # same hierarchy: legal
        gc, c0 = vm.create("A")
        with pytest.raises(VersionTopologyError):
            db.set_value(c0, "b", gb)

    def test_last_version_deletes_generic(self):
        from repro import Database
        from repro.versions import VersionManager

        db = Database()
        db.make_class("B", versionable=True)
        vm = VersionManager(db)
        gb, b0 = vm.create("B")
        vm.delete_version(b0)
        assert not vm.registry.is_generic(gb)


class TestSection6Authorization:
    def test_strongest_of_all_implied_authorizations(self, figure5_db):
        from repro.authorization import AuthorizationEngine

        db, h = figure5_db
        engine = AuthorizationEngine(db)
        engine.grant("u", "sR", on_instance=h["j"])
        engine.grant("u", "sW", on_instance=h["k"])
        # "the authorization implied on Instance[o'] is a strong W
        # authorization, which in turn implies a strong R authorization."
        resolution = engine.resolve("u", h["o_prime"])
        assert resolution.permits("W") and resolution.permits("R")

    def test_negative_example_from_the_paper(self, figure5_db):
        from repro import AuthorizationConflict
        from repro.authorization import AuthorizationEngine

        db, h = figure5_db
        engine = AuthorizationEngine(db)
        engine.grant("u", "s¬R", on_instance=h["j"])
        # "a later attempt to grant the user a strong W authorization on
        # Instance[k] will fail. This is because ¬R implies ¬W, which
        # contradicts the positive strong W being granted."
        with pytest.raises(AuthorizationConflict):
            engine.grant("u", "sW", on_instance=h["k"])


class TestSection7Locking:
    def test_protocol_quote_multiple_users_different_composites(self):
        from repro import Database
        from repro.locking import CompositeLockingProtocol, LockTable
        from repro.workloads.parts import build_assembly

        db = Database()
        t1 = build_assembly(db, depth=1, fanout=2)
        t2 = build_assembly(db, depth=1, fanout=2)
        protocol = CompositeLockingProtocol(db, LockTable())
        protocol.lock_composite("T1", t1.root, "write")
        protocol.lock_composite("T2", t2.root, "write")  # coexists

    def test_paper_compatibility_sentence(self):
        # "while IS and IX modes do not conflict, the ISO mode conflicts
        # with IX mode, and IXO and SIXO modes conflict with both IS and
        # IX modes."
        from repro.locking import LockMode as M, compatible

        assert compatible(M.IS, M.IX)
        assert not compatible(M.ISO, M.IX)
        for offender in (M.IXO, M.SIXO):
            assert not compatible(offender, M.IS)
            assert not compatible(offender, M.IX)

    def test_readers_and_writers_quote(self):
        # "several readers and writers on a component class of exclusive
        # references, and several readers and one writer on a component
        # class of shared references."
        from repro.locking import LockMode as M, compatible

        assert compatible(M.ISO, M.IXO)      # readers AND writers coexist
        assert compatible(M.ISOS, M.ISOS)    # several readers
        assert not compatible(M.IXOS, M.IXOS)  # but one writer
