"""The protocol plane (analysis plane 4): 2PC model checker + lints.

Three layers under test: the pure state machine and its explorer
(seeded protocol bugs must yield minimal counterexamples, the faithful
model must sweep clean, and the sleep-set reduction must agree with
plain BFS); trace refinement (durable traces from the *real*
journal/recovery stack must be linearizations the model allows); and
the drift lints that keep the model honest against the implementation
(failpoint sites and wire-op tables).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import protocheck
from repro.analysis.cli import main as cli_main
from repro.analysis.findings import Report
from repro.analysis.proto_model import (
    CRASH_SITES,
    SUBSUMED_SITES,
    Scope,
    commit_possible,
    initial_state,
    successors,
)


# ---------------------------------------------------------------------------
# The model and its explorer
# ---------------------------------------------------------------------------


class TestModelExploration:
    def test_faithful_model_sweeps_clean(self):
        for scope in (Scope(1, 1, 1), Scope(2, 1, 1), Scope(2, 2, 1)):
            result = protocheck.explore(scope)
            assert result.ok, result.summary()
            assert result.terminals > 0
            assert result.states > 0

    def test_seeded_presumed_commit_minimal_counterexample(self):
        result = protocheck.explore(
            Scope(1, 1, 1), bug="presumed-commit", strategy="bfs"
        )
        witnesses = [
            c for c in result.counterexamples
            if c.rule == "PROTO-CONSISTENCY"
        ]
        assert witnesses, "seeded bug not found"
        # BFS guarantees the first counterexample is shortest: prepare,
        # crash at twopc.prepared, restart, presume (wrongly) commit.
        assert len(witnesses[0].trace) == 4
        assert "presume_abort" in witnesses[0].trace[-1]

    def test_seeded_bug_found_by_dfs_too(self):
        result = protocheck.explore(Scope(1, 1, 1), bug="presumed-commit")
        assert not result.ok
        assert any(
            c.rule == "PROTO-CONSISTENCY" for c in result.counterexamples
        )

    def test_grace_guard_needs_spontaneous_crashes_to_falsify(self):
        scope = Scope(2, 1, 1)
        # Dropping the guard is harmless under site-only crashes: a
        # doubted participant with every vote in implies the log line.
        assert protocheck.explore(scope, bug="presume-eager").ok
        # Under spontaneous crashes the premature presume-abort races
        # a coordinator that still can (and does) decide commit.
        eager = protocheck.explore(
            scope, bug="presume-eager", spontaneous=True
        )
        assert not eager.ok
        assert any(
            c.rule in ("PROTO-CONSISTENCY", "PROTO-ATOMICITY")
            for c in eager.counterexamples
        )
        # The guarded (faithful) model stays clean on the same space.
        assert protocheck.explore(scope, spontaneous=True).ok

    def test_sleep_set_reduction_is_sound(self):
        for scope in (Scope(2, 1, 1), Scope(2, 2, 1)):
            bfs = protocheck.explore(scope, strategy="bfs")
            dfs = protocheck.explore(scope, strategy="dfs")
            assert bfs.states == dfs.states
            assert bfs.ok and dfs.ok
        assert dfs.sleep_skips > 0  # the reduction actually pruned

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            protocheck.explore(Scope(1, 1, 1), strategy="random")

    def test_check_protocol_folds_into_report(self):
        report, result = protocheck.check_protocol(
            Scope(1, 1, 1), bug="presumed-commit", strategy="bfs"
        )
        assert report.checked == result.states
        assert report.errors
        finding = report.errors[0]
        assert finding.rule == "PROTO-CONSISTENCY"
        assert finding.detail["trace"]  # the counterexample rides along
        assert finding.detail["scope"] == "1w/1t/1c"

    def test_crash_budget_is_respected(self):
        seen_crashes = set()
        scope = Scope(1, 1, 2)
        state = initial_state(scope)
        frontier, visited = [state], {state}
        while frontier:
            state = frontier.pop()
            seen_crashes.add(scope.max_crashes - state.crashes_left)
            for _, successor in successors(state, scope):
                if successor not in visited:
                    visited.add(successor)
                    frontier.append(successor)
        assert seen_crashes == {0, 1, 2}

    def test_commit_possible_tracks_coordinator_fate(self):
        scope = Scope(1, 1, 1)
        state = initial_state(scope)
        assert commit_possible(state, 0)
        dead = state._replace(coord_alive=False, phases=("dead",))
        assert not commit_possible(dead, 0)
        failed = state._replace(votes=(("fail",),))
        assert not commit_possible(failed, 0)
        # A crashed participant that never voted can no longer say yes.
        crashed = state._replace(
            workers_alive=(False,), parts=(("lost",),)
        )
        assert not commit_possible(crashed, 0)


# ---------------------------------------------------------------------------
# Trace refinement (PROTO-REFINE)
# ---------------------------------------------------------------------------


def _trace(decisions, markers):
    return {
        "root": "test",
        "decisions": decisions,
        "shards": {"0": markers},
    }


class TestTraceRefinement:
    def test_clean_commit_trace(self):
        report = protocheck.conform_trace(_trace(
            {"g1": "commit"},
            [{"kind": "P", "gtid": "g1"},
             {"kind": "R", "gtid": "g1", "commit": True}],
        ))
        assert report.clean

    def test_presumed_abort_without_decision_is_legal(self):
        report = protocheck.conform_trace(_trace(
            {},
            [{"kind": "P", "gtid": "g1"},
             {"kind": "R", "gtid": "g1", "commit": False}],
        ))
        assert report.clean

    def test_commit_without_logged_decision_is_flagged(self):
        report = protocheck.conform_trace(_trace(
            {},
            [{"kind": "P", "gtid": "g1"},
             {"kind": "R", "gtid": "g1", "commit": True}],
        ))
        assert [f.rule for f in report.errors] == ["PROTO-REFINE"]
        assert "never be presumed" in report.errors[0].message

    def test_abort_against_logged_commit_is_flagged(self):
        report = protocheck.conform_trace(_trace(
            {"g1": "commit"},
            [{"kind": "P", "gtid": "g1"},
             {"kind": "R", "gtid": "g1", "commit": False}],
        ))
        assert report.errors
        assert "durable commit" in report.errors[0].message

    def test_resolution_without_prepare_is_flagged(self):
        report = protocheck.conform_trace(_trace(
            {"g1": "commit"},
            [{"kind": "R", "gtid": "g1", "commit": True}],
        ))
        assert report.errors
        assert "without a preceding P" in report.errors[0].message

    def test_double_prepare_and_double_resolve_are_flagged(self):
        report = protocheck.conform_trace(_trace(
            {"g1": "abort"},
            [{"kind": "P", "gtid": "g1"},
             {"kind": "P", "gtid": "g1"},
             {"kind": "R", "gtid": "g1", "commit": False},
             {"kind": "R", "gtid": "g1", "commit": False}],
        ))
        messages = " / ".join(f.message for f in report.errors)
        assert "second P" in messages
        assert "second resolution" in messages

    def test_dangling_prepare_is_a_warning_not_an_error(self):
        report = protocheck.conform_trace(_trace(
            {}, [{"kind": "P", "gtid": "g1"}],
        ))
        assert not report.errors
        assert report.warnings
        assert "in doubt" in report.warnings[0].message

    def test_conform_traces_reads_files_and_directories(self, tmp_path):
        good = _trace({"g1": "commit"}, [
            {"kind": "P", "gtid": "g1"},
            {"kind": "R", "gtid": "g1", "commit": True},
        ])
        (tmp_path / "a.json").write_text(json.dumps(good))
        (tmp_path / "b.json").write_text(json.dumps(good))
        report, count = protocheck.conform_traces([tmp_path])
        assert count == 2
        assert report.clean


class TestImplementationRefinement:
    def test_100_live_journal_traces_refine_the_model(self, tmp_path):
        """The acceptance gate: 100 seeded 2PC rounds through the real
        journal + recovery stack, every durable trace a legal model
        linearization."""
        traces = protocheck.gather_impl_traces(tmp_path, runs=100)
        assert len(traces) == 100
        report = Report(plane="proto")
        for trace in traces:
            protocheck.conform_trace(trace, report)
        assert report.clean, report.render()
        # The seeded fates actually exercised the protocol: decisions
        # were logged and prepares journaled across the corpus.
        assert any(trace["decisions"] for trace in traces)
        assert any(
            marker["kind"] == "P"
            for trace in traces
            for markers in trace["shards"].values()
            for marker in markers
        )

    def test_extract_trace_on_empty_root_is_empty(self, tmp_path):
        trace = protocheck.extract_trace(tmp_path)
        assert trace["decisions"] == {}
        assert trace["shards"] == {}


# ---------------------------------------------------------------------------
# Drift lints
# ---------------------------------------------------------------------------


class TestDriftLints:
    def test_protocol_sites_clean_on_live_tree(self):
        report = protocheck.lint_protocol_sites()
        assert report.clean, report.render()
        assert report.checked == len(protocheck.SCANNED_FILES)

    def test_site_universe_is_disjoint_and_cataloged(self):
        from repro.faults.registry import FAILPOINTS

        assert not set(CRASH_SITES) & set(SUBSUMED_SITES)
        for site in (*CRASH_SITES, *SUBSUMED_SITES):
            assert site in FAILPOINTS

    def test_missing_scanned_file_is_drift(self, tmp_path):
        report = protocheck.lint_protocol_sites(package_root=tmp_path)
        assert any(
            "missing" in f.message for f in report.errors
        )

    def test_unknown_fired_site_is_drift(self, tmp_path):
        for relative in protocheck.SCANNED_FILES:
            path = tmp_path / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("")
        (tmp_path / "shard" / "twopc.py").write_text(
            'fire_or_die("bogus.site")\n'
        )
        report = protocheck.lint_protocol_sites(package_root=tmp_path)
        messages = " / ".join(f.message for f in report.errors)
        assert "bogus.site" in messages
        # And the reverse direction: model universe sites now unfired.
        assert "fired nowhere" in messages

    def test_wire_ops_clean_on_live_tree(self):
        report = protocheck.lint_wire_ops()
        assert report.clean, report.render()
        assert report.checked > 20


# ---------------------------------------------------------------------------
# CLI and server plane
# ---------------------------------------------------------------------------


class TestProtoCli:
    def test_self_test_passes(self, capsys):
        assert cli_main(["proto", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "proto self-test: pass" in out

    def test_small_scope_run_exits_clean(self, capsys):
        assert cli_main(
            ["proto", "--workers", "1", "--txns", "1", "-q"]
        ) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_replay_gates_on_bad_trace(self, tmp_path, capsys):
        bad = _trace({}, [
            {"kind": "P", "gtid": "g1"},
            {"kind": "R", "gtid": "g1", "commit": True},
        ])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert cli_main([
            "proto", "--workers", "1", "--txns", "1",
            "--replay", str(path), "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(
            finding["rule"] == "PROTO-REFINE"
            for finding in payload["findings"]
        )


class TestProtoOverTheWire:
    def test_proto_plane_over_live_server(self):
        from repro.server import Client, ServerThread

        with ServerThread() as handle:
            with Client(port=handle.port) as client:
                report = client.check(plane="proto")
                assert set(report) == {"proto", "ok"}
                assert report["ok"], report
                assert report["proto"]["checked"] > 40

    def test_all_plane_skips_the_exploration(self):
        from repro.server import Client, ServerThread

        with ServerThread() as handle:
            with Client(port=handle.port) as client:
                report = client.check()
                assert "proto" not in report
