"""Tests for transactions: strict 2PL, undo, abort-time resurrection."""

import pytest

from repro import AttributeSpec, Database, LockConflictError, SetOf
from repro.errors import TransactionStateError
from repro.locking.modes import LockMode as M
from repro.txn import TransactionManager, TxnState


@pytest.fixture
def txn_env():
    database = Database()
    database.make_class("Leaf", attributes=[
        AttributeSpec("Tag", domain="string"),
    ])
    database.make_class("Box", attributes=[
        AttributeSpec("Name", domain="string"),
        AttributeSpec("L", domain=SetOf("Leaf"), composite=True,
                      exclusive=True, dependent=True),
    ])
    manager = TransactionManager(database)
    return database, manager


class TestCommitAbort:
    def test_commit_keeps_changes(self, txn_env):
        database, manager = txn_env
        box = database.make("Box", values={"Name": "a"})
        txn = manager.begin()
        manager.write(txn, box, "Name", "b")
        manager.commit(txn)
        assert database.value(box, "Name") == "b"
        assert txn.state is TxnState.COMMITTED
        assert manager.commits == 1

    def test_abort_restores_scalar(self, txn_env):
        database, manager = txn_env
        box = database.make("Box", values={"Name": "a"})
        txn = manager.begin()
        manager.write(txn, box, "Name", "b")
        manager.abort(txn)
        assert database.value(box, "Name") == "a"
        assert manager.aborts == 1

    def test_abort_restores_set_operations(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        keep = database.make("Leaf", parents=[(box, "L")])
        txn = manager.begin()
        added = manager.make(txn, "Leaf")
        manager.insert(txn, box, "L", added)
        manager.remove(txn, box, "L", keep)
        manager.abort(txn)
        assert database.value(box, "L") == [keep]
        assert not database.exists(added)
        database.validate()

    def test_abort_resurrects_deletion_cascade(self, txn_env):
        database, manager = txn_env
        box = database.make("Box", values={"Name": "x"})
        leaves = [database.make("Leaf", parents=[(box, "L")]) for _ in range(3)]
        txn = manager.begin()
        manager.delete(txn, box)
        assert not database.exists(box)
        manager.abort(txn)
        assert database.exists(box)
        for leaf in leaves:
            assert database.exists(leaf)
        assert database.value(box, "L") == leaves
        database.validate()

    def test_committed_delete_stays(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        leaf = database.make("Leaf", parents=[(box, "L")])
        txn = manager.begin()
        manager.delete(txn, box)
        manager.commit(txn)
        assert not database.exists(box) and not database.exists(leaf)

    def test_double_commit_rejected(self, txn_env):
        database, manager = txn_env
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionStateError):
            manager.commit(txn)
        with pytest.raises(TransactionStateError):
            manager.abort(txn)

    def test_operation_after_commit_rejected(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionStateError):
            manager.write(txn, box, "Name", "z")

    def test_undo_applied_in_reverse_order(self, txn_env):
        database, manager = txn_env
        box = database.make("Box", values={"Name": "start"})
        txn = manager.begin()
        manager.write(txn, box, "Name", "mid")
        manager.write(txn, box, "Name", "end")
        manager.abort(txn)
        assert database.value(box, "Name") == "start"


class TestStrict2PL:
    def test_writer_blocks_writer(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        t1, t2 = manager.begin(), manager.begin()
        manager.write(t1, box, "Name", "a")
        with pytest.raises(LockConflictError):
            manager.write(t2, box, "Name", "b")

    def test_readers_share(self, txn_env):
        database, manager = txn_env
        box = database.make("Box", values={"Name": "a"})
        t1, t2 = manager.begin(), manager.begin()
        assert manager.read(t1, box, "Name") == "a"
        assert manager.read(t2, box, "Name") == "a"

    def test_reader_blocks_writer(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        t1, t2 = manager.begin(), manager.begin()
        manager.read(t1, box, "Name")
        with pytest.raises(LockConflictError):
            manager.write(t2, box, "Name", "b")

    def test_locks_held_until_commit(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        t1 = manager.begin()
        manager.write(t1, box, "Name", "a")
        t2 = manager.begin()
        with pytest.raises(LockConflictError):
            manager.read(t2, box, "Name")
        manager.commit(t1)
        assert manager.read(t2, box, "Name") == "a"

    def test_abort_releases_locks(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        t1 = manager.begin()
        manager.write(t1, box, "Name", "a")
        manager.abort(t1)
        t2 = manager.begin()
        manager.write(t2, box, "Name", "b")

    def test_read_composite_locks_whole_granule(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        leaf = database.make("Leaf", parents=[(box, "L")])
        t1 = manager.begin()
        components = manager.read_composite(t1, box)
        assert components == [leaf]
        # The composite read (ISO on Leaf) blocks a direct leaf writer (IX).
        t2 = manager.begin()
        with pytest.raises(LockConflictError):
            manager.write(t2, leaf, "Tag", "dirty")

    def test_composite_update_lock(self, txn_env):
        database, manager = txn_env
        b1 = database.make("Box")
        b2 = database.make("Box")
        t1, t2 = manager.begin(), manager.begin()
        manager.lock_composite_for_update(t1, b1)
        # Distinct composite objects of the same class update concurrently.
        manager.lock_composite_for_update(t2, b2)
        assert manager.table.modes_held(t1, ("class", "Leaf")) == {M.IXO}
        assert manager.table.modes_held(t2, ("class", "Leaf")) == {M.IXO}

    def test_make_locks_parents(self, txn_env):
        database, manager = txn_env
        box = database.make("Box")
        t1 = manager.begin()
        manager.make(t1, "Leaf", parents=[(box, "L")])
        t2 = manager.begin()
        with pytest.raises(LockConflictError):
            manager.write(t2, box, "Name", "b")
