"""Tests for the analysis subsystem: the static schema analyzer (Plane 1),
the offline integrity checker / fsck (Plane 2), the shared findings model,
and their wiring (Database methods, evolution pre-flight, server ``check``
op, ``repro-check`` CLI).

The seeded-corruption tests are the heart: each one injects a corruption
*bypassing the public API* and asserts fsck fires the right rule id.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import AttributeSpec, Database, SetOf
from repro.analysis import (
    Finding,
    Report,
    SchemaAnalyzer,
    Severity,
    check_query,
    fsck_database,
)
from repro.analysis.cli import main as check_main
from repro.analysis.query_check import KNOWN_MESSAGES
from repro.authorization import AuthorizationEngine
from repro.errors import SchemaEvolutionError
from repro.query.interpreter import Interpreter
from repro.schema.evolution import SchemaEvolutionManager
from repro.storage.durable import DurableDatabase
from repro.versions import VersionManager
from repro.workloads.parts import build_part_tree, define_part_schema


# ---------------------------------------------------------------------------
# Findings model
# ---------------------------------------------------------------------------


class TestFindings:
    def test_severity_ordering_and_labels(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR.label == "error"

    def test_report_partitions_by_severity(self):
        report = Report(plane="test")
        report.add(Severity.ERROR, "X-A", "here", "broken")
        report.add(Severity.WARNING, "X-B", "there", "suspect")
        report.add(Severity.INFO, "X-C", "elsewhere", "fyi")
        assert len(report.errors) == len(report.warnings) == len(report.infos) == 1
        assert not report.ok
        assert not report.clean
        assert report.rules() == {"X-A", "X-B", "X-C"}

    def test_info_only_report_is_ok_but_not_clean(self):
        report = Report()
        report.add(Severity.INFO, "X-C", "loc", "fyi")
        assert report.ok and not report.clean

    def test_json_round_trip_stringifies_detail(self):
        report = Report(plane="test")
        report.add(Severity.ERROR, "X-A", "loc", "msg", uids=[object()])
        payload = json.loads(report.to_json())
        assert payload["plane"] == "test"
        assert payload["findings"][0]["rule"] == "X-A"
        assert isinstance(payload["findings"][0]["detail"]["uids"][0], str)

    def test_finding_is_immutable(self):
        finding = Finding(Severity.ERROR, "X", "loc", "msg")
        with pytest.raises(AttributeError):
            finding.rule = "Y"


# ---------------------------------------------------------------------------
# Plane 1 — static schema analysis
# ---------------------------------------------------------------------------


def _two_exclusive_owners():
    db = Database()
    db.make_class("Wheel", attributes=[AttributeSpec("Size", domain="integer")])
    db.make_class("Car", attributes=[
        AttributeSpec("Wheels", domain=SetOf("Wheel"), composite=True,
                      exclusive=True, dependent=True),
    ])
    db.make_class("Truck", attributes=[
        AttributeSpec("Wheels", domain=SetOf("Wheel"), composite=True,
                      exclusive=True, dependent=False),
    ])
    return db


class TestSchemaAnalyzer:
    def test_clean_schema_has_no_findings(self):
        db = Database()
        db.make_class("Leaf", attributes=[AttributeSpec("V", domain="integer")])
        assert SchemaAnalyzer(db.lattice).analyze().clean

    def test_exclusive_fanin_and_mixed_dependence(self):
        db = _two_exclusive_owners()
        report = SchemaAnalyzer(db.lattice).analyze()
        assert "SCH-EXCL-FANIN" in report.rules()
        # Car.Wheels is dependent-exclusive, Truck.Wheels independent-exclusive.
        assert "SCH-MIXED-DEPENDENCE" in report.rules()
        assert report.errors == []

    def test_mixed_exclusivity(self):
        db = _two_exclusive_owners()
        db.make_class("Gallery", attributes=[
            AttributeSpec("Exhibits", domain=SetOf("Wheel"), composite=True,
                          exclusive=False, dependent=False),
        ])
        report = SchemaAnalyzer(db.lattice).analyze()
        assert "SCH-MIXED-EXCLUSIVITY" in report.rules()

    def test_self_cycle_is_informational(self):
        db = Database()
        define_part_schema(db)
        report = SchemaAnalyzer(db.lattice).analyze()
        cycles = report.by_rule("SCH-COMPOSITE-CYCLE")
        assert cycles and all(f.severity == Severity.INFO for f in cycles)

    def test_dependent_multi_class_cycle_warns(self):
        db = Database()
        db.make_class("A")
        db.make_class("B", attributes=[
            AttributeSpec("MyA", domain="A", composite=True, dependent=True),
        ])
        # Close the cycle A -> B after B exists.
        db.lattice.get("A").local["MyB"] = AttributeSpec(
            "MyB", domain="B", composite=True, dependent=True, defined_in="A"
        )
        db.lattice.reresolve_subtree("A")
        report = SchemaAnalyzer(db.lattice).analyze()
        cycle_findings = report.by_rule("SCH-COMPOSITE-CYCLE")
        assert any(f.severity == Severity.WARNING for f in cycle_findings)

    def test_unknown_domain_is_an_error(self):
        db = Database()
        db.make_class("Orphan", attributes=[
            AttributeSpec("Ref", domain="NoSuchClass"),
        ])
        report = SchemaAnalyzer(db.lattice).analyze()
        assert "SCH-UNKNOWN-DOMAIN" in {f.rule for f in report.errors}


class TestEvolutionPreflight:
    def test_drop_dependent_attribute_warns_cascade(self):
        db = Database()
        define_part_schema(db)
        report = SchemaAnalyzer(db.lattice).preflight(
            "drop_attribute", "Part", "SubParts"
        )
        assert "EVO-CASCADE-DELETES" in report.rules()

    def test_unknown_target_is_an_error(self):
        db = Database()
        report = SchemaAnalyzer(db.lattice).preflight("drop_class", "Ghost")
        assert "EVO-UNKNOWN-TARGET" in {f.rule for f in report.errors}

    def test_i1_on_dependent_attribute_warns_stranding(self):
        db = Database()
        define_part_schema(db)
        report = SchemaAnalyzer(db.lattice).preflight("I1", "Part", "SubParts")
        assert "EVO-STRANDS-COMPONENTS" in report.rules()

    def test_d3_with_competing_declarations_warns_rule1(self):
        db = _two_exclusive_owners()
        # Pretend Car.Wheels were shared and being made exclusive.
        report = SchemaAnalyzer(db.lattice).preflight("D3", "Car", "Wheels")
        assert "EVO-RULE1-RISK" in report.rules()

    def test_drop_class_warns_dangling_domains(self):
        db = _two_exclusive_owners()
        report = SchemaAnalyzer(db.lattice).preflight("drop_class", "Wheel")
        assert "EVO-DANGLING-DOMAIN" in report.rules()

    def test_manager_records_preflight_and_strict_mode_rejects(self):
        db = Database()
        define_part_schema(db)
        manager = SchemaEvolutionManager(db)
        assert db.evolution is manager
        manager.make_independent("Part", "SubParts")
        assert manager.last_preflight is not None
        assert manager.last_preflight.plane == "evolution"
        manager.strict_preflight = True
        with pytest.raises(SchemaEvolutionError):
            manager.preflight("drop_attribute", "Part", "NoSuchAttr")


# ---------------------------------------------------------------------------
# Plane 1 — static query validation
# ---------------------------------------------------------------------------


class TestQueryCheck:
    @pytest.fixture
    def lattice(self):
        db = Database()
        define_part_schema(db)
        return db.lattice

    def test_known_messages_match_interpreter(self):
        interpreter = Interpreter(Database())
        assert KNOWN_MESSAGES == set(interpreter._handlers) | {"quote"}

    def test_valid_query_is_clean(self, lattice):
        report = check_query(lattice, '(select Part (= Label "root"))')
        assert report.clean

    def test_syntax_error(self, lattice):
        assert "QRY-SYNTAX" in check_query(lattice, "(select Part").rules()

    def test_unknown_message(self, lattice):
        assert "QRY-UNKNOWN-MESSAGE" in check_query(
            lattice, "(frobnicate Part)"
        ).rules()

    def test_unknown_class(self, lattice):
        assert "QRY-UNKNOWN-CLASS" in check_query(
            lattice, "(instances-of Ghost)"
        ).rules()

    def test_unknown_attribute(self, lattice):
        report = check_query(lattice, "(select Part (= Colour 3))")
        assert "QRY-UNKNOWN-ATTRIBUTE" in report.rules()

    def test_domain_mismatch(self, lattice):
        report = check_query(lattice, "(select Part (= Label 42))")
        assert "QRY-DOMAIN-MISMATCH" in {f.rule for f in report.errors}

    def test_contains_on_single_valued(self, lattice):
        report = check_query(lattice, '(select Part (contains Label "x"))')
        assert "QRY-NOT-SET" in report.rules()

    def test_make_with_unknown_attribute(self, lattice):
        report = check_query(lattice, '(make Part :Colour "red")')
        assert "QRY-UNKNOWN-ATTRIBUTE" in report.rules()

    def test_setq_bound_names_are_opaque(self, lattice):
        report = check_query(
            lattice, '(setq p (make Part :Label "x")) (delete p)'
        )
        assert report.clean


# ---------------------------------------------------------------------------
# Plane 2 — fsck on healthy databases
# ---------------------------------------------------------------------------


class TestFsckClean:
    def test_api_built_tree_is_clean(self):
        db = Database()
        build_part_tree(db, depth=3, fanout=2)
        report = fsck_database(db)
        assert report.clean
        assert report.checked == len(db)

    def test_database_method_wiring(self):
        db = Database()
        build_part_tree(db, depth=2, fanout=2)
        assert db.fsck().clean
        assert db.check_schema().errors == []

    def test_weak_dangling_is_info_only(self):
        db = Database()
        db.make_class("Doc", attributes=[AttributeSpec("V", domain="integer")])
        db.make_class("Link", attributes=[AttributeSpec("Target", domain="Doc")])
        doc = db.make("Doc")
        db.make("Link", values={"Target": doc})
        db.delete(doc)
        report = fsck_database(db)
        assert report.ok and not report.clean
        assert report.rules() == {"FSCK-DANGLING-WEAK"}


# ---------------------------------------------------------------------------
# Plane 2 — seeded corruptions, each caught with the right rule id
# ---------------------------------------------------------------------------


def _tree(depth=2, fanout=2, flavour="dependent-exclusive"):
    db = Database()
    tree = build_part_tree(db, depth=depth, fanout=fanout, flavour=flavour)
    return db, tree


class TestFsckSeededCorruption:
    def test_dangling_forward_reference(self):
        db, tree = _tree()
        victim = tree.levels[1][0]
        # Vaporize the child behind the API's back: the parent's forward
        # reference and the extent now point at nothing.
        del db._objects[victim]
        report = fsck_database(db)
        assert "FSCK-DANGLING-FORWARD" in {f.rule for f in report.errors}
        assert "FSCK-EXTENT" in report.rules()

    def test_rule1_violation(self):
        db, tree = _tree()
        child = db.peek(tree.levels[1][0])
        other = tree.levels[1][1]
        # A second dependent-exclusive parent, injected directly.
        child.add_reverse_reference(other, True, True, "SubParts")
        report = fsck_database(db)
        rules = {f.rule for f in report.errors}
        assert "FSCK-RULE1" in rules
        finding = report.by_rule("FSCK-RULE1")[0]
        assert str(tree.root) in finding.message or finding.detail

    def test_rule2_violation(self):
        db, tree = _tree()
        child = db.peek(tree.levels[1][0])
        other = tree.levels[1][1]
        # An *independent*-exclusive parent next to the dependent one.
        child.add_reverse_reference(other, False, True, "SubParts")
        report = fsck_database(db)
        assert "FSCK-RULE2" in {f.rule for f in report.errors}

    def test_rule3_violation(self):
        db, tree = _tree()
        child = db.peek(tree.levels[1][0])
        other = tree.levels[1][1]
        # A shared parent next to the exclusive one.
        child.add_reverse_reference(other, False, False, "SubParts")
        report = fsck_database(db)
        assert "FSCK-RULE3" in {f.rule for f in report.errors}

    def test_missing_reverse_reference(self):
        db, tree = _tree()
        child = db.peek(tree.levels[1][0])
        child.remove_reverse_reference(tree.root, "SubParts")
        report = fsck_database(db)
        assert "FSCK-MISSING-REVERSE" in {f.rule for f in report.errors}

    def test_stale_reverse_reference(self):
        db, tree = _tree()
        leaf_a, leaf_b = tree.levels[2][0], tree.levels[2][1]
        instance = db.peek(leaf_a)
        real_parent = instance.reverse_references[0].parent
        instance.remove_reverse_reference(real_parent, "SubParts")
        # Claim a parent that holds no such forward reference.
        instance.add_reverse_reference(leaf_b, True, True, "SubParts")
        report = fsck_database(db)
        assert "FSCK-STALE-REVERSE" in {f.rule for f in report.errors}

    def test_flag_mismatch(self):
        db, tree = _tree()
        child = db.peek(tree.levels[1][0])
        ref = child.find_reverse_reference(tree.root, "SubParts")
        child.replace_reverse_reference(ref, ref.with_flags(dependent=False))
        report = fsck_database(db)
        assert "FSCK-FLAG-MISMATCH" in {f.rule for f in report.errors}

    def test_unknown_class(self):
        db, tree = _tree()
        db.peek(tree.levels[2][3]).class_name = "Ghost"
        report = fsck_database(db)
        assert "FSCK-UNKNOWN-CLASS" in {f.rule for f in report.errors}

    def test_extent_out_of_sync(self):
        db, tree = _tree()
        db._extents["Part"].discard(tree.levels[2][0])
        report = fsck_database(db)
        assert "FSCK-EXTENT" in {f.rule for f in report.errors}

    def test_dangling_reverse_reference(self):
        db, tree = _tree(flavour="independent-shared")
        parent_uid = tree.levels[1][0]
        # Remove the parent object itself but leave the child's reverse ref.
        child = db.peek(tree.levels[2][0])
        assert any(r.parent == parent_uid for r in child.reverse_references)
        db._extents["Part"].discard(parent_uid)
        del db._objects[parent_uid]
        report = fsck_database(db)
        assert "FSCK-DANGLING-REVERSE" in {f.rule for f in report.errors}


class TestFsckVersionsAndAuth:
    def _versioned(self):
        db = Database()
        manager = VersionManager(db)
        db.make_class("Design", versionable=True,
                      attributes=[AttributeSpec("Rev", domain="integer")])
        generic, v1 = manager.create("Design", values={"Rev": 1})
        v2 = manager.derive(v1).new_version
        return db, manager, generic, v1, v2

    def test_manager_registers_itself(self):
        db, manager, *_ = self._versioned()
        assert db.versions is manager

    def test_clean_version_store(self):
        db, *_ = self._versioned()
        assert fsck_database(db).clean

    def test_cyclic_derivation(self):
        db, manager, generic, v1, v2 = self._versioned()
        info = manager.registry.generic_info(generic)
        info.derived_from[v1] = v2  # v1 <- v2 <- v1
        report = fsck_database(db)
        assert "FSCK-VERSION-CYCLE" in {f.rule for f in report.errors}

    def test_dangling_version(self):
        db, manager, generic, v1, v2 = self._versioned()
        db._extents["Design"].discard(v2)
        del db._objects[v2]
        report = fsck_database(db)
        assert "FSCK-VERSION-DANGLING" in {f.rule for f in report.errors}

    def test_refcount_drift(self):
        db, manager, generic, v1, v2 = self._versioned()
        db.make_class("Product", attributes=[
            AttributeSpec("Core", domain="Design", composite=True,
                          exclusive=True, dependent=False),
        ])
        db.make("Product", values={"Core": generic})
        assert fsck_database(db).clean
        key = next(iter(manager._counts))
        manager._counts[key] += 1  # phantom reference
        report = fsck_database(db)
        assert "FSCK-REFCOUNT" in {f.rule for f in report.errors}

    def test_auth_dangling_grant(self):
        db = Database()
        db.make_class("Doc", attributes=[AttributeSpec("V", domain="integer")])
        doc = db.make("Doc")
        engine = AuthorizationEngine(db)
        assert db.auth_engine is engine
        engine.grant("alice", "sW", on_instance=doc)
        assert fsck_database(db).clean
        db.delete(doc)
        report = fsck_database(db)
        assert "FSCK-AUTH-DANGLING" in report.rules()


# ---------------------------------------------------------------------------
# Property: any API-built database passes fsck clean
# ---------------------------------------------------------------------------


class TestFsckProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_api_built_databases_pass_fsck(self, data):
        db = Database()
        define_part_schema(db, flavour=data.draw(st.sampled_from(
            ["dependent-exclusive", "independent-exclusive",
             "dependent-shared", "independent-shared"]
        )))
        uids = [db.make("Part", values={"Label": "root"})]
        for step in range(data.draw(st.integers(min_value=1, max_value=25))):
            action = data.draw(st.sampled_from(["make", "link", "delete"]))
            if action == "make":
                parent = data.draw(st.sampled_from(uids))
                if db.exists(parent):
                    uids.append(db.make(
                        "Part", values={"Label": f"n{step}"},
                        parents=[(parent, "SubParts")],
                    ))
            elif action == "link":
                child = db.make("Part", values={"Label": f"n{step}"})
                parent = data.draw(st.sampled_from(uids))
                if db.exists(parent):
                    try:
                        db.make_part_of(child, parent, "SubParts")
                    except Exception:
                        pass
                uids.append(child)
            else:
                victim = data.draw(st.sampled_from(uids))
                if db.exists(victim):
                    db.delete(victim)
        report = fsck_database(db)
        assert report.clean, report.render()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_self_test_passes(self, capsys):
        assert check_main(["--self-test"]) == 0
        out = capsys.readouterr().out
        assert "all seed scenarios pass" in out

    def test_fsck_and_schema_on_durable_store(self, tmp_path, capsys):
        directory = tmp_path / "store"
        db = DurableDatabase(directory)
        build_part_tree(db, depth=2, fanout=2)
        db.close()
        assert check_main(["fsck", str(directory)]) == 0
        capsys.readouterr()
        assert check_main(["--json", "schema", str(directory)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plane"] == "schema"
        assert payload["counts"]["error"] == 0

    def test_query_command(self, tmp_path):
        directory = tmp_path / "store"
        db = DurableDatabase(directory)
        build_part_tree(db, depth=1, fanout=1)
        db.close()
        good = tmp_path / "good.sx"
        good.write_text('(select Part (= Label "root"))')
        bad = tmp_path / "bad.sx"
        bad.write_text("(select Part (= Colour 3))")
        assert check_main(["query", str(directory), str(good)]) == 0
        assert check_main(["query", str(directory), str(bad)]) == 1

    def test_missing_store_is_usage_error(self, tmp_path):
        code = check_main(["fsck", str(tmp_path / "nope")])
        assert code == 2


# ---------------------------------------------------------------------------
# Server op
# ---------------------------------------------------------------------------


class TestServerCheckOp:
    def test_check_op_reports_both_planes(self):
        from repro.server import Client, ServerThread

        db = Database()
        build_part_tree(db, depth=2, fanout=2)
        with ServerThread(database=db) as handle:
            with Client(port=handle.port, timeout=20.0) as client:
                result = client.check()
                assert result["ok"] is True
                assert result["fsck"]["counts"]["error"] == 0
                assert result["schema"]["ok"] in (True, False)
                fsck_only = client.check("fsck")
                assert "schema" not in fsck_only
