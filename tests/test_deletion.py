"""Tests for the Deletion Rule (paper 2.2)."""

import pytest

from repro import AttributeSpec, Database, SetOf
from repro.core.deletion import would_delete


def _single_ref_db(dependent, exclusive):
    database = Database()
    database.make_class("Child")
    database.make_class("Parent", attributes=[
        AttributeSpec("kid", domain="Child", composite=True,
                      exclusive=exclusive, dependent=dependent),
    ])
    child = database.make("Child")
    parent = database.make("Parent", values={"kid": child})
    return database, parent, child


class TestFourConditions:
    """del(O') against each of the four composite reference types."""

    def test_independent_exclusive_preserves(self):
        database, parent, child = _single_ref_db(dependent=False, exclusive=True)
        report = database.delete(parent)
        assert report.deleted == [parent]
        assert database.exists(child)
        assert child in report.preserved_independent
        # The survivor is fully detached and reusable.
        assert database.resolve(child).reverse_references == []

    def test_dependent_exclusive_cascades(self):
        database, parent, child = _single_ref_db(dependent=True, exclusive=True)
        report = database.delete(parent)
        assert set(report.deleted) == {parent, child}
        assert not database.exists(child)

    def test_independent_shared_preserves(self):
        database, parent, child = _single_ref_db(dependent=False, exclusive=False)
        report = database.delete(parent)
        assert database.exists(child)
        assert child in report.preserved_independent

    def test_dependent_shared_last_parent_cascades(self):
        database, parent, child = _single_ref_db(dependent=True, exclusive=False)
        report = database.delete(parent)
        assert not database.exists(child)
        assert child in report.deleted

    def test_dependent_shared_survives_other_parents(self, db):
        db.make_class("Child")
        db.make_class("Parent", attributes=[
            AttributeSpec("kids", domain=SetOf("Child"), composite=True,
                          exclusive=False, dependent=True),
        ])
        child = db.make("Child")
        p1 = db.make("Parent", values={"kids": [child]})
        p2 = db.make("Parent", values={"kids": [child]})
        report = db.delete(p1)
        assert db.exists(child)
        assert child in report.preserved_shared
        # DS(child) lost p1: "otherwise DS(O) = DS(O) - O'".
        assert db.resolve(child).ds_parents() == [p2]
        # Deleting the last dependent parent now cascades.
        db.delete(p2)
        assert not db.exists(child)


class TestCondition3Transitivity:
    def test_cascade_through_intermediate(self, db):
        # del(root) => del(mid) => del(leaf), all dependent exclusive.
        from repro.workloads.parts import build_part_tree

        tree = build_part_tree(db, depth=3, fanout=2)
        report = db.delete(tree.root)
        assert len(report.deleted) == tree.size
        assert len(db) == 0

    def test_shared_child_of_two_dying_parents_dies(self, db):
        # Both DS parents die in the same cascade -> the child dies too.
        db.make_class("Leaf")
        db.make_class("Mid", attributes=[
            AttributeSpec("leaves", domain=SetOf("Leaf"), composite=True,
                          exclusive=False, dependent=True),
        ])
        db.make_class("Top", attributes=[
            AttributeSpec("mids", domain=SetOf("Mid"), composite=True,
                          exclusive=True, dependent=True),
        ])
        leaf = db.make("Leaf")
        m1 = db.make("Mid", values={"leaves": [leaf]})
        m2 = db.make("Mid", values={"leaves": [leaf]})
        top = db.make("Top", values={"mids": [m1, m2]})
        report = db.delete(top)
        assert set(report.deleted) == {top, m1, m2, leaf}

    def test_shared_child_survives_when_one_parent_outside_cascade(self, db):
        db.make_class("Leaf")
        db.make_class("Mid", attributes=[
            AttributeSpec("leaves", domain=SetOf("Leaf"), composite=True,
                          exclusive=False, dependent=True),
        ])
        db.make_class("Top", attributes=[
            AttributeSpec("mids", domain=SetOf("Mid"), composite=True,
                          exclusive=True, dependent=True),
        ])
        leaf = db.make("Leaf")
        m1 = db.make("Mid", values={"leaves": [leaf]})
        m2 = db.make("Mid", values={"leaves": [leaf]})
        top = db.make("Top", values={"mids": [m1]})  # m2 independent of top
        db.delete(top)
        assert db.exists(leaf) and db.exists(m2)
        db.validate()


class TestDocumentExample:
    """The paper's Example 2 semantics, end to end."""

    def test_shared_section_survives_first_deletion(self, document_db):
        database, h = document_db
        database.delete(h["doc_a"])
        # Shared section still held by doc_b; private section dies with A.
        assert database.exists(h["shared_section"])
        assert not database.exists(h["private_section"])
        assert not database.exists(h["p_private"])
        # Annotations are dependent exclusive: gone.
        assert not database.exists(h["note"])
        # Figures are independent: preserved.
        assert database.exists(h["image"])
        database.validate()

    def test_paragraph_needs_some_document(self, document_db):
        database, h = document_db
        database.delete(h["doc_a"])
        database.delete(h["doc_b"])
        # "For a paragraph to exist, there must be at least one section
        # containing it and thus a document containing it."
        assert not database.exists(h["shared_section"])
        assert not database.exists(h["p_shared"])
        assert database.exists(h["image"])


class TestDeletionHygiene:
    def test_surviving_parent_forward_ref_cleared(self, db):
        # A dying shared component is unlinked from surviving parents.
        db.make_class("Child")
        db.make_class("Anchor", attributes=[
            AttributeSpec("kids", domain=SetOf("Child"), composite=True,
                          exclusive=False, dependent=False),
        ])
        db.make_class("Owner", attributes=[
            AttributeSpec("kids", domain=SetOf("Child"), composite=True,
                          exclusive=False, dependent=True),
        ])
        child = db.make("Child")
        anchor = db.make("Anchor", values={"kids": [child]})
        owner = db.make("Owner", values={"kids": [child]})
        report = db.delete(owner)  # last DS parent -> child dies
        assert not db.exists(child)
        assert db.value(anchor, "kids") == []
        assert anchor in report.unlinked_parents
        db.validate()

    def test_deleting_component_unlinks_parent(self, vehicle_db):
        database, v = vehicle_db
        database.delete(v.body)
        assert database.value(v.vehicle, "Body") is None
        database.validate()

    def test_delete_idempotence_guard(self, vehicle_db):
        database, v = vehicle_db
        database.delete(v.vehicle)
        with pytest.raises(Exception):
            database.delete(v.vehicle)


class TestWouldDelete:
    def test_matches_engine_on_tree(self, db):
        from repro.workloads.parts import build_part_tree

        tree = build_part_tree(db, depth=2, fanout=3)
        predicted = would_delete(db, tree.root)
        report = db.delete(tree.root)
        assert predicted == set(report.deleted)

    def test_matches_engine_on_documents(self, document_db):
        database, h = document_db
        predicted = would_delete(database, h["doc_a"])
        report = database.delete(h["doc_a"])
        assert predicted == set(report.deleted)

    def test_prediction_does_not_mutate(self, document_db):
        database, h = document_db
        before = len(database)
        would_delete(database, h["doc_a"])
        assert len(database) == before
        database.validate()
