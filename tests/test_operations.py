"""Tests for the Section 3 operations (components-of, parents-of, ...)."""


from repro import AttributeSpec, SetOf
from repro.core.operations import find_dangling_references, roots_of


class TestComponentsOf:
    def test_vehicle_components(self, vehicle_db):
        database, v = vehicle_db
        components = database.components_of(v.vehicle)
        assert set(components) == {v.body, v.drivetrain, *v.tires}

    def test_class_filter(self, vehicle_db):
        database, v = vehicle_db
        only_tires = database.components_of(v.vehicle, classes=["AutoTires"])
        assert set(only_tires) == set(v.tires)

    def test_level_limit(self, db):
        from repro.workloads.parts import build_part_tree

        tree = build_part_tree(db, depth=3, fanout=2)
        level1 = db.components_of(tree.root, level=1)
        assert set(level1) == set(tree.levels[1])
        level2 = db.components_of(tree.root, level=2)
        assert set(level2) == set(tree.levels[1]) | set(tree.levels[2])
        everything = db.components_of(tree.root)
        assert len(everything) == tree.size - 1

    def test_level_is_shortest_path(self, db):
        # An object reachable at levels 1 and 2 counts as level 1.
        db.make_class("N")
        db.make_class("M", attributes=[
            AttributeSpec("kids", domain=SetOf("N"), composite=True,
                          exclusive=False, dependent=False),
        ])
        db.make_class("Top", attributes=[
            AttributeSpec("ms", domain=SetOf("M"), composite=True,
                          exclusive=False, dependent=False),
            AttributeSpec("ns", domain=SetOf("N"), composite=True,
                          exclusive=False, dependent=False),
        ])
        n = db.make("N")
        m = db.make("M", values={"kids": [n]})
        top = db.make("Top", values={"ms": [m], "ns": [n]})
        assert n in db.components_of(top, level=1)

    def test_exclusive_shared_filters(self, document_db):
        database, h = document_db
        exclusive_only = database.components_of(h["doc_a"], exclusive=True)
        shared_only = database.components_of(h["doc_a"], shared=True)
        assert h["note"] in exclusive_only and h["note"] not in shared_only
        assert h["shared_section"] in shared_only
        assert h["shared_section"] not in exclusive_only
        # Both filters True -> union (everything).
        both = database.components_of(h["doc_a"], exclusive=True, shared=True)
        assert set(both) == set(database.components_of(h["doc_a"]))

    def test_children_of(self, document_db):
        database, h = document_db
        children = database.children_of(h["doc_a"])
        assert h["shared_section"] in children
        assert h["p_shared"] not in children  # level 2

    def test_weak_refs_not_traversed(self, db):
        db.make_class("Leaf")
        db.make_class("Holder", attributes=[
            AttributeSpec("part", domain="Leaf", composite=True),
            AttributeSpec("see", domain="Leaf"),
        ])
        l1, l2 = db.make("Leaf"), db.make("Leaf")
        h = db.make("Holder", values={"part": l1, "see": l2})
        assert db.components_of(h) == [l1]


class TestParentsAndAncestors:
    def test_parents_of_shared(self, document_db):
        database, h = document_db
        parents = database.parents_of(h["shared_section"])
        assert set(parents) == {h["doc_a"], h["doc_b"]}

    def test_parents_filters(self, document_db):
        database, h = document_db
        assert database.parents_of(h["note"], exclusive=True) == [h["doc_a"]]
        assert database.parents_of(h["note"], shared=True) == []

    def test_ancestors(self, document_db):
        database, h = document_db
        ancestors = database.ancestors_of(h["p_shared"])
        assert set(ancestors) == {h["shared_section"], h["doc_a"], h["doc_b"]}

    def test_ancestors_class_filter(self, document_db):
        database, h = document_db
        docs = database.ancestors_of(h["p_shared"], classes=["Document"])
        assert set(docs) == {h["doc_a"], h["doc_b"]}

    def test_parents_of_root_empty(self, document_db):
        database, h = document_db
        assert database.parents_of(h["doc_a"]) == []


class TestPredicates:
    def test_child_of(self, document_db):
        database, h = document_db
        assert database.child_of(h["shared_section"], h["doc_a"])
        assert not database.child_of(h["p_shared"], h["doc_a"])

    def test_component_of_transitive(self, document_db):
        database, h = document_db
        assert database.component_of(h["p_shared"], h["doc_a"])
        assert database.component_of(h["p_shared"], h["doc_b"])
        assert not database.component_of(h["doc_a"], h["p_shared"])

    def test_exclusive_component_of(self, document_db):
        database, h = document_db
        assert database.exclusive_component_of(h["note"], h["doc_a"])
        assert not database.exclusive_component_of(h["shared_section"], h["doc_a"])

    def test_shared_component_of(self, document_db):
        database, h = document_db
        assert database.shared_component_of(h["shared_section"], h["doc_a"])
        assert not database.shared_component_of(h["note"], h["doc_a"])
        # Not a component at all -> False for both.
        assert not database.shared_component_of(h["doc_b"], h["doc_a"])
        assert not database.exclusive_component_of(h["doc_b"], h["doc_a"])

    def test_paper_equivalence_shared_equals_component_and_not_exclusive(
        self, document_db
    ):
        # Paper 3.2: component-of + negative exclusive-component-of in one
        # transaction has the same effect as shared-component-of.
        database, h = document_db
        for uid in (h["shared_section"], h["note"], h["p_shared"]):
            direct = database.shared_component_of(uid, h["doc_a"])
            derived = database.component_of(uid, h["doc_a"]) and not (
                database.exclusive_component_of(uid, h["doc_a"])
            )
            assert direct == derived

    def test_class_predicates_via_database(self, document_db):
        database, _ = document_db
        assert database.compositep("Document")
        assert database.compositep("Document", "Sections")
        assert not database.compositep("Document", "Title")
        assert database.exclusive_compositep("Document", "Annotations")
        assert database.shared_compositep("Document", "Sections")
        assert database.dependent_compositep("Document", "Sections")
        assert not database.dependent_compositep("Document", "Figures")


class TestRootsOf:
    def test_root_of_itself(self, document_db):
        database, h = document_db
        assert database.roots_of(h["doc_a"]) == [h["doc_a"]]

    def test_shared_component_has_two_roots(self, document_db):
        database, h = document_db
        roots = database.roots_of(h["p_shared"])
        assert set(roots) == {h["doc_a"], h["doc_b"]}

    def test_exclusive_component_single_root(self, vehicle_db):
        database, v = vehicle_db
        assert database.roots_of(v.body) == [v.vehicle]

    def test_cyclic_parents_fall_back_to_self(self, db):
        db.make_class("Node", attributes=[
            AttributeSpec("next", domain="Node", composite=True,
                          exclusive=False, dependent=False),
        ])
        a = db.make("Node")
        b = db.make("Node", values={"next": a})
        db.set_value(a, "next", b)
        assert roots_of(db, a) == [a]


class TestDanglingReferences:
    def test_weak_reference_dangles_after_delete(self, db):
        db.make_class("Leaf")
        db.make_class("Holder", attributes=[AttributeSpec("see", domain="Leaf")])
        leaf = db.make("Leaf")
        holder = db.make("Holder", values={"see": leaf})
        db.delete(leaf)
        dangles = find_dangling_references(db)
        assert (holder, "see", leaf) in dangles

    def test_clean_database_has_no_dangles(self, document_db):
        database, _ = document_db
        assert find_dangling_references(database) == []
