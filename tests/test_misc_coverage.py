"""Coverage sweep: error paths and less-travelled branches."""

import pytest

from repro import AttributeSpec, Database, SetOf
from repro.query import Interpreter, QuerySyntaxError
from repro.query.index import AttributeIndex, _hashable


class TestInterpreterErrorPaths:
    @pytest.fixture
    def interp(self):
        interpreter = Interpreter()
        interpreter.run("(make-class 'Thing :attributes '((x :domain integer)))")
        return interpreter

    def test_bad_attribute_spec(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run("(make-class 'Bad :attributes '(42))")

    def test_bad_attribute_name(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run('(make-class \'Bad :attributes \'(("str" :domain integer)))')

    def test_bad_domain(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run("(make-class 'Bad :attributes '((a :domain (weird x y))))")

    def test_keyword_missing_value(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run("(make Thing :x)")

    def test_bad_parent_pair(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run("(make Thing :parent (oops))")

    def test_setq_needs_symbol(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run("(setq 42 1)")

    def test_make_class_needs_one_name(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run("(make-class 'A 'B)")

    def test_apply_non_symbol(self, interp):
        with pytest.raises(QuerySyntaxError):
            interp.run("((1 2) 3)")

    def test_empty_form_is_nil(self, interp):
        assert interp.run_one("()") is None

    def test_bare_atom_evaluates(self, interp):
        assert interp.run_one("42") == 42
        assert interp.run_one('"text"') == "text"

    def test_quoted_form_returned_raw(self, interp):
        from repro.query.sexpr import Symbol

        assert interp.run_one("'(a b)") == [Symbol("a"), Symbol("b")]

    def test_bad_predicate_operator(self, interp):
        from repro.query.interpreter import QueryEvaluationError

        interp.run("(setq t1 (make Thing))")
        with pytest.raises(QueryEvaluationError):
            interp.run("(select Thing (between x 1 2))")

    def test_malformed_predicate(self, interp):
        interp.run("(make Thing)")  # a non-empty extent forces evaluation
        with pytest.raises(QuerySyntaxError):
            interp.run("(select Thing 42)")


class TestIndexInternals:
    def test_hashable_on_lists(self):
        assert _hashable([1, [2, 3]]) == (1, (2, 3))

    def test_hashable_on_unhashable(self):
        class Weird:
            __hash__ = None

        assert _hashable(Weird()) is None

    def test_index_len_and_rebuild(self):
        database = Database()
        database.make_class("T", attributes=[AttributeSpec("x", domain="integer")])
        for i in range(5):
            database.make("T", values={"x": i % 2})
        index = AttributeIndex(database, "T", "x")
        assert len(index) == 5
        assert index.rebuilds == 1
        index.rebuild()
        assert index.rebuilds == 2
        assert len(index.lookup(0)) == 3

    def test_index_ignores_other_classes(self):
        database = Database()
        database.make_class("A", attributes=[AttributeSpec("x", domain="integer")])
        database.make_class("B", attributes=[AttributeSpec("x", domain="integer")])
        database.make("A", values={"x": 1})
        database.make("B", values={"x": 1})
        index = AttributeIndex(database, "A", "x")
        assert len(index.lookup(1)) == 1


class TestExtents:
    def test_extents_track_create_and_delete(self, db):
        db.make_class("Thing")
        uids = [db.make("Thing") for _ in range(3)]
        assert len(db.instances_of("Thing")) == 3
        db.delete(uids[0])
        assert len(db.instances_of("Thing")) == 2

    def test_extents_order_by_uid(self, db):
        db.make_class("Thing")
        uids = [db.make("Thing") for _ in range(4)]
        listed = [inst.uid for inst in db.instances_of("Thing")]
        assert listed == uids

    def test_extents_rollback_on_failed_make(self, db):
        from repro import DomainError

        db.make_class("Thing", attributes=[
            AttributeSpec("n", domain="integer"),
        ])
        with pytest.raises(DomainError):
            db.make("Thing", values={"n": "nope"})
        assert db.instances_of("Thing") == []

    def test_extents_respect_subclasses(self, db):
        db.make_class("Base")
        db.make_class("Derived", superclasses=["Base"])
        base = db.make("Base")
        derived = db.make("Derived")
        assert {i.uid for i in db.instances_of("Base")} == {base, derived}
        assert {i.uid for i in db.instances_of("Base",
                                               include_subclasses=False)} == {base}


class TestJournalEdgeCases:
    def test_snapshot_with_deep_class_hierarchy(self, tmp_path):
        from repro.storage.durable import DurableDatabase

        db = DurableDatabase(tmp_path / "deep")
        db.make_class("A")
        db.make_class("B", superclasses=["A"])
        db.make_class("C", superclasses=["B", "A"])
        db.make("C")
        db.close()
        recovered = DurableDatabase.open(tmp_path / "deep")
        assert recovered.lattice.is_subclass("C", "A")
        assert len(recovered.instances_of("A")) == 1
        recovered.close()

    def test_bad_snapshot_magic_rejected(self, tmp_path):
        from repro.errors import StorageError
        from repro.storage.durable import DurableDatabase
        from repro.storage.journal import SNAPSHOT_NAME

        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / SNAPSHOT_NAME).write_bytes(b"GARBAGE-FILE")
        with pytest.raises(StorageError):
            DurableDatabase.open(directory)

    def test_set_of_domain_round_trips_through_snapshot(self, tmp_path):
        from repro.storage.durable import DurableDatabase

        db = DurableDatabase(tmp_path / "sets")
        db.make_class("Leaf")
        db.make_class("Box", attributes=[
            AttributeSpec("l", domain=SetOf("Leaf"), composite=True,
                          exclusive=False, dependent=False),
        ])
        db.checkpoint()
        db.close()
        recovered = DurableDatabase.open(tmp_path / "sets")
        spec = recovered.classdef("Box").attribute("l")
        assert spec.is_set and spec.domain_class == "Leaf"
        assert spec.is_shared_composite
        recovered.close()


class TestBenchTables:
    def test_bool_rendering(self):
        from repro.bench import format_table

        text = format_table([{"ok": True, "bad": False}])
        assert "yes" in text and "no" in text

    def test_missing_column_blank(self):
        from repro.bench import format_table

        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "b" in text


class TestBenchReport:
    def test_render_report(self, tmp_path):
        import json

        from repro.bench.report import render_report, render_report_file

        records = [
            {"experiment_id": "B1", "description": "demo",
             "rows": [{"n": 10, "ok": True, "x": 1.23456}],
             "conclusions": ["it works"]},
            {"experiment_id": "F6", "description": "big matrix",
             "rows": [{"cell": i} for i in range(64)],
             "conclusions": []},
        ]
        text = render_report(records, title="T")
        assert "# T" in text and "## B1 — demo" in text
        assert "| n | ok | x |" in text and "yes" in text
        assert "64 rows" in text  # big tables summarized
        path = tmp_path / "r.json"
        path.write_text(json.dumps(records))
        assert render_report_file(path) .startswith("# Benchmark report")

    def test_cli_main(self, tmp_path, capsys):
        import json

        from repro.bench.report import main

        path = tmp_path / "r.json"
        path.write_text(json.dumps([
            {"experiment_id": "X", "description": "d", "rows": [],
             "conclusions": []},
        ]))
        assert main([str(path)]) == 0
        assert "## X — d" in capsys.readouterr().out
        assert main([]) == 1
