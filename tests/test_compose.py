"""Tests for whole-composite operations ([KIM87a]): copy, move, equality,
dismantle."""

import pytest

from repro import AttributeSpec, Database, SetOf, TopologyError
from repro.core.compose import (
    composite_size,
    composites_equal,
    copy_composite,
    dismantle,
    move_component,
)


@pytest.fixture
def mixed_db():
    database = Database()
    database.make_class("Leaf", attributes=[
        AttributeSpec("Tag", domain="string"),
    ])
    database.make_class("Shared", attributes=[
        AttributeSpec("Name", domain="string"),
    ])
    database.make_class("Box", attributes=[
        AttributeSpec("Label", domain="string"),
        AttributeSpec("Own", domain=SetOf("Leaf"), composite=True,
                      exclusive=True, dependent=True),
        AttributeSpec("Borrow", domain=SetOf("Shared"), composite=True,
                      exclusive=False, dependent=False),
        AttributeSpec("See", domain="Leaf"),
    ])
    return database


def _build(database):
    leaves = [database.make("Leaf", values={"Tag": f"l{i}"}) for i in range(3)]
    shared = database.make("Shared", values={"Name": "lib"})
    weak_target = database.make("Leaf", values={"Tag": "weak"})
    box = database.make("Box", values={
        "Label": "original",
        "Own": leaves,
        "Borrow": [shared],
        "See": weak_target,
    })
    return box, leaves, shared, weak_target


class TestCopy:
    def test_exclusive_components_copied(self, mixed_db):
        box, leaves, shared, weak = _build(mixed_db)
        clone = copy_composite(mixed_db, box)
        clone_leaves = mixed_db.value(clone, "Own")
        assert len(clone_leaves) == 3
        assert not set(clone_leaves) & set(leaves)  # fresh objects
        assert [mixed_db.value(u, "Tag") for u in clone_leaves] == \
               [mixed_db.value(u, "Tag") for u in leaves]
        mixed_db.validate()

    def test_shared_components_shared(self, mixed_db):
        box, leaves, shared, weak = _build(mixed_db)
        clone = copy_composite(mixed_db, box)
        assert mixed_db.value(clone, "Borrow") == [shared]
        assert len(mixed_db.parents_of(shared)) == 2

    def test_weak_references_kept(self, mixed_db):
        box, leaves, shared, weak = _build(mixed_db)
        clone = copy_composite(mixed_db, box)
        assert mixed_db.value(clone, "See") == weak

    def test_overrides(self, mixed_db):
        box, *_ = _build(mixed_db)
        clone = copy_composite(mixed_db, box, overrides={"Label": "copy"})
        assert mixed_db.value(clone, "Label") == "copy"
        assert mixed_db.value(box, "Label") == "original"

    def test_copy_is_structurally_equal(self, mixed_db):
        box, *_ = _build(mixed_db)
        clone = copy_composite(mixed_db, box)
        assert composites_equal(mixed_db, box, clone)

    def test_deep_copy_multilevel(self, mixed_db):
        mixed_db.make_class("Crate", attributes=[
            AttributeSpec("Boxes", domain=SetOf("Box"), composite=True,
                          exclusive=True, dependent=True),
        ])
        box, leaves, *_ = _build(mixed_db)
        crate = mixed_db.make("Crate", values={"Boxes": [box]})
        clone = copy_composite(mixed_db, crate)
        assert composite_size(mixed_db, clone) == composite_size(mixed_db, crate)
        inner = mixed_db.value(clone, "Boxes")[0]
        assert inner != box
        assert not set(mixed_db.value(inner, "Own")) & set(leaves)

    def test_copy_preserves_exclusive_cycles(self, mixed_db):
        mixed_db.make_class("Ring", attributes=[
            AttributeSpec("next", domain="Ring", composite=True,
                          exclusive=True, dependent=False),
        ])
        a = mixed_db.make("Ring")
        b = mixed_db.make("Ring", values={"next": a})
        mixed_db.set_value(a, "next", b)
        clone = copy_composite(mixed_db, a)
        other = mixed_db.value(clone, "next")
        assert mixed_db.value(other, "next") == clone  # cycle preserved
        assert clone not in (a, b) and other not in (a, b)


class TestMove:
    def test_move_between_parents(self, mixed_db):
        box1, leaves, *_ = _build(mixed_db)
        box2 = mixed_db.make("Box")
        move_component(mixed_db, leaves[0], box1, box2)
        assert leaves[0] in mixed_db.value(box2, "Own")
        assert leaves[0] not in mixed_db.value(box1, "Own")
        assert mixed_db.parents_of(leaves[0]) == [box2]
        mixed_db.validate()

    def test_move_infers_attribute(self, mixed_db):
        box1, leaves, *_ = _build(mixed_db)
        box2 = mixed_db.make("Box")
        used = move_component(mixed_db, leaves[1], box1, box2)
        assert used == "Own"

    def test_move_not_a_component(self, mixed_db):
        box1, *_ = _build(mixed_db)
        box2 = mixed_db.make("Box")
        stray = mixed_db.make("Leaf")
        with pytest.raises(TopologyError):
            move_component(mixed_db, stray, box1, box2, attribute="Own")

    def test_failed_move_restores_link(self, mixed_db):
        box1, leaves, *_ = _build(mixed_db)
        box2 = mixed_db.make("Box")
        with pytest.raises(Exception):
            move_component(mixed_db, leaves[0], box1, box2,
                           to_attribute="Nope")
        assert leaves[0] in mixed_db.value(box1, "Own")
        mixed_db.validate()


class TestEquality:
    def test_identical_is_equal(self, mixed_db):
        box, *_ = _build(mixed_db)
        assert composites_equal(mixed_db, box, box)

    def test_value_difference_detected(self, mixed_db):
        box, *_ = _build(mixed_db)
        clone = copy_composite(mixed_db, box)
        leaf = mixed_db.value(clone, "Own")[0]
        mixed_db.set_value(leaf, "Tag", "mutated")
        assert not composites_equal(mixed_db, box, clone)

    def test_structure_difference_detected(self, mixed_db):
        box, *_ = _build(mixed_db)
        clone = copy_composite(mixed_db, box)
        extra = mixed_db.make("Leaf", values={"Tag": "extra"})
        mixed_db.insert_into(clone, "Own", extra)
        assert not composites_equal(mixed_db, box, clone)

    def test_sharing_difference_detected(self, mixed_db):
        box, leaves, shared, weak = _build(mixed_db)
        clone = copy_composite(mixed_db, box)
        other_shared = mixed_db.make("Shared", values={"Name": "lib"})
        mixed_db.remove_from(clone, "Borrow", shared)
        mixed_db.insert_into(clone, "Borrow", other_shared)
        # Same values, but different *sharing* — not structurally equal.
        assert not composites_equal(mixed_db, box, clone)

    def test_set_order_irrelevant_for_exclusive(self, mixed_db):
        database = mixed_db
        l1 = database.make("Leaf", values={"Tag": "x"})
        l2 = database.make("Leaf", values={"Tag": "y"})
        box_a = database.make("Box", values={"Own": [l1, l2]})
        m1 = database.make("Leaf", values={"Tag": "y"})
        m2 = database.make("Leaf", values={"Tag": "x"})
        box_b = database.make("Box", values={"Own": [m1, m2]})
        assert composites_equal(database, box_a, box_b)

    def test_different_classes_unequal(self, mixed_db):
        box, *_ = _build(mixed_db)
        leaf = mixed_db.make("Leaf")
        assert not composites_equal(mixed_db, box, leaf)

    def test_cyclic_composites_compare(self, mixed_db):
        mixed_db.make_class("Ring", attributes=[
            AttributeSpec("next", domain="Ring", composite=True,
                          exclusive=True, dependent=False),
        ])
        a = mixed_db.make("Ring")
        b = mixed_db.make("Ring", values={"next": a})
        mixed_db.set_value(a, "next", b)
        clone = copy_composite(mixed_db, a)
        assert composites_equal(mixed_db, a, clone)


class TestDismantle:
    def test_detaches_everything(self, mixed_db):
        box, leaves, shared, weak = _build(mixed_db)
        detached = dismantle(mixed_db, box)
        assert set(detached) == set(leaves) | {shared}
        assert mixed_db.components_of(box) == []
        for leaf in leaves:
            assert mixed_db.exists(leaf)          # never deletes
            assert mixed_db.parents_of(leaf) == []
        assert mixed_db.value(box, "See") == weak  # weak refs untouched
        mixed_db.validate()

    def test_dismantled_parts_reusable(self, mixed_db):
        box, leaves, *_ = _build(mixed_db)
        dismantle(mixed_db, box)
        other = mixed_db.make("Box", values={"Own": leaves})
        assert set(mixed_db.value(other, "Own")) == set(leaves)
