"""Tests for the storage substrate: serializer, pages, buffer pool,
segments, object store, clustering."""

import pytest

from repro import AttributeSpec, Database, SetOf
from repro.core.identity import UID
from repro.core.instance import Instance
from repro.errors import PageFullError, SerializationError, UnknownObjectError
from repro.storage.buffer import BufferPool, PageFile
from repro.storage.clustering import ClusteringPolicy, shared_segment
from repro.storage.page import Page
from repro.storage.serializer import decode_instance, encode_instance
from repro.storage.store import ObjectStore


class TestSerializer:
    def _roundtrip(self, instance):
        return decode_instance(encode_instance(instance))

    def test_values_roundtrip(self):
        original = Instance(UID(5, "C"), "C", {
            "i": 42, "f": 3.25, "s": "hello", "b": True, "n": None,
            "neg": -7, "list": [1, "two", None, UID(9, "D")],
        }, change_count=3)
        restored = self._roundtrip(original)
        assert restored.uid == original.uid
        assert restored.class_name == "C"
        assert restored.values == original.values
        assert restored.change_count == 3

    def test_reverse_references_roundtrip(self):
        original = Instance(UID(1, "C"), "C")
        original.add_reverse_reference(UID(2, "P"), True, False, "kids")
        original.add_reverse_reference(UID(3, "Q"), False, True, "main")
        restored = self._roundtrip(original)
        assert restored.reverse_references == original.reverse_references

    def test_uid_roundtrip_preserves_class(self):
        original = Instance(UID(1, "C"), "C", {"ref": UID(77, "Other")})
        restored = self._roundtrip(original)
        assert restored.values["ref"].class_name == "Other"

    def test_unicode_strings(self):
        original = Instance(UID(1, "C"), "C", {"s": "héllo wörld ¬"})
        assert self._roundtrip(original).values["s"] == "héllo wörld ¬"

    def test_nested_lists(self):
        original = Instance(UID(1, "C"), "C", {"ll": [[1, 2], ["a"]]})
        assert self._roundtrip(original).values["ll"] == [[1, 2], ["a"]]

    def test_unsupported_type_rejected(self):
        bad = Instance(UID(1, "C"), "C", {"x": object()})
        with pytest.raises(SerializationError):
            encode_instance(bad)

    def test_truncated_record_rejected(self):
        data = encode_instance(Instance(UID(1, "C"), "C", {"x": 42}))
        with pytest.raises(SerializationError):
            decode_instance(data[: len(data) // 2])

    def test_not_an_instance_record(self):
        with pytest.raises(SerializationError):
            decode_instance(b"Zjunk")


class TestPage:
    def test_insert_read_delete(self):
        page = Page(0, "seg", capacity=256)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        page.delete(slot)
        with pytest.raises(KeyError):
            page.read(slot)

    def test_free_space_accounting(self):
        page = Page(0, "seg", capacity=256)
        before = page.free_space
        slot = page.insert(b"x" * 50)
        assert page.free_space == before - 50 - 8
        page.delete(slot)
        assert page.free_space == before

    def test_page_full(self):
        page = Page(0, "seg", capacity=64)
        page.insert(b"x" * 40)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 40)

    def test_fits(self):
        page = Page(0, "seg", capacity=64)
        assert page.fits(40)
        assert not page.fits(64)

    def test_update_in_place(self):
        page = Page(0, "seg", capacity=256)
        slot = page.insert(b"short")
        page.update(slot, b"a-bit-longer-record")
        assert page.read(slot) == b"a-bit-longer-record"

    def test_update_overflow(self):
        page = Page(0, "seg", capacity=64)
        slot = page.insert(b"x" * 30)
        with pytest.raises(PageFullError):
            page.update(slot, b"y" * 60)


class TestBufferPool:
    def test_hit_and_fault_counting(self):
        pool = BufferPool(PageFile(), capacity=2)
        p0 = pool.new_page("seg", 256)
        pool.pin(p0.page_id)
        assert pool.stats.buffer_hits == 1
        assert pool.stats.page_faults == 0

    def test_lru_eviction(self):
        file = PageFile()
        pool = BufferPool(file, capacity=2)
        pages = [pool.new_page("seg", 256) for _ in range(3)]
        # p0 was evicted when p2 was admitted.
        assert not pool.resident(pages[0].page_id)
        pool.pin(pages[0].page_id)
        assert pool.stats.page_faults == 1

    def test_dirty_eviction_counts_write(self):
        file = PageFile()
        pool = BufferPool(file, capacity=1)
        p0 = pool.new_page("seg", 256)
        pool.mark_dirty(p0.page_id)
        pool.new_page("seg", 256)  # evicts dirty p0
        assert pool.stats.page_writes >= 1

    def test_flush(self):
        pool = BufferPool(PageFile(), capacity=4)
        p0 = pool.new_page("seg", 256)
        pool.mark_dirty(p0.page_id)
        pool.flush()
        assert pool.stats.page_writes >= 1

    def test_zero_capacity_all_faults(self):
        file = PageFile()
        pool = BufferPool(file, capacity=0)
        p0 = pool.new_page("seg", 256)
        pool.pin(p0.page_id)
        pool.pin(p0.page_id)
        assert pool.stats.page_faults == 2

    def test_hit_ratio(self):
        pool = BufferPool(PageFile(), capacity=4)
        p0 = pool.new_page("seg", 256)
        pool.pin(p0.page_id)
        pool.pin(p0.page_id)
        assert pool.stats.hit_ratio == 1.0


class TestObjectStore:
    def _instance(self, n, text="data"):
        return Instance(UID(n, "C"), "C", {"text": text})

    def test_write_read_roundtrip(self):
        store = ObjectStore()
        inst = self._instance(1)
        store.write(inst, "seg:C")
        assert store.read(inst.uid).values == {"text": "data"}

    def test_unknown_read(self):
        store = ObjectStore()
        with pytest.raises(UnknownObjectError):
            store.read(UID(9, "C"))

    def test_update_in_place(self):
        store = ObjectStore()
        inst = self._instance(1)
        page_a, _ = store.write(inst, "seg:C")
        inst.set("text", "updated")
        page_b, _ = store.write(inst, "seg:C")
        assert page_a == page_b
        assert store.read(inst.uid).values["text"] == "updated"

    def test_grown_record_relocates(self):
        store = ObjectStore()
        inst = self._instance(1, text="small")
        store.write(inst, "seg:C")
        inst.set("text", "x" * 8000)  # larger than a page
        store.write(inst, "seg:C")
        assert store.read(inst.uid).values["text"] == "x" * 8000

    def test_delete(self):
        store = ObjectStore()
        inst = self._instance(1)
        store.write(inst, "seg:C")
        assert store.delete(inst.uid)
        assert inst.uid not in store
        assert not store.delete(inst.uid)

    def test_clustering_hint_places_near(self):
        store = ObjectStore()
        parent = self._instance(1)
        store.write(parent, "seg:shared")
        child = self._instance(2)
        store.write(child, "seg:shared", near_uid=parent.uid)
        assert store.page_of(child.uid) == store.page_of(parent.uid)

    def test_hint_across_segments_ignored(self):
        store = ObjectStore()
        parent = self._instance(1)
        store.write(parent, "seg:A")
        child = self._instance(2)
        store.write(child, "seg:B", near_uid=parent.uid)
        assert store.page_of(child.uid) != store.page_of(parent.uid)

    def test_cold_cache_faults(self):
        store = ObjectStore(buffer_capacity=4)
        instances = [self._instance(n) for n in range(1, 20)]
        for inst in instances:
            store.write(inst, "seg:C")
        store.drop_cache()
        store.stats.reset()
        for inst in instances:
            store.read(inst.uid)
        assert store.stats.page_faults > 0


class TestClusteringPolicy:
    def test_first_parent_same_segment(self):
        database = Database()
        database.make_class("A", segment="seg:shared")
        database.make_class("B", segment="seg:shared")
        policy = ClusteringPolicy(database.lattice, mode="parent")
        parent_uid = UID(1, "A")
        segment, near = policy.placement("B", [parent_uid])
        assert segment == "seg:shared" and near == parent_uid

    def test_cross_segment_hint_dropped(self):
        database = Database()
        database.make_class("A")
        database.make_class("B")
        policy = ClusteringPolicy(database.lattice, mode="parent")
        segment, near = policy.placement("B", [UID(1, "A")])
        assert near is None

    def test_mode_none_ignores_parents(self):
        database = Database()
        database.make_class("A", segment="s")
        database.make_class("B", segment="s")
        policy = ClusteringPolicy(database.lattice, mode="none")
        _, near = policy.placement("B", [UID(1, "A")])
        assert near is None

    def test_unknown_mode_rejected(self):
        database = Database()
        with pytest.raises(ValueError):
            ClusteringPolicy(database.lattice, mode="magic")

    def test_shared_segment_helper(self):
        database = Database()
        database.make_class("A")
        database.make_class("B")
        shared_segment(database.lattice, ["A", "B"], "seg:x")
        assert database.classdef("A").segment == "seg:x"
        assert database.classdef("B").segment == "seg:x"


class TestPagedDatabase:
    def test_write_through_and_mirror(self):
        database = Database(paged=True)
        database.make_class("Leaf")
        database.make_class("Box", attributes=[
            AttributeSpec("L", domain=SetOf("Leaf"), composite=True),
        ])
        box = database.make("Box")
        leaf = database.make("Leaf", parents=[(box, "L")])
        stored = database.store.read(leaf)
        assert stored.reverse_references[0].parent == box

    def test_delete_removes_record(self):
        database = Database(paged=True)
        database.make_class("Leaf")
        leaf = database.make("Leaf")
        database.delete(leaf)
        assert leaf not in database.store

    def test_parent_clustering_end_to_end(self):
        database = Database(paged=True)
        database.make_class("Leaf", segment="seg:tree")
        database.make_class("Box", segment="seg:tree", attributes=[
            AttributeSpec("L", domain=SetOf("Leaf"), composite=True),
        ])
        box = database.make("Box")
        leaf = database.make("Leaf", parents=[(box, "L")])
        assert database.store.page_of(leaf) == database.store.page_of(box)
