"""Tests for the concurrency simulator and the workload generators."""

import pytest

from repro import Database, LegacyDatabase
from repro.sim import ConcurrencySimulator, Step
from repro.workloads import (
    build_corpus,
    build_design_bench,
    build_fleet,
    build_part_tree,
    build_vehicle,
    composite_mix,
    disjoint_writers,
)
from repro.workloads.parts import build_assembly


class TestVehicleWorkload:
    def test_vehicle_shape(self, db):
        handle = build_vehicle(db, tire_count=4)
        assert len(db.components_of(handle.vehicle)) == 6
        db.validate()

    def test_fleet(self, db):
        fleet = build_fleet(db, 3)
        assert len(fleet) == 3
        assert len({h.vehicle for h in fleet}) == 3

    def test_parts_reusable_after_dismantle(self, db):
        handle = build_vehicle(db)
        db.delete(handle.vehicle)
        assert db.exists(handle.body)
        other = build_vehicle(db)
        db.set_value(other.vehicle, "Body", handle.body)  # reuse
        db.validate()


class TestPartTreeWorkload:
    def test_size(self, db):
        tree = build_part_tree(db, depth=3, fanout=2)
        assert tree.size == 1 + 2 + 4 + 8
        assert len(tree.levels) == 4

    def test_bottom_up_equivalent(self, db):
        td = build_part_tree(db, depth=2, fanout=2, class_prefix="TD")
        bu = build_part_tree(db, depth=2, fanout=2, class_prefix="BU",
                             top_down=False)
        assert len(db.components_of(td.root)) == len(db.components_of(bu.root))
        db.validate()

    def test_works_on_legacy_database(self):
        legacy = LegacyDatabase()
        tree = build_part_tree(legacy, depth=2, fanout=2)
        assert len(legacy.components_of(tree.root)) == 6

    def test_assembly_has_distinct_root_class(self, db):
        tree = build_assembly(db, depth=1, fanout=2)
        assert tree.root.class_name == "Assembly"
        assert tree.levels[1][0].class_name == "Part"


class TestDocumentWorkload:
    def test_sharing_happens(self, db):
        corpus = build_corpus(db, documents=10, share_ratio=0.5, seed=7)
        assert corpus.shared_sections
        for section in corpus.shared_sections:
            assert len(db.parents_of(section)) > 1
        db.validate()

    def test_no_sharing_when_ratio_zero(self, db):
        corpus = build_corpus(db, documents=5, share_ratio=0.0)
        assert corpus.shared_sections == []

    def test_deterministic_by_seed(self):
        db1, db2 = Database(), Database()
        c1 = build_corpus(db1, documents=6, share_ratio=0.4, seed=3)
        c2 = build_corpus(db2, documents=6, share_ratio=0.4, seed=3)
        assert len(c1.shared_sections) == len(c2.shared_sections)
        assert c1.size == c2.size


class TestCadWorkload:
    def test_bench_shape(self, db):
        from repro.versions import VersionManager

        manager = VersionManager(db)
        bench = build_design_bench(db, manager, designs=2,
                                   modules_per_design=3, derivations=2)
        assert len(bench.designs) == 2
        assert len(bench.modules) == 6
        for chain in bench.derived.values():
            assert len(chain) == 2


class TestTransactionMixes:
    def test_composite_mix_shape(self, db):
        trees = [build_assembly(db, depth=1, fanout=2) for _ in range(3)]
        roots = [t.root for t in trees]
        scripts = composite_mix(roots, transactions=7, steps_per_txn=4, seed=1)
        assert len(scripts) == 7
        assert all(len(s) == 4 for s in scripts)

    def test_mix_deterministic(self, db):
        trees = [build_assembly(db, depth=1, fanout=2) for _ in range(3)]
        roots = [t.root for t in trees]
        a = composite_mix(roots, transactions=5, seed=9)
        b = composite_mix(roots, transactions=5, seed=9)
        assert [(s.action, s.target) for script in a for s in script] == \
               [(s.action, s.target) for script in b for s in script]

    def test_disjoint_writers(self, db):
        trees = [build_assembly(db, depth=1, fanout=2) for _ in range(4)]
        scripts = disjoint_writers([t.root for t in trees], writers_per_root=2)
        assert len(scripts) == 8


class TestSimulator:
    @pytest.fixture
    def sim_env(self):
        database = Database()
        trees = [build_assembly(database, depth=1, fanout=3) for _ in range(4)]
        return database, trees

    def test_all_transactions_commit(self, sim_env):
        database, trees = sim_env
        roots = [t.root for t in trees]
        sim = ConcurrencySimulator(database, "composite")
        result = sim.run(composite_mix(roots, transactions=10, seed=5))
        assert result.committed == 10
        assert result.ticks > 0

    def test_disjoint_writers_composite_never_block(self, sim_env):
        database, trees = sim_env
        sim = ConcurrencySimulator(database, "composite")
        result = sim.run(disjoint_writers([t.root for t in trees]))
        assert result.lock_blocks == 0
        assert result.deadlock_aborts == 0

    def test_disjoint_writers_class_lock_serializes(self, sim_env):
        database, trees = sim_env
        sim = ConcurrencySimulator(database, "class")
        result = sim.run(disjoint_writers([t.root for t in trees]))
        assert result.lock_blocks > 0

    def test_instance_discipline_many_more_lock_calls(self, sim_env):
        database, trees = sim_env
        roots = [t.root for t in trees]
        scripts = disjoint_writers(roots)
        composite = ConcurrencySimulator(database, "composite").run(scripts)
        instance = ConcurrencySimulator(database, "instance").run(scripts)
        assert instance.lock_requests > composite.lock_requests

    def test_unknown_discipline_rejected(self, sim_env):
        database, _ = sim_env
        with pytest.raises(ValueError):
            ConcurrencySimulator(database, "optimistic")

    def test_deterministic_runs(self, sim_env):
        database, trees = sim_env
        roots = [t.root for t in trees]
        scripts = composite_mix(roots, transactions=8, seed=11)
        r1 = ConcurrencySimulator(database, "composite").run(scripts)
        scripts = composite_mix(roots, transactions=8, seed=11)
        r2 = ConcurrencySimulator(database, "composite").run(scripts)
        assert r1.ticks == r2.ticks
        assert r1.lock_blocks == r2.lock_blocks

    def test_conflicting_writers_serialize_but_finish(self, sim_env):
        database, trees = sim_env
        root = trees[0].root
        # work=3 keeps each writer's locks held across ticks so the
        # contention is observable.
        scripts = [[Step("update_composite", root, work=3)] for _ in range(5)]
        result = ConcurrencySimulator(database, "composite").run(scripts)
        assert result.committed == 5
        assert result.lock_blocks > 0


class TestBenchUtils:
    def test_format_table(self):
        from repro.bench import format_table

        text = format_table(
            [{"name": "a", "value": 1.23456}, {"name": "b", "value": 10}],
            title="demo",
        )
        assert "demo" in text and "1.235" in text and "name" in text

    def test_format_empty(self):
        from repro.bench import format_table

        assert "(no rows)" in format_table([])

    def test_recorder_roundtrip(self, tmp_path):
        from repro.bench import Recorder

        recorder = Recorder()
        recorder.record("F6", "figure 6", rows=[{"cell": "sW"}],
                        conclusions=["matches"])
        assert recorder.get("F6").rows == [{"cell": "sW"}]
        path = recorder.dump(tmp_path / "out.json")
        assert path.exists() if hasattr(path, "exists") else True
        import json

        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload[0]["experiment_id"] == "F6"


class TestFigureBuilders:
    def test_figure4_shape(self, db):
        from repro.workloads import build_figure4

        fig = build_figure4(db)
        assert set(db.components_of(fig.i)) == set(fig.components)
        assert db.children_of(fig.i) == [fig.j, fig.k]
        assert db.components_of(fig.k) == [fig.n, fig.o]
        db.validate()

    def test_figure4_deletion_cascades(self, db):
        from repro.workloads import build_figure4

        fig = build_figure4(db)
        report = db.delete(fig.i)
        assert report.deleted_count == 6

    def test_figure5_shape(self, db):
        from repro.workloads import build_figure5

        fig = build_figure5(db)
        assert set(db.parents_of(fig.o_prime)) == {fig.j, fig.k}
        assert db.parents_of(fig.p) == [fig.j]
        assert db.parents_of(fig.q) == [fig.k]
        db.validate()

    def test_figure9_protocol_plans(self, db):
        from repro.locking import CompositeLockingProtocol, LockMode as M
        from repro.workloads import build_figure9

        fig = build_figure9(db)
        protocol = CompositeLockingProtocol(db)
        plan = dict(protocol.plan_composite(fig.k1, "read"))
        assert plan[("class", "C")] is M.ISOS
        assert plan[("class", "W")] is M.ISO

    def test_figure_builders_idempotent_schema(self, db):
        from repro.workloads import build_figure5, build_figure9

        build_figure5(db)
        build_figure5(db)   # second call reuses the schema
        build_figure9(db)
        build_figure9(db)
        db.validate()
