"""Property-based tests (hypothesis) on the core invariants.

Three invariant families:

1. **Topology closure** — any sequence of public API operations leaves the
   database satisfying ``Database.validate()`` (Topology Rules 1-3 plus
   forward/reverse reference agreement).
2. **Serializer** — encode/decode is the identity on instances.
3. **Authorization algebra** — ``combine`` is commutative, idempotent,
   and monotone in conflicts; the lock matrix is symmetric and derived
   consistently from claims.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import AttributeSpec, Database, ReproError, SetOf
from repro.authorization import FIGURE6_ATOMS, combine
from repro.core.deletion import would_delete
from repro.core.identity import UID
from repro.core.instance import Instance
from repro.locking.modes import COMPATIBILITY, FIGURE8_MODES
from repro.storage.serializer import decode_instance, encode_instance

# ---------------------------------------------------------------------------
# Serializer round-trip
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.builds(UID, st.integers(min_value=0, max_value=10**9),
              st.text(alphabet=string.ascii_letters, min_size=1, max_size=10)),
)
_values = st.one_of(_scalars, st.lists(_scalars, max_size=6))
_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)


@given(
    uid_num=st.integers(min_value=0, max_value=10**9),
    cls=st.text(alphabet=string.ascii_letters, min_size=1, max_size=12),
    values=st.dictionaries(_names, _values, max_size=8),
    cc=st.integers(min_value=0, max_value=10**6),
    reverse=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**9),
            st.booleans(),
            st.booleans(),
            _names,
        ),
        max_size=5,
        unique_by=lambda t: (t[0], t[3]),
    ),
)
@settings(max_examples=200, deadline=None)
def test_serializer_roundtrip(uid_num, cls, values, cc, reverse):
    instance = Instance(UID(uid_num, cls), cls, values, change_count=cc)
    for parent_num, dependent, exclusive, attr in reverse:
        instance.add_reverse_reference(
            UID(parent_num, "P"), dependent, exclusive, attr
        )
    restored = decode_instance(encode_instance(instance))
    assert restored.uid == instance.uid
    assert restored.class_name == cls
    assert restored.values == values
    assert restored.change_count == cc
    assert restored.reverse_references == instance.reverse_references


# ---------------------------------------------------------------------------
# Authorization algebra
# ---------------------------------------------------------------------------

_atoms = st.sampled_from(FIGURE6_ATOMS)


@given(st.lists(_atoms, min_size=0, max_size=6))
@settings(max_examples=300, deadline=None)
def test_combine_order_independent(atoms):
    forward = combine(atoms)
    backward = combine(list(reversed(atoms)))
    assert forward.conflict == backward.conflict
    assert forward.effective == backward.effective


@given(st.lists(_atoms, min_size=1, max_size=6))
@settings(max_examples=300, deadline=None)
def test_combine_idempotent_under_duplication(atoms):
    once = combine(atoms)
    doubled = combine(atoms + atoms)
    assert once.conflict == doubled.conflict
    assert once.effective == doubled.effective


@given(st.lists(_atoms, min_size=1, max_size=4), _atoms)
@settings(max_examples=300, deadline=None)
def test_combine_conflict_monotone_under_weak_additions(atoms, extra):
    # Adding a WEAK atom never removes an existing conflict (weak atoms
    # cannot override anything).  A strong atom, by contrast, may settle a
    # weak-weak dispute — e.g. {wR, w¬R} conflicts until sR voids w¬R.
    if combine(atoms).conflict and not extra.strong:
        assert combine(atoms + [extra]).conflict


@given(st.lists(_atoms, min_size=1, max_size=4), _atoms)
@settings(max_examples=300, deadline=None)
def test_strong_conflicts_are_permanent(atoms, extra):
    strong_only = [atom for atom in atoms if atom.strong]
    if strong_only and combine(strong_only).conflict:
        assert combine(atoms + [extra]).conflict


@given(_atoms)
def test_single_atom_never_conflicts(atom):
    resolution = combine([atom])
    assert not resolution.conflict
    assert resolution.atoms() == (atom,)


# ---------------------------------------------------------------------------
# Lock matrix invariants
# ---------------------------------------------------------------------------

_modes = st.sampled_from(FIGURE8_MODES)


@given(_modes, _modes)
def test_matrix_symmetric(a, b):
    assert COMPATIBILITY[(a, b)] == COMPATIBILITY[(b, a)]


@given(_modes)
def test_x_incompatible_with_all(mode):
    from repro.locking.modes import LockMode

    assert not COMPATIBILITY[(LockMode.X, mode)]


# ---------------------------------------------------------------------------
# Stateful topology-closure machine
# ---------------------------------------------------------------------------


class CompositeObjectMachine(RuleBasedStateMachine):
    """Random public-API operations must preserve the global invariants."""

    def __init__(self):
        super().__init__()
        self.db = Database()
        self.db.make_class("Item")
        for flavour, (exclusive, dependent) in {
            "OwnerDX": (True, True),
            "OwnerIX": (True, False),
            "OwnerDS": (False, True),
            "OwnerIS": (False, False),
        }.items():
            self.db.make_class(flavour, attributes=[
                AttributeSpec("kids", domain=SetOf("Item"), composite=True,
                              exclusive=exclusive, dependent=dependent),
            ])
        self.items = []
        self.owners = []

    owners_classes = st.sampled_from(["OwnerDX", "OwnerIX", "OwnerDS", "OwnerIS"])

    @rule(cls=owners_classes)
    def make_owner(self, cls):
        self.owners.append(self.db.make(cls))

    @rule()
    def make_item(self):
        self.items.append(self.db.make("Item"))

    @rule(data=st.data())
    def attach(self, data):
        if not self.items or not self.owners:
            return
        item = data.draw(st.sampled_from(self.items))
        owner = data.draw(st.sampled_from(self.owners))
        if not self.db.exists(item) or not self.db.exists(owner):
            return
        try:
            self.db.make_part_of(item, owner, "kids")
        except ReproError:
            pass  # topology rejections are expected and fine

    @rule(data=st.data())
    def detach(self, data):
        if not self.items or not self.owners:
            return
        item = data.draw(st.sampled_from(self.items))
        owner = data.draw(st.sampled_from(self.owners))
        if not self.db.exists(item) or not self.db.exists(owner):
            return
        self.db.remove_part_of(item, owner, "kids")

    @rule(data=st.data())
    def delete_something(self, data):
        pool = [u for u in self.items + self.owners if self.db.exists(u)]
        if not pool:
            return
        victim = data.draw(st.sampled_from(pool))
        predicted = would_delete(self.db, victim)
        report = self.db.delete(victim)
        assert predicted == set(report.deleted)

    @invariant()
    def database_valid(self):
        self.db.validate()

    @invariant()
    def topology_rules_hold(self):
        for instance in self.db.live_instances():
            exclusive = [r for r in instance.reverse_references if r.exclusive]
            shared = [r for r in instance.reverse_references if not r.exclusive]
            assert len(exclusive) <= 1
            assert not (exclusive and shared)


CompositeObjectMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestCompositeObjectMachine = CompositeObjectMachine.TestCase
