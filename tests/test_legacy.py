"""Tests for the [KIM87b] baseline model and its three shortcomings."""

import pytest

from repro import AttributeSpec, LegacyDatabase, LegacyModelError, SetOf


@pytest.fixture
def legacy():
    database = LegacyDatabase()
    database.make_class("Part")
    database.make_class("Assembly", attributes=[
        AttributeSpec("Parts", domain=SetOf("Part"), composite=True),
        AttributeSpec("Main", domain="Part", composite=True),
        AttributeSpec("Note", domain="string"),
    ])
    return database


class TestSchemaRestrictions:
    def test_shared_composite_rejected(self, legacy):
        with pytest.raises(LegacyModelError):
            legacy.make_class("Bad", attributes=[
                AttributeSpec("x", domain="Part", composite=True,
                              exclusive=False),
            ])

    def test_independent_composite_rejected(self, legacy):
        with pytest.raises(LegacyModelError):
            legacy.make_class("Bad", attributes=[
                AttributeSpec("x", domain="Part", composite=True,
                              dependent=False),
            ])

    def test_weak_references_fine(self, legacy):
        legacy.make_class("Ok", attributes=[AttributeSpec("x", domain="Part")])

    def test_dependent_exclusive_fine(self, legacy):
        assert legacy.compositep("Assembly", "Parts")


class TestTopDownCreation:
    def test_create_with_parent_works(self, legacy):
        assembly = legacy.make("Assembly")
        part = legacy.make("Part", parents=[(assembly, "Parts")])
        assert legacy.parents_of(part) == [assembly]

    def test_assign_existing_in_make_rejected(self, legacy):
        part = legacy.make("Part")
        with pytest.raises(LegacyModelError):
            legacy.make("Assembly", values={"Main": part})

    def test_make_part_of_rejected(self, legacy):
        assembly = legacy.make("Assembly")
        part = legacy.make("Part")
        with pytest.raises(LegacyModelError):
            legacy.make_part_of(part, assembly, "Parts")

    def test_set_value_of_existing_rejected(self, legacy):
        assembly = legacy.make("Assembly")
        part = legacy.make("Part")
        with pytest.raises(LegacyModelError):
            legacy.set_value(assembly, "Main", part)

    def test_insert_into_of_existing_rejected(self, legacy):
        assembly = legacy.make("Assembly")
        part = legacy.make("Part")
        with pytest.raises(LegacyModelError):
            legacy.insert_into(assembly, "Parts", part)

    def test_weak_attribute_assignment_fine(self, legacy):
        legacy.make_class("Doc", attributes=[AttributeSpec("see", domain="Part")])
        part = legacy.make("Part")
        doc = legacy.make("Doc", values={"see": part})
        assert legacy.value(doc, "see") == part

    def test_weak_make_part_of_fine(self, legacy):
        legacy.make_class("Doc", attributes=[
            AttributeSpec("refs", domain=SetOf("Part")),
        ])
        part = legacy.make("Part")
        doc = legacy.make("Doc")
        legacy.make_part_of(part, doc, "refs")
        assert legacy.value(doc, "refs") == [part]


class TestExistenceDependency:
    def test_deletion_always_cascades(self, legacy):
        assembly = legacy.make("Assembly")
        parts = [legacy.make("Part", parents=[(assembly, "Parts")])
                 for _ in range(5)]
        report = legacy.delete(assembly)
        assert set(report.deleted) == {assembly, *parts}
        assert report.preserved_count == 0

    def test_no_reuse_after_deletion(self, legacy):
        # The motivating contrast: under the extended model the parts would
        # survive dismantling; under KIM87b they are gone.
        assembly = legacy.make("Assembly")
        part = legacy.make("Part", parents=[(assembly, "Parts")])
        legacy.delete(assembly)
        assert not legacy.exists(part)


class TestStrictHierarchy:
    def test_component_has_one_parent_only(self, legacy):
        a1 = legacy.make("Assembly")
        part = legacy.make("Part", parents=[(a1, "Parts")])
        a2 = legacy.make("Assembly")
        with pytest.raises(LegacyModelError):
            legacy.make_part_of(part, a2, "Parts")
        assert legacy.parents_of(part) == [a1]

    def test_deep_hierarchy_buildable_top_down(self, legacy):
        from repro.workloads.parts import build_part_tree

        tree = build_part_tree(legacy, depth=3, fanout=2, class_prefix="Piece")
        assert len(legacy.components_of(tree.root)) == tree.size - 1
        legacy.validate()

    def test_bottom_up_tree_impossible(self, legacy):
        from repro.workloads.parts import build_part_tree

        with pytest.raises(LegacyModelError):
            build_part_tree(legacy, depth=2, fanout=2, class_prefix="Piece2",
                            top_down=False)
