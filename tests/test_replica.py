"""Journal-shipping read replicas (docs/REPLICATION.md).

Five layers:

1. **JournalFollower** — incremental sealed-batch replay, epoch-pinned
   reads on the replica, the staleness bound, tombstones, torn tails,
   checkpoint-triggered rebuilds on a stable database identity.
2. **ReplicaServer over TCP** — a live replica serves reads and
   ``snapshot_read``/``read_epoch``, advertises lag, and rejects
   writes with a typed error naming it a replica.
3. **Failover drills** — the kill-replica / kill-primary-mid-ship
   scripts of :mod:`repro.mvcc.crashsim` under seeded fault plans:
   committed-prefix and stale-bound oracles hold through both.
4. **ReadRouter** — replica-first routing with primary fallback on
   lag and on dead replicas.
5. **Entry point / cluster wiring** — ``repro-replica`` as a real
   subprocess (--port-file discovery), and the shard router's
   ``read_epoch`` scatter (min-merge across shards).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ReadOnlyError, ReplicaLagError
from repro.faults import FaultPlan
from repro.mvcc import JournalFollower, ReadRouter, ReplicaDrill, ReplicaThread
from repro.server.client import Client
from repro.server.server import ServerThread
from repro.storage.durable import DurableDatabase
from repro.storage.journal import JOURNAL_NAME

SMOKE_SEED = 20260807


def _primary(root, **kwargs):
    db = DurableDatabase(root, sync_policy="commit", **kwargs)
    db.make_class("Doc", attributes=[
        {"name": "Title", "domain": "string"},
    ])
    return db


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# 1. The follower
# ---------------------------------------------------------------------------


class TestJournalFollower:
    def test_initial_attach_adopts_current_state(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        follower = JournalFollower(tmp_path)
        assert follower.database.value(uid, "Title") == "a"
        assert follower.applied_epoch == db.commit_epoch
        db.close()

    def test_incremental_replay_and_lag_bound(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        follower = JournalFollower(tmp_path)
        db.set_value(uid, "Title", "b")
        assert follower.applied_epoch < db.commit_epoch  # not yet polled
        with pytest.raises(ReplicaLagError) as exc:
            follower.require_epoch(db.commit_epoch)
        assert exc.value.applied_epoch == follower.applied_epoch
        assert exc.value.min_epoch == db.commit_epoch
        assert follower.poll() >= 1
        assert follower.applied_epoch == db.commit_epoch
        assert follower.database.value(uid, "Title") == "b"
        follower.require_epoch(db.commit_epoch)  # satisfied now
        db.close()

    def test_epoch_pinned_read_on_replica(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "old"})
        follower = JournalFollower(tmp_path)
        pinned = follower.applied_epoch
        db.set_value(uid, "Title", "new")
        follower.poll()
        assert follower.read_at(uid, "Title") == "new"
        assert follower.read_at(uid, "Title", epoch=pinned) == "old"
        db.close()

    def test_tombstones_replicate(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "doomed"})
        follower = JournalFollower(tmp_path)
        db.delete(uid)
        follower.poll()
        assert not follower.database.exists(uid)
        db.close()

    def test_checkpoint_triggers_rebuild_on_same_database(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        follower = JournalFollower(tmp_path)
        identity = follower.database
        assert follower.rebuilds == 1
        db.set_value(uid, "Title", "b")
        db.checkpoint()
        follower.poll()
        assert follower.rebuilds == 2
        # Stable identity: a server holding the reference never re-wires.
        assert follower.database is identity
        assert follower.database.value(uid, "Title") == "b"
        assert follower.database.snapshot_manager is follower.snapshots
        db.close()

    def test_torn_tail_waits_for_the_rest(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        follower = JournalFollower(tmp_path)
        db.set_value(uid, "Title", "b")
        db.close()
        journal = tmp_path / JOURNAL_NAME
        whole = journal.read_bytes()
        # Cut the last batch's commit marker in half: the follower must
        # apply nothing new and keep its offset at the last boundary.
        journal.write_bytes(whole[:-7])
        assert follower.poll() == 0
        assert follower.database.value(uid, "Title") == "a"
        journal.write_bytes(whole)
        assert follower.poll() >= 1
        assert follower.database.value(uid, "Title") == "b"

    def test_lag_row_shape(self, tmp_path):
        db = _primary(tmp_path)
        db.make("Doc", values={"Title": "a"})
        follower = JournalFollower(tmp_path)
        follower.poll()
        row = follower.lag_row()
        assert row["applied_epoch"] == db.commit_epoch
        assert row["pending_bytes"] == 0
        assert row["rebuilds"] == 1
        db.close()


# ---------------------------------------------------------------------------
# 2. A live replica over TCP
# ---------------------------------------------------------------------------


class TestReplicaServerTCP:
    def test_replica_serves_and_catches_up(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "v1"})
        with ReplicaThread(tmp_path) as replica:
            with Client(port=replica.port, timeout=20.0) as client:
                assert client.value(uid, "Title") == "v1"
                info = client.read_epoch()
                assert info["mvcc"] is True
                assert info["replica"]["applied_epoch"] == db.commit_epoch

                pinned = info["epoch"]
                db.set_value(uid, "Title", "v2")
                assert _wait_for(
                    lambda: replica.follower.applied_epoch == db.commit_epoch
                )
                assert client.value(uid, "Title") == "v2"
                # The pre-write epoch still answers consistently.
                old = client.snapshot_read(uid, "Title", epoch=pinned)
                assert old == {"value": "v1", "epoch": pinned}

                with pytest.raises(ReplicaLagError):
                    client.snapshot_read(
                        uid, "Title", min_epoch=db.commit_epoch + 50
                    )
        db.close()

    def test_writes_rejected_with_replica_reason(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        with ReplicaThread(tmp_path) as replica:
            with Client(port=replica.port, timeout=20.0) as client:
                with pytest.raises(ReadOnlyError, match="read replica"):
                    client.set_value(uid, "Title", "b")
                with pytest.raises(ReadOnlyError, match="read replica"):
                    client.make("Doc", values={"Title": "c"})
        db.close()

    def test_stats_carry_replica_and_mvcc_rows(self, tmp_path):
        db = _primary(tmp_path)
        db.make("Doc", values={"Title": "a"})
        with ReplicaThread(tmp_path) as replica:
            with Client(port=replica.port, timeout=20.0) as client:
                stats = client.stats()
                assert stats["replica"]["applied_epoch"] == db.commit_epoch
                assert stats["mvcc"]["epoch"] == db.commit_epoch
                assert stats["server"]["read_only"] is True
        db.close()

    def test_replica_follows_primary_checkpoint(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        with ReplicaThread(tmp_path, poll_interval=0.01) as replica:
            db.set_value(uid, "Title", "b")
            db.checkpoint()
            db.set_value(uid, "Title", "c")
            assert _wait_for(
                lambda: replica.follower.applied_epoch == db.commit_epoch
            )
            assert replica.follower.rebuilds >= 2
            with Client(port=replica.port, timeout=20.0) as client:
                assert client.value(uid, "Title") == "c"
        db.close()


# ---------------------------------------------------------------------------
# 3. Failover drills (satellite: crash harness)
# ---------------------------------------------------------------------------


class TestFailoverDrills:
    @pytest.mark.parametrize("policy", ["commit", "group", "always"])
    def test_kill_replica_restart_converges(self, tmp_path, policy):
        plan = FaultPlan(seed=SMOKE_SEED, policy=policy, units=8)
        report = ReplicaDrill(plan, tmp_path, kind="kill-replica").run()
        assert report.ok, report.summary()
        assert report.replica_rebuilds >= 1
        assert report.applied_epoch <= report.primary_epoch

    @pytest.mark.parametrize("policy", ["commit", "group", "always"])
    def test_kill_primary_mid_ship_promotes(self, tmp_path, policy):
        plan = FaultPlan(seed=SMOKE_SEED, policy=policy, units=8)
        report = ReplicaDrill(plan, tmp_path, kind="kill-primary").run()
        assert report.ok, report.summary()
        assert report.matched_label  # landed on a captured commit point

    @pytest.mark.parametrize("seed", [3, 11, 77])
    def test_drill_seed_sweep(self, tmp_path, seed):
        for kind in ("kill-replica", "kill-primary"):
            root = tmp_path / f"{kind}-{seed}"
            plan = FaultPlan(seed=seed, policy="commit", units=6)
            report = ReplicaDrill(plan, root, kind=kind).run()
            assert report.ok, report.summary()

    def test_unknown_drill_kind_rejected(self, tmp_path):
        plan = FaultPlan(seed=1, policy="commit", units=2)
        with pytest.raises(ValueError, match="unknown drill kind"):
            ReplicaDrill(plan, tmp_path, kind="kill-network")


# ---------------------------------------------------------------------------
# 4. Read routing with primary fallback
# ---------------------------------------------------------------------------


class TestReadRouter:
    def test_replica_first_with_lag_fallback(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        with ServerThread(database=db) as primary_handle:
            with ReplicaThread(tmp_path) as replica_handle:
                primary = Client(port=primary_handle.port, timeout=20.0)
                replica = Client(port=replica_handle.port, timeout=20.0)
                try:
                    router = ReadRouter(primary, replicas=[replica])
                    result = router.snapshot_read(uid, "Title")
                    assert result["value"] == "a"
                    assert router.replica_reads == 1

                    # A freshness floor the replica cannot meet falls
                    # back to the primary instead of failing the read.
                    floor = router.read_epoch()["epoch"] + 50
                    db.commit_epoch += 50  # primary moves ahead
                    try:
                        result = router.snapshot_read(
                            uid, "Title", min_epoch=floor
                        )
                        assert result["value"] == "a"
                        assert router.fallbacks == 1
                        assert router.primary_reads == 1
                    finally:
                        db.commit_epoch -= 50
                finally:
                    primary.close()
                    replica.close()

    def test_dead_replica_falls_back(self, tmp_path):
        db = _primary(tmp_path)
        uid = db.make("Doc", values={"Title": "a"})
        with ServerThread(database=db) as primary_handle:
            with ReplicaThread(tmp_path) as replica_handle:
                primary = Client(port=primary_handle.port, timeout=20.0)
                replica = Client(port=replica_handle.port, timeout=5.0,
                                 max_retries=0)
                replica.connect()
                try:
                    router = ReadRouter(primary, replicas=[replica])
                    replica_handle.stop()  # replica process dies
                    result = router.snapshot_read(uid, "Title")
                    assert result["value"] == "a"
                    assert router.fallbacks == 1
                    assert router.primary_reads == 1
                finally:
                    primary.close()
                    replica.close()


# ---------------------------------------------------------------------------
# 5. Entry point and cluster wiring
# ---------------------------------------------------------------------------


class TestReplicaEntryPoint:
    def test_port_file_discovery_and_reads(self, tmp_path):
        store = tmp_path / "store"
        db = _primary(store)
        uid = db.make("Doc", values={"Title": "shipped"})
        db.close()

        port_file = tmp_path / "port"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.mvcc", str(store),
             "--port", "0", "--port-file", str(port_file)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 15.0
            while not port_file.exists() and time.monotonic() < deadline:
                assert proc.poll() is None, proc.stdout.read().decode()
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            with Client(port=port, timeout=10.0) as client:
                assert client.value(uid, "Title") == "shipped"
                info = client.read_epoch()
                assert info["replica"]["rebuilds"] >= 1
                with pytest.raises(ReadOnlyError, match="read replica"):
                    client.set_value(uid, "Title", "nope")
        finally:
            proc.terminate()
            proc.wait(timeout=10.0)


class TestShardRouterReadEpoch:
    def test_read_epoch_scatters_with_min_merge(self, tmp_path):
        from repro.shard.worker import ShardCluster

        with ShardCluster(tmp_path, shards=2) as cluster:
            with Client(port=cluster.router_port, timeout=20.0) as client:
                client.make_class("Doc", attributes=[
                    {"name": "Title", "domain": "string"},
                ])
                for index in range(4):
                    client.make("Doc", values={"Title": f"d{index}"})
                info = client.read_epoch()
                assert set(info["shards"]) == {"shard-00", "shard-01"}
                per_shard = [row["epoch"] for row in info["shards"].values()]
                assert info["epoch"] == min(per_shard)
                assert info["mvcc"] is True
