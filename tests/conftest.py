"""Shared fixtures.

Each fixture builds one of the paper's worked scenarios:

* ``vehicle_db`` — Example 1 (physical part hierarchy, independent
  exclusive references);
* ``document_db`` — Example 2 (logical part hierarchy with shared and
  dependent references);
* ``figure5_db`` — the Figure 5 topology (two composite roots sharing a
  component), used by authorization and locking tests;
* ``figure9_db`` — the Figure 9 class graph for the locking protocol.
"""

from __future__ import annotations

import pytest

from repro import AttributeSpec, Database, SetOf


@pytest.fixture
def db():
    """An empty database."""
    return Database()


@pytest.fixture
def vehicle_db():
    """Example 1: the Vehicle composite hierarchy."""
    database = Database()
    from repro.workloads.parts import build_vehicle

    handle = build_vehicle(database)
    return database, handle


@pytest.fixture
def document_db():
    """Example 2 schema plus two documents sharing a section."""
    database = Database()
    from repro.workloads.documents import define_document_schema

    define_document_schema(database)
    p1 = database.make("Paragraph", values={"Text": "shared paragraph"})
    p2 = database.make("Paragraph", values={"Text": "private paragraph"})
    shared_section = database.make(
        "Section", values={"Heading": "Shared", "Content": [p1]}
    )
    private_section = database.make(
        "Section", values={"Heading": "Private", "Content": [p2]}
    )
    image = database.make("Image", values={"File": "/figures/a.png"})
    note = database.make("Paragraph", values={"Text": "annotation"})
    doc_a = database.make(
        "Document",
        values={
            "Title": "A",
            "Sections": [shared_section, private_section],
            "Figures": [image],
            "Annotations": [note],
        },
    )
    doc_b = database.make(
        "Document", values={"Title": "B", "Sections": [shared_section]}
    )
    handles = {
        "doc_a": doc_a,
        "doc_b": doc_b,
        "shared_section": shared_section,
        "private_section": private_section,
        "p_shared": p1,
        "p_private": p2,
        "image": image,
        "note": note,
    }
    return database, handles


@pytest.fixture
def figure5_db():
    """Figure 5: roots j and k sharing component o'; p under j, q under k."""
    database = Database()
    database.make_class("Thing")
    database.make_class(
        "Root",
        attributes=[
            AttributeSpec(
                "kids",
                domain=SetOf("Thing"),
                composite=True,
                exclusive=False,
                dependent=False,
            )
        ],
    )
    o_prime = database.make("Thing")
    p = database.make("Thing")
    q = database.make("Thing")
    j = database.make("Root", values={"kids": [o_prime, p]})
    k = database.make("Root", values={"kids": [o_prime, q]})
    return database, {"j": j, "k": k, "o_prime": o_prime, "p": p, "q": q}


@pytest.fixture
def figure9_db():
    """Figure 9 class graph: I -excl-> C -excl-> W; K -shared-> C."""
    database = Database()
    database.make_class("W")
    database.make_class(
        "C",
        attributes=[
            AttributeSpec(
                "w", domain="W", composite=True, exclusive=True, dependent=True
            )
        ],
    )
    database.make_class(
        "I",
        attributes=[
            AttributeSpec(
                "c", domain="C", composite=True, exclusive=True, dependent=True
            )
        ],
    )
    database.make_class(
        "K",
        attributes=[
            AttributeSpec(
                "cs",
                domain=SetOf("C"),
                composite=True,
                exclusive=False,
                dependent=False,
            )
        ],
    )
    w1 = database.make("W")
    c1 = database.make("C", values={"w": w1})
    i1 = database.make("I", values={"c": c1})
    w2 = database.make("W")
    c2 = database.make("C", values={"w": w2})
    k1 = database.make("K", values={"cs": [c2]})
    k2 = database.make("K", values={"cs": [c2]})
    return database, {"i1": i1, "k1": k1, "k2": k2, "c1": c1, "c2": c2,
                      "w1": w1, "w2": w2}
