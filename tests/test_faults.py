"""The fault-injection layer: registry/plan units and journal hardening.

The first half exercises :mod:`repro.faults.registry` and
:mod:`repro.faults.plan` as plain data structures (rule matching,
arming, determinism).  The second half is the ISSUE's journal audit:
under injected fsync and write failures the journal must surface a
typed :class:`~repro.errors.StorageError` — never lose records
silently — go fail-stop, and still release every lock and close
cleanly.
"""

from __future__ import annotations

import pytest

from repro import AttributeSpec, Database
from repro.errors import LockConflictError, ReadOnlyError, StorageError, error_registry
from repro.faults import (
    ACTIONS,
    FAILPOINTS,
    FailpointRegistry,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active,
    fault_scope,
    fire,
    random_plan,
)
from repro.faults.plan import CRASH_MODES
from repro.storage.durable import DurableDatabase
from repro.storage.journal import (
    JOURNAL_HEADER_SIZE,
    JOURNAL_MAGIC,
    JOURNAL_NAME,
    SYNC_POLICIES,
    Journal,
    _journal_body,
)
from repro.txn import TransactionManager


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint site"):
            FaultRule(site="journal.nope", action="error")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="journal.fsync", action="explode")

    def test_nth_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(site="journal.fsync", action="error", nth=0)

    def test_count_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="count"):
            FaultRule(site="journal.fsync", action="error", count=0)
        FaultRule(site="journal.fsync", action="error", count=None)  # forever

    def test_matches_window(self):
        rule = FaultRule(site="journal.fsync", action="skip", nth=3, count=2)
        assert [hit for hit in range(1, 8) if rule.matches(hit)] == [3, 4]

    def test_matches_forever(self):
        rule = FaultRule(site="journal.fsync", action="skip", nth=2,
                         count=None)
        assert not rule.matches(1)
        assert all(rule.matches(hit) for hit in range(2, 50))

    def test_dict_round_trip(self):
        rule = FaultRule(site="journal.write_record", action="torn", nth=7,
                         count=3, torn_bytes=11, message="m")
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestRegistry:
    def test_disarmed_fire_is_a_no_op(self):
        assert active() is None
        assert fire("journal.fsync") is None

    def test_scope_arms_and_disarms(self):
        with fault_scope() as faults:
            assert active() is faults
            assert isinstance(faults, FailpointRegistry)
        assert active() is None

    def test_scope_disarms_on_error(self):
        with pytest.raises(RuntimeError, match="boom"), fault_scope():
            raise RuntimeError("boom")
        assert active() is None

    def test_scopes_do_not_nest(self):
        with fault_scope(), pytest.raises(RuntimeError, match="do not nest"):
            with fault_scope():
                pass

    def test_error_action_raises_injected_fault(self):
        with fault_scope() as faults:
            faults.add("journal.fsync", "error", nth=2)
            assert fire("journal.fsync") is None  # hit 1: below the window
            with pytest.raises(InjectedFault):
                fire("journal.fsync")
        assert isinstance(InjectedFault("x"), OSError)

    def test_hits_count_per_site(self):
        with fault_scope() as faults:
            fire("journal.fsync")
            fire("journal.fsync")
            fire("client.send")
            assert faults.hit_count("journal.fsync") == 2
            assert faults.hit_count("client.send") == 1
            assert faults.hit_count("client.recv") == 0

    def test_directive_actions_are_returned(self):
        with fault_scope() as faults:
            faults.add("journal.fsync", "skip")
            faults.add("server.send_frame", "drop")
            faults.add("server.recv_frame", "kill")
            faults.add("client.send", "delay", delay_s=0.25)
            assert fire("journal.fsync") == "skip"
            assert fire("server.send_frame") == "drop"
            assert fire("server.recv_frame") == "kill"
            assert fire("client.send") == ("delay", 0.25)

    def test_count_action_logs_but_changes_nothing(self):
        with fault_scope() as faults:
            faults.add("journal.fsync", "count", count=None)
            assert fire("journal.fsync") is None
            assert fire("journal.fsync") is None
            assert [t.action for t in faults.triggered] == ["count", "count"]

    def test_observers_see_every_hit(self):
        seen = []
        with fault_scope() as faults:
            faults.observe("journal.fsynced", seen.append)
            fire("journal.fsynced", journal="j1")
            fire("journal.fsynced", journal="j2")
        assert seen == [{"journal": "j1"}, {"journal": "j2"}]

    def test_observe_validates_site(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            FailpointRegistry().observe("no.such.site", print)

    def test_triggered_log_records_site_hit_action(self):
        with fault_scope() as faults:
            faults.add("journal.fsync", "skip", nth=2)
            fire("journal.fsync")
            fire("journal.fsync")
            (entry,) = faults.triggered
            assert (entry.site, entry.hit, entry.action) == \
                ("journal.fsync", 2, "skip")

    def test_catalog_covers_every_layer(self):
        sites = set(FAILPOINTS)
        assert {"journal.write_record", "journal.fsync", "store.write",
                "store.read", "server.send_frame", "server.recv_frame",
                "client.send", "client.recv"} <= sites
        assert set(ACTIONS) == {"error", "torn", "skip", "drop", "garble",
                                "delay", "kill", "count"}


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="sync policy"):
            FaultPlan(seed=1, policy="sometimes")
        with pytest.raises(ValueError, match="crash mode"):
            FaultPlan(seed=1, crash_mode="meteor")

    def test_random_plan_is_deterministic(self):
        for seed in (0, 7, 123456):
            assert random_plan(seed).to_dict() == random_plan(seed).to_dict()

    def test_random_plan_fields_in_range(self):
        for seed in range(60):
            plan = random_plan(seed)
            assert plan.policy in SYNC_POLICIES
            assert plan.crash_mode in CRASH_MODES
            assert 5 <= plan.units <= 12
            assert 1 <= plan.stop_at_unit <= plan.units
            assert plan.group_size in (2, 3, 4)
            assert len(plan.rules) <= 2
            for rule in plan.rules:
                assert rule.site in ("journal.write_record", "journal.fsync")

    def test_policy_override(self):
        assert random_plan(11, policy="none").policy == "none"

    def test_dict_round_trip(self):
        plan = random_plan(99)
        assert FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_describe_names_the_experiment(self):
        plan = FaultPlan(seed=42, policy="group", crash_mode="power", rules=[
            FaultRule(site="journal.fsync", action="skip", count=None),
        ])
        text = plan.describe()
        assert "seed=42" in text
        assert "policy=group" in text
        assert "crash=power" in text
        assert "journal.fsync:skip@1+" in text

    def test_build_registry_arms_the_rules(self):
        plan = FaultPlan(seed=1, rules=[
            FaultRule(site="journal.fsync", action="error"),
        ])
        with fault_scope(plan.build_registry()), \
                pytest.raises(InjectedFault):
            fire("journal.fsync")


# ---------------------------------------------------------------------------
# Journal hardening under injected failures (the ISSUE's audit)
# ---------------------------------------------------------------------------


def _schema(db):
    db.make_class("Doc", attributes=[AttributeSpec("Text", domain="string")])


class TestJournalFailStop:
    def test_fsync_error_at_commit_surfaces_and_fail_stops(self, tmp_path):
        db = DurableDatabase(tmp_path, sync_policy="commit")
        _schema(db)
        tm = TransactionManager(db)
        txn = tm.begin()
        with fault_scope() as faults:
            faults.add("journal.fsync", "error")
            uid = tm.make(txn, "Doc", values={"Text": "x"})  # buffered only
            with pytest.raises(StorageError, match="journal IO failed"):
                tm.commit(txn)
        assert db.journal.failed
        assert db.journal.stats_row()["failed"] is True
        # Fail-stop: later mutations refuse instead of appending after
        # a hole...
        with pytest.raises(StorageError, match="fail-stop"):
            db.set_value(uid, "Text", "y")
        # ...and close is a quiet cleanup (the loss already surfaced).
        db.close()
        db.close()  # idempotent

    def test_locks_release_after_failed_commit(self, tmp_path):
        db = DurableDatabase(tmp_path, sync_policy="commit")
        _schema(db)
        tm = TransactionManager(db)
        txn = tm.begin()
        with fault_scope() as faults:
            faults.add("journal.fsync", "error")
            uid = tm.make(txn, "Doc", values={"Text": "x"})
            with pytest.raises(StorageError):
                tm.commit(txn)
        # The transaction could not become durable, but it must not
        # wedge the lock table: a new transaction gets the X lock.
        txn2 = tm.begin()
        tm.protocol.lock_instance(txn2, uid, "write", wait=False)
        db.journal.abandon()

    def test_locks_release_after_failed_abort(self, tmp_path):
        # A checkpoint mid-transaction persists uncommitted state, so the
        # abort MUST journal compensating records; when that write fails
        # the error surfaces (no silent loss) and locks still release.
        db = DurableDatabase(tmp_path, sync_policy="commit")
        _schema(db)
        uid = db.make("Doc", values={"Text": "committed"})
        tm = TransactionManager(db)
        txn = tm.begin()
        tm.write(txn, uid, "Text", "uncommitted")
        db.checkpoint()  # txn batch goes stale
        with fault_scope() as faults:
            faults.add("journal.write_record", "error", count=None)
            with pytest.raises(StorageError):
                tm.abort(txn)
        assert db.journal.failed
        txn2 = tm.begin()
        tm.protocol.lock_instance(txn2, uid, "write", wait=False)
        db.journal.abandon()

    def test_stale_batch_abort_on_failed_journal_refuses_silence(
        self, tmp_path
    ):
        # The defensive branch: a journal that failed *before* the abort
        # seals must raise for a stale batch's compensating records — a
        # quiet drop would leave checkpointed uncommitted state durable.
        db = DurableDatabase(tmp_path, sync_policy="commit")
        _schema(db)
        journal = db.journal

        class _Txn:
            pass

        txn = _Txn()
        batch = journal._txn_batches[txn] = type(journal._auto_batch)()
        batch.put("fake-uid", b"I", b"payload")
        batch.stale = True
        journal.failed = True
        with pytest.raises(StorageError, match="compensating record"):
            journal._on_txn_abort(txn)
        journal.abandon()

    def test_non_stale_abort_drop_is_safe_even_after_failure(self, tmp_path):
        # Nothing of a non-stale batch reached disk, so dropping it on a
        # failed journal is correct and must NOT raise.
        db = DurableDatabase(tmp_path, sync_policy="commit")
        _schema(db)
        tm = TransactionManager(db)
        txn = tm.begin()
        tm.make(txn, "Doc", values={"Text": "x"})
        db.journal.failed = True
        with pytest.raises(StorageError):
            # The undo pass itself cannot journal on a failed journal;
            # the error is typed, and locks release below.
            tm.abort(txn)
        db.journal.abandon()

    def test_close_path_failure_raises_but_still_closes(self, tmp_path):
        db = DurableDatabase(tmp_path, sync_policy="group", group_size=100)
        _schema(db)
        tm = TransactionManager(db)
        txn = tm.begin()
        tm.make(txn, "Doc", values={"Text": "pending"})  # buffered in txn
        journal = db.journal
        with fault_scope() as faults:
            faults.add("journal.write_record", "error")
            with pytest.raises(StorageError, match="close"):
                db.close()
        # The caller learned the shutdown did not persist everything,
        # but the handle is closed and close stays idempotent.
        assert journal.closed
        assert journal._journal_file.closed
        db.close()

    def test_torn_write_discarded_on_recovery(self, tmp_path):
        db = DurableDatabase(tmp_path, sync_policy="always")
        _schema(db)
        survivor = db.make("Doc", values={"Text": "committed"})
        with fault_scope() as faults:
            faults.add("journal.write_record", "torn", torn_bytes=4)
            with pytest.raises(StorageError):
                db.make("Doc", values={"Text": "torn"})
        assert db.journal.failed
        db.journal.abandon()

        recovered = Database()
        Journal.recover_into(recovered, tmp_path)
        live = [inst.uid for inst in recovered.live_instances()]
        assert live == [survivor]
        assert recovered.value(survivor, "Text") == "committed"
        assert recovered.fsck().clean

    def test_read_only_error_is_wire_typed(self):
        assert error_registry()["READ_ONLY"] is ReadOnlyError
        assert issubclass(ReadOnlyError, StorageError)

    def test_lock_conflict_not_shadowed(self, tmp_path):
        # Sanity: the failure paths above rely on lock_instance raising
        # LockConflictError when a lock is genuinely still held.
        db = DurableDatabase(tmp_path, sync_policy="commit")
        _schema(db)
        uid = db.make("Doc", values={"Text": "x"})
        tm = TransactionManager(db)
        txn = tm.begin()
        tm.write(txn, uid, "Text", "mine")
        with pytest.raises(LockConflictError):
            tm.protocol.lock_instance(tm.begin(), uid, "write", wait=False)
        tm.abort(txn)
        db.close()


# ---------------------------------------------------------------------------
# Journal epochs (the stale-journal-after-checkpoint crash window)
# ---------------------------------------------------------------------------


class TestJournalEpochs:
    def test_stale_journal_not_replayed_over_newer_snapshot(self, tmp_path):
        db = DurableDatabase(tmp_path, sync_policy="always")
        _schema(db)
        uid = db.make("Doc", values={"Text": "old"})
        stale = (tmp_path / JOURNAL_NAME).read_bytes()
        db.set_value(uid, "Text", "new")
        db.checkpoint()
        db.close()
        # Crash window: the snapshot was replaced but the old journal
        # survived (the crash hit between os.replace and the unlink).
        (tmp_path / JOURNAL_NAME).write_bytes(stale)

        recovered = Database()
        Journal.recover_into(recovered, tmp_path)
        # Without the epoch header the stale journal would roll the
        # instance back to its pre-checkpoint image.
        assert recovered.value(uid, "Text") == "new"
        assert recovered.fsck().clean

    def test_epoch_advances_per_checkpoint_and_stamps_the_header(
        self, tmp_path
    ):
        db = DurableDatabase(tmp_path, sync_policy="commit")
        _schema(db)  # make_class checkpoints: epoch 1
        first = db.journal.epoch
        db.checkpoint()
        assert db.journal.epoch == first + 1
        header = (tmp_path / JOURNAL_NAME).read_bytes()[:JOURNAL_HEADER_SIZE]
        assert header[:len(JOURNAL_MAGIC)] == JOURNAL_MAGIC
        assert int.from_bytes(header[len(JOURNAL_MAGIC):], "big") == \
            db.journal.epoch
        db.close()

    def test_journal_body_validation(self):
        import struct

        body = JOURNAL_MAGIC + struct.pack(">I", 3) + b"records"
        assert _journal_body(body, 3) == b"records"
        assert _journal_body(body, 2) is None          # stale epoch
        assert _journal_body(JOURNAL_MAGIC[:5], 0) is None   # torn header
        assert _journal_body(JOURNAL_MAGIC + b"\x00", 0) is None
        # Legacy headerless journals replay only against epoch 0.
        assert _journal_body(b"Irecords", 0) == b"Irecords"
        assert _journal_body(b"Irecords", 1) is None
