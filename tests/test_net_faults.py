"""Network fault injection end-to-end: real server, real sockets,
armed failpoints.

Covers the ISSUE's server/client satellites: frame drop/garble/kill on
the wire, client retry classification under injected socket faults,
seeded-jitter reconnect backoff, mid-op disconnect cleanup, deadlock
abort under perturbed timing, and the server's degrade-to-read-only
path when the journal fails persistently.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import Database
from repro.errors import (
    DeadlockError,
    ReadOnlyError,
    StorageError,
    TransactionStateError,
)
from repro.faults import fault_scope
from repro.server import Client, ProtocolError, ServerThread
from repro.storage.durable import DurableDatabase

STRING_ATTR = {"name": "Text", "domain": "string"}


def _doc_schema(client):
    client.make_class("Doc", attributes=[STRING_ATTR])


@pytest.fixture()
def handle():
    with ServerThread(database=Database()) as server:
        yield server


# ---------------------------------------------------------------------------
# Wire-frame faults (server.send_frame / server.recv_frame)
# ---------------------------------------------------------------------------


class TestServerWireFaults:
    def test_garbled_response_is_a_typed_protocol_error(self, handle):
        with Client(port=handle.port) as client:
            with fault_scope() as faults:
                faults.add("server.send_frame", "garble")
                with pytest.raises(ProtocolError):
                    client.ping()

    def test_dropped_request_times_out_client_side(self, handle):
        client = Client(port=handle.port, timeout=0.5, max_retries=0)
        try:
            with fault_scope() as faults:
                faults.add("server.recv_frame", "drop")
                with pytest.raises(TimeoutError, match="no response"):
                    client.ping()
        finally:
            client.close()

    def test_dropped_response_times_out_client_side(self, handle):
        client = Client(port=handle.port, timeout=0.5, max_retries=0)
        try:
            with fault_scope() as faults:
                faults.add("server.send_frame", "drop")
                with pytest.raises(TimeoutError):
                    client.ping()
        finally:
            client.close()

    def test_killed_connection_retryable_op_reconnects(self, handle):
        with Client(port=handle.port, max_retries=4, backoff=0.01) as client:
            with fault_scope() as faults:
                faults.add("server.send_frame", "kill")
                # The first response dies with the connection; ping is
                # retryable, so the client reconnects (fresh handshake)
                # and re-sends.
                assert client.ping() == "pong"
                assert faults.hit_count("server.send_frame") >= 2

    def test_killed_connection_mid_mutation_raises(self, handle):
        with Client(port=handle.port, max_retries=4, backoff=0.01) as client:
            _doc_schema(client)
            with fault_scope() as faults:
                faults.add("server.send_frame", "kill")
                with pytest.raises(ConnectionError, match="may have executed"):
                    client.make("Doc")
            # The make DID execute server-side before the response died —
            # exactly why it must not be blind-retried.
            assert len(client.instances_of("Doc")) == 1

    def test_delayed_frames_only_slow_things_down(self, handle):
        with Client(port=handle.port) as client:
            with fault_scope() as faults:
                faults.add("server.send_frame", "delay", delay_s=0.05,
                           count=None)
                started = time.monotonic()
                assert client.ping() == "pong"
                assert time.monotonic() - started >= 0.05


# ---------------------------------------------------------------------------
# Client-side socket faults (client.send / client.recv)
# ---------------------------------------------------------------------------


class TestClientSocketFaults:
    def test_injected_send_fault_retries_retryable_op(self, handle):
        with Client(port=handle.port, max_retries=4, backoff=0.01) as client:
            with fault_scope() as faults:
                faults.add("client.send", "error")
                assert client.ping() == "pong"
                # Hit 1 errored; the reconnect handshake and the re-sent
                # ping account for the rest.
                assert faults.hit_count("client.send") >= 2

    def test_injected_recv_fault_on_mutation_raises(self, handle):
        with Client(port=handle.port, max_retries=4, backoff=0.01) as client:
            _doc_schema(client)
            with fault_scope() as faults:
                faults.add("client.recv", "error")
                with pytest.raises(ConnectionError, match="may have executed"):
                    client.make("Doc")

    def test_injected_fault_inside_transaction_scope_raises(self, handle):
        with Client(port=handle.port, max_retries=4, backoff=0.01) as client:
            _doc_schema(client)
            client.begin()
            with fault_scope() as faults:
                faults.add("client.send", "error")
                with pytest.raises(ConnectionError,
                                   match="inside a transaction"):
                    client.ping()

    def test_reconnect_backoff_is_jittered_and_seeded(self, handle,
                                                      monkeypatch):
        client = Client(port=handle.port, max_retries=3, backoff=0.05,
                        jitter=0.5, rng=random.Random(7))
        handle.stop()
        delays = []
        monkeypatch.setattr("repro.server.client.time.sleep", delays.append)
        with pytest.raises(ConnectionError, match="could not reach"):
            client.call("ping")
        client.close()

        reference = random.Random(7)
        expected = [
            0.05 * 2 ** (attempt - 1) * (1 - 0.5 * reference.random())
            for attempt in (1, 2, 3)
        ]
        assert delays == pytest.approx(expected)
        for attempt, delay in zip((1, 2, 3), delays, strict=True):
            assert 0 < delay <= 0.05 * 2 ** (attempt - 1)

    def test_zero_jitter_keeps_exact_schedule(self, handle, monkeypatch):
        client = Client(port=handle.port, max_retries=2, backoff=0.04,
                        jitter=0)
        handle.stop()
        delays = []
        monkeypatch.setattr("repro.server.client.time.sleep", delays.append)
        with pytest.raises(ConnectionError):
            client.call("ping")
        client.close()
        assert delays == pytest.approx([0.04, 0.08])


# ---------------------------------------------------------------------------
# Session cleanup and deadlock abort under perturbed timing
# ---------------------------------------------------------------------------


class TestSessionRobustness:
    def test_mid_op_disconnect_releases_locks_and_stays_consistent(self):
        with ServerThread(database=Database(),
                          lock_wait_timeout=5.0) as handle:
            orphan = Client(port=handle.port)
            _doc_schema(orphan)
            uid = orphan.make("Doc", values={"Text": "start"})
            orphan.begin()
            orphan.set_value(uid, "Text", "orphaned")  # X lock held
            orphan.close()  # abrupt: no abort, no goodbye

            survivor = Client(port=handle.port, timeout=10.0)
            try:
                # The server reaps the dead session and aborts its
                # transaction; the queued write below is granted once
                # the X lock releases (well inside the wait timeout).
                survivor.set_value(uid, "Text", "after")
                assert survivor.value(uid, "Text") == "after"
                report = survivor.call("check", plane="fsck")
                assert report["ok"], report
            finally:
                survivor.close()

    def test_deadlock_abort_under_injected_frame_delay(self):
        # The classic crossing writers, with every server response
        # delayed a little to perturb timing: the wait-for cycle must
        # still resolve to exactly one DeadlockError victim.
        with ServerThread(database=Database()) as handle:
            c1 = Client(port=handle.port, timeout=30.0)
            c2 = Client(port=handle.port, timeout=30.0)
            try:
                _doc_schema(c1)
                a = c1.make("Doc", values={"Text": "a"})
                b = c1.make("Doc", values={"Text": "b"})
                with fault_scope() as faults:
                    faults.add("server.send_frame", "delay", delay_s=0.005,
                               count=None)
                    c1.begin()
                    c2.begin()
                    c1.set_value(a, "Text", "a1")  # T1: X on a
                    c2.set_value(b, "Text", "b1")  # T2: X on b

                    outcome = {}

                    def crossing(client, uid, key):
                        try:
                            client.set_value(uid, "Text", "x")
                            outcome[key] = "ok"
                        except DeadlockError as error:
                            outcome[key] = error

                    t1 = threading.Thread(target=crossing, args=(c1, b, "t1"))
                    t2 = threading.Thread(target=crossing, args=(c2, a, "t2"))
                    t1.start()
                    time.sleep(0.3)
                    t2.start()
                    t1.join(timeout=15.0)
                    t2.join(timeout=15.0)

                victims = [key for key, value in outcome.items()
                           if isinstance(value, DeadlockError)]
                assert len(victims) == 1, f"one victim expected: {outcome}"
                survivor = "t1" if victims == ["t2"] else "t2"
                assert outcome[survivor] == "ok"
                victim_client = c1 if victims == ["t1"] else c2
                survivor_client = c2 if victims == ["t1"] else c1
                with pytest.raises(TransactionStateError):
                    victim_client.commit()
                survivor_client.commit()
            finally:
                c1.close()
                c2.close()


# ---------------------------------------------------------------------------
# Degrade to read-only on persistent journal failure
# ---------------------------------------------------------------------------


class TestReadOnlyDegrade:
    def test_journal_failure_degrades_to_typed_read_only(self, tmp_path):
        db = DurableDatabase(tmp_path / "store", sync_policy="commit")
        with ServerThread(database=db) as handle:
            client = Client(port=handle.port)
            try:
                _doc_schema(client)
                uid = client.make("Doc", values={"Text": "durable"})

                with fault_scope() as faults:
                    faults.add("journal.fsync", "error", count=None)
                    client.call("begin")
                    client.call("set_value", uid=uid, attribute="Text",
                                value="lost")
                    # The commit cannot be made durable: a typed
                    # StorageError reaches the client, never a silent ack.
                    with pytest.raises(StorageError):
                        client.call("commit")

                # The server survived the failure in read-only mode:
                # mutations are rejected with the typed wire error...
                with pytest.raises(ReadOnlyError, match="read-only"):
                    client.set_value(uid, "Text", "rejected")
                with pytest.raises(ReadOnlyError):
                    client.make("Doc")
                with pytest.raises(ReadOnlyError):
                    client.query('(instances "Doc")')
                # ...reads keep being served from the in-memory state.
                # That state includes the failed commit's effects (the
                # client was TOLD the commit is not durable); read-only
                # mode bounds the divergence, and a restart below rolls
                # it back to the durable prefix.
                assert client.value(uid, "Text") == "lost"
                assert client.ping() == "pong"
                # The stats op reports the degraded state.
                stats = client.stats()
                assert stats["server"]["read_only"] is True
                assert stats["durability"]["failed"] is True
            finally:
                client.close()
        db.journal.abandon()

        # Restart: recovery is clean and lands on a captured state.  The
        # failed commit's batch was flushed (marker included) before the
        # fsync raised, so a process restart still sees it — it is a
        # *power* cut that would lose it, which is CrashSim territory
        # (tests/test_crashsim.py covers that with the same fault).
        from repro.storage.journal import Journal

        recovered = Database()
        Journal.recover_into(recovered, tmp_path / "store")
        assert recovered.value(uid, "Text") == "lost"
        assert recovered.fsck().clean

    def test_read_only_server_still_accepts_new_sessions(self, tmp_path):
        db = DurableDatabase(tmp_path / "store", sync_policy="commit")
        with ServerThread(database=db) as handle:
            first = Client(port=handle.port)
            _doc_schema(first)
            uid = first.make("Doc", values={"Text": "kept"})
            with fault_scope() as faults:
                faults.add("journal.fsync", "error", count=None)
                with pytest.raises(StorageError):
                    first.make("Doc", values={"Text": "lost"})
            first.close()

            late = Client(port=handle.port)
            try:
                assert late.value(uid, "Text") == "kept"
                with pytest.raises(ReadOnlyError):
                    late.set_value(uid, "Text", "no")
            finally:
                late.close()
