"""Tests for the check-out / check-in model (long-duration transactions)."""

import pytest

from repro import AttributeSpec, Database, LockConflictError, SetOf
from repro.errors import ConcurrencyError
from repro.txn.checkout import CheckoutManager


@pytest.fixture
def env():
    database = Database()
    database.make_class("Pin", attributes=[
        AttributeSpec("Signal", domain="string"),
    ])
    database.make_class("Cell", attributes=[
        AttributeSpec("Name", domain="string"),
        AttributeSpec("Pins", domain=SetOf("Pin"), composite=True,
                      exclusive=True, dependent=True),
    ])
    database.make_class("Chip", attributes=[
        AttributeSpec("Rev", domain="integer", init=1),
        AttributeSpec("Cells", domain=SetOf("Cell"), composite=True,
                      exclusive=True, dependent=True),
    ])
    pins = [database.make("Pin", values={"Signal": f"s{i}"}) for i in range(2)]
    cell = database.make("Cell", values={"Name": "alu", "Pins": pins})
    chip = database.make("Chip", values={"Cells": [cell]})
    manager = CheckoutManager(database)
    return database, manager, chip, cell, pins


class TestCheckout:
    def test_workspace_is_a_private_copy(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        assert checkout.working_root != chip
        working_cell = checkout.workspace_of(cell)
        assert working_cell is not None and working_cell != cell
        # Editing the workspace does not touch the original.
        database.set_value(working_cell, "Name", "alu-v2")
        assert database.value(cell, "Name") == "alu"
        manager.abandon(checkout)

    def test_write_checkout_excludes_others(self, env):
        database, manager, chip, cell, pins = env
        first = manager.checkout("alice", chip)
        with pytest.raises(LockConflictError):
            manager.checkout("bob", chip)
        manager.abandon(first)
        second = manager.checkout("bob", chip)  # free after release
        manager.abandon(second)

    def test_read_checkouts_coexist(self, env):
        database, manager, chip, cell, pins = env
        a = manager.checkout("alice", chip, intent="read")
        b = manager.checkout("bob", chip, intent="read")
        manager.abandon(a)
        manager.abandon(b)

    def test_disjoint_composites_check_out_concurrently(self, env):
        database, manager, chip, cell, pins = env
        other_chip = database.make("Chip")
        a = manager.checkout("alice", chip)
        b = manager.checkout("bob", other_chip)
        manager.abandon(a)
        manager.abandon(b)

    def test_abandon_leaves_original_untouched(self, env):
        database, manager, chip, cell, pins = env
        before = len(database)
        checkout = manager.checkout("alice", chip)
        working_cell = checkout.workspace_of(cell)
        database.set_value(working_cell, "Name", "scrapped")
        database.delete(checkout.workspace_of(pins[0]))
        manager.abandon(checkout)
        assert len(database) == before  # workspace fully destroyed
        assert database.value(cell, "Name") == "alu"
        assert database.exists(pins[0])
        database.validate()


class TestCheckin:
    def test_scalar_edit_merges(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        database.set_value(checkout.workspace_of(cell), "Name", "alu-v2")
        database.set_value(checkout.working_root, "Rev", 2)
        manager.checkin(checkout)
        assert database.value(cell, "Name") == "alu-v2"
        assert database.value(chip, "Rev") == 2
        database.validate()

    def test_component_added_in_workspace_adopted(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        working_cell = checkout.workspace_of(cell)
        new_pin = database.make("Pin", values={"Signal": "carry"},
                                parents=[(working_cell, "Pins")])
        manager.checkin(checkout)
        signals = sorted(
            database.value(p, "Signal") for p in database.value(cell, "Pins")
        )
        assert signals == ["carry", "s0", "s1"]
        assert database.exists(new_pin)  # adopted, not copied
        assert database.parents_of(new_pin) == [cell]
        database.validate()

    def test_component_removed_in_workspace_deleted(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        working_cell = checkout.workspace_of(cell)
        working_pin = checkout.workspace_of(pins[0])
        database.remove_from(working_cell, "Pins", working_pin)
        manager.checkin(checkout)
        # The reference was dependent: the removed original is deleted.
        assert not database.exists(pins[0])
        assert database.value(cell, "Pins") == [pins[1]]
        database.validate()

    def test_whole_subtree_deleted_in_workspace(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        database.delete(checkout.workspace_of(cell))  # cascades to its pins
        manager.checkin(checkout)
        assert not database.exists(cell)
        assert not any(database.exists(p) for p in pins)
        assert database.value(chip, "Cells") == []
        database.validate()

    def test_workspace_destroyed_after_checkin(self, env):
        database, manager, chip, cell, pins = env
        before = len(database)
        checkout = manager.checkout("alice", chip)
        database.set_value(checkout.workspace_of(cell), "Name", "alu-v2")
        manager.checkin(checkout)
        assert len(database) == before
        assert not database.exists(checkout.working_root)

    def test_lock_released_after_checkin(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        manager.checkin(checkout)
        other = manager.checkout("bob", chip)
        manager.abandon(other)

    def test_read_checkout_cannot_checkin(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip, intent="read")
        with pytest.raises(ConcurrencyError):
            manager.checkin(checkout)
        manager.abandon(checkout)

    def test_double_checkin_rejected(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        manager.checkin(checkout)
        with pytest.raises(ConcurrencyError):
            manager.checkin(checkout)

    def test_shared_memberships_synchronized(self, env):
        database, manager, chip, cell, pins = env
        database.make_class("Library", attributes=[
            AttributeSpec("Names", domain=SetOf("string")),
        ])
        database.make_class("Board", attributes=[
            AttributeSpec("Chips", domain=SetOf("Chip"), composite=True,
                          exclusive=False, dependent=False),
            AttributeSpec("Tags", domain=SetOf("string")),
        ])
        board = database.make("Board", values={"Chips": [chip],
                                               "Tags": ["rev-a"]})
        checkout = manager.checkout("alice", board)
        database.insert_into(checkout.working_root, "Tags", "verified")
        manager.checkin(checkout)
        assert set(database.value(board, "Tags")) == {"rev-a", "verified"}
        assert database.value(board, "Chips") == [chip]  # shared: unchanged
        database.validate()


class TestWorkspaceHygiene:
    def test_abandon_destroys_created_then_detached_objects(self, env):
        # Regression (found by the property machine): a pin created in the
        # workspace and then dropped from its set must not outlive abandon.
        database, manager, chip, cell, pins = env
        before = len(database)
        checkout = manager.checkout("alice", chip)
        working_cell = checkout.workspace_of(cell)
        stray = database.make("Pin", values={"Signal": "stray"},
                              parents=[(working_cell, "Pins")])
        database.remove_from(working_cell, "Pins", stray)
        manager.abandon(checkout)
        assert not database.exists(stray)
        assert len(database) == before
        database.validate()

    def test_checkin_destroys_unadopted_workspace_objects(self, env):
        database, manager, chip, cell, pins = env
        before = len(database)
        checkout = manager.checkout("alice", chip)
        working_cell = checkout.workspace_of(cell)
        stray = database.make("Pin", values={"Signal": "stray"},
                              parents=[(working_cell, "Pins")])
        database.remove_from(working_cell, "Pins", stray)  # not adopted
        manager.checkin(checkout)
        assert not database.exists(stray)
        assert len(database) == before
        database.validate()

    def test_adopted_objects_survive_workspace_destruction(self, env):
        database, manager, chip, cell, pins = env
        checkout = manager.checkout("alice", chip)
        working_cell = checkout.workspace_of(cell)
        keeper = database.make("Pin", values={"Signal": "keeper"},
                               parents=[(working_cell, "Pins")])
        manager.checkin(checkout)
        assert database.exists(keeper)
        assert database.parents_of(keeper) == [cell]
