"""Multi-process crash plans: one seeded kill per 2PC state.

A thin slice of the full sweep (``repro-shardsweep``, run in CI with
100+ plans): seven plans — one per (target, site) pair — each spawning a
real cluster, arming the kill, driving transactions until it fires, and
holding the recovered cluster to the committed-prefix oracle from
:mod:`repro.shard.crashsim`.
"""

from __future__ import annotations

import pytest

from repro.shard.crashsim import (
    ROUTER_SITES,
    WORKER_SITES,
    ShardCrashSim,
    random_plans,
)

#: One full cycle of the (target, site) grid.
GRID = len(WORKER_SITES) + len(ROUTER_SITES)
PLANS = random_plans(count=GRID, seed=1106)


@pytest.mark.parametrize(
    "plan", PLANS, ids=[f"{p.target}@{p.site}" for p in PLANS]
)
def test_crash_plan_recovers_committed_prefix(tmp_path, plan):
    result = ShardCrashSim(tmp_path, plan).run()
    assert result.ok, "; ".join(result.problems)
    assert result.kill_fired, (
        f"plan [{plan.describe()}] never reached its kill site — "
        f"acked {result.acked} of {plan.transactions} transactions"
    )


def test_plan_generation_covers_every_site():
    plans = random_plans(count=GRID * 3, seed=7)
    covered = {(p.target.split(":")[0], p.site) for p in plans}
    assert covered == (
        {("worker", s) for s in WORKER_SITES}
        | {("router", s) for s in ROUTER_SITES}
    )
