"""Tests for flag-based change notification ([CHOU88])."""

import pytest

from repro import AttributeSpec, Database, SetOf
from repro.versions import VersionManager
from repro.versions.notify import ChangeNotifier


@pytest.fixture
def env():
    database = Database()
    database.make_class("Module", versionable=True, attributes=[
        AttributeSpec("Gates", domain="integer", init=0),
    ])
    database.make_class("Design", versionable=True, attributes=[
        AttributeSpec("Modules", domain=SetOf("Module"), composite=True,
                      exclusive=True, dependent=False),
    ])
    database.make_class("Testbench", attributes=[
        AttributeSpec("Target", domain="Design"),   # weak dynamic reference
    ])
    manager = VersionManager(database)
    notifier = ChangeNotifier(database, manager)
    return database, manager, notifier


class TestEventCapture:
    def test_derive_recorded(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        mod_v1 = manager.derive(mod_v0).new_version
        events = notifier.events_for(g_mod)
        assert any(e.kind == "derived" and e.subject == mod_v1 for e in events)

    def test_update_recorded(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        database.set_value(mod_v0, "Gates", 99)
        events = notifier.events_for(g_mod)
        assert any(e.kind == "updated" and e.subject == mod_v0 for e in events)

    def test_deletions_recorded(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        mod_v1 = manager.derive(mod_v0).new_version
        manager.delete_version(mod_v0)
        kinds = [e.kind for e in notifier.events_for(g_mod)]
        assert "version-deleted" in kinds
        manager.delete_version(mod_v1)
        kinds = [e.kind for e in notifier.events_for(g_mod)]
        assert "generic-deleted" in kinds

    def test_sequence_is_global_and_ordered(self, env):
        database, manager, notifier = env
        g_a, a0 = manager.create("Module")
        g_b, b0 = manager.create("Module")
        manager.derive(a0)
        manager.derive(b0)
        seqs = [e.seq for g in (g_a, g_b) for e in notifier.events_for(g)]
        assert len(set(seqs)) == len(seqs)


class TestPendingNotifications:
    def test_dynamic_reference_flagged(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        g_design, design_v0 = manager.create("Design", values={"Modules": [g_mod]})
        notifier.acknowledge(design_v0)
        assert not notifier.has_pending(design_v0)
        manager.derive(mod_v0)
        pending = notifier.pending(design_v0)
        assert len(pending) == 1 and pending[0].kind == "derived"

    def test_static_reference_flagged(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        g_design, design_v0 = manager.create("Design",
                                             values={"Modules": [mod_v0]})
        notifier.acknowledge(design_v0)
        database.set_value(mod_v0, "Gates", 10)
        assert notifier.has_pending(design_v0)

    def test_weak_reference_flagged(self, env):
        database, manager, notifier = env
        g_design, design_v0 = manager.create("Design")
        bench = database.make("Testbench", values={"Target": g_design})
        notifier.acknowledge(bench)
        manager.derive(design_v0)
        assert notifier.has_pending(bench)

    def test_acknowledge_clears(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        g_design, design_v0 = manager.create("Design", values={"Modules": [g_mod]})
        manager.derive(mod_v0)
        assert notifier.has_pending(design_v0)
        notifier.acknowledge(design_v0)
        assert not notifier.has_pending(design_v0)
        manager.derive(manager.default_version(g_mod))
        assert notifier.has_pending(design_v0)  # new events re-flag

    def test_unrelated_changes_not_flagged(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        g_other, other_v0 = manager.create("Module")
        g_design, design_v0 = manager.create("Design", values={"Modules": [g_mod]})
        notifier.acknowledge(design_v0)
        manager.derive(other_v0)
        assert not notifier.has_pending(design_v0)

    def test_recursive_pending_through_composite(self, env):
        database, manager, notifier = env
        # A Design version references a module; a wrapper object holds the
        # design as a component.  Recursive pending sees module changes.
        database.make_class("Project", attributes=[
            AttributeSpec("Designs", domain=SetOf("Design"), composite=True,
                          exclusive=False, dependent=False),
        ])
        g_mod, mod_v0 = manager.create("Module")
        g_design, design_v0 = manager.create("Design", values={"Modules": [g_mod]})
        project = database.make("Project", values={"Designs": [design_v0]})
        notifier.acknowledge(project)
        manager.derive(mod_v0)
        assert not notifier.has_pending(project)            # not a direct ref
        assert notifier.has_pending(project, recursive=True)

    def test_watchers_of(self, env):
        database, manager, notifier = env
        g_mod, mod_v0 = manager.create("Module")
        g_d1, d1 = manager.create("Design", values={"Modules": [g_mod]})
        g_d2, d2 = manager.create("Design")
        manager.derive(mod_v0)
        watchers = notifier.watchers_of(g_mod)
        assert d1 in watchers and d2 not in watchers
        notifier.acknowledge(d1)
        assert d1 not in notifier.watchers_of(g_mod)
