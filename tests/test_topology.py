"""Tests for Topology Rules 1-4 and the Make-Component Rule (paper 2.2)."""

import pytest

from repro import AttributeSpec, SetOf, TopologyError
from repro.core.identity import UID
from repro.core.instance import Instance
from repro.core.topology import (
    check_attribute_change_feasible,
    check_make_component,
    check_topology_rules,
)


def _obj():
    return Instance(UID(1, "C"), "C")


def _add(obj, n, dependent, exclusive):
    obj.add_reverse_reference(UID(n, "P"), dependent, exclusive, f"a{n}")


class TestTopologyRules:
    def test_empty_ok(self):
        check_topology_rules(_obj())

    def test_single_of_each_kind_ok(self):
        for dependent, exclusive in [(True, True), (False, True),
                                     (True, False), (False, False)]:
            obj = _obj()
            _add(obj, 10, dependent, exclusive)
            check_topology_rules(obj)

    def test_rule1_two_independent_exclusive(self):
        obj = _obj()
        _add(obj, 10, False, True)
        _add(obj, 11, False, True)
        with pytest.raises(TopologyError) as excinfo:
            check_topology_rules(obj)
        assert excinfo.value.rule == 1

    def test_rule1_two_dependent_exclusive(self):
        obj = _obj()
        _add(obj, 10, True, True)
        _add(obj, 11, True, True)
        with pytest.raises(TopologyError) as excinfo:
            check_topology_rules(obj)
        assert excinfo.value.rule == 1

    def test_rule2_mixed_exclusive(self):
        obj = _obj()
        _add(obj, 10, True, True)
        _add(obj, 11, False, True)
        with pytest.raises(TopologyError) as excinfo:
            check_topology_rules(obj)
        assert excinfo.value.rule == 2

    def test_rule3_exclusive_plus_shared(self):
        obj = _obj()
        _add(obj, 10, True, True)
        _add(obj, 11, True, False)
        with pytest.raises(TopologyError) as excinfo:
            check_topology_rules(obj)
        assert excinfo.value.rule == 3

    def test_many_shared_ok(self):
        obj = _obj()
        for n in range(10, 20):
            _add(obj, n, n % 2 == 0, False)
        check_topology_rules(obj)


class TestMakeComponentRule:
    def _spec(self, exclusive):
        return AttributeSpec(
            "kids", domain="C", composite=True, exclusive=exclusive
        )

    def test_exclusive_into_fresh_object(self):
        check_make_component(_obj(), self._spec(True))

    def test_exclusive_rejected_when_any_composite_ref(self):
        obj = _obj()
        _add(obj, 10, False, False)  # even a shared ref blocks exclusive
        with pytest.raises(TopologyError):
            check_make_component(obj, self._spec(True))

    def test_shared_rejected_when_exclusive_ref(self):
        obj = _obj()
        _add(obj, 10, True, True)
        with pytest.raises(TopologyError):
            check_make_component(obj, self._spec(False))

    def test_shared_allowed_when_shared_refs(self):
        obj = _obj()
        _add(obj, 10, False, False)
        check_make_component(obj, self._spec(False))

    def test_weak_attribute_unconstrained(self):
        # Topology Rule 4: weak references are never constrained.
        obj = _obj()
        _add(obj, 10, True, True)
        weak = AttributeSpec("ref", domain="C")
        check_make_component(obj, weak)


class TestRule4WeakReferences:
    def test_weak_references_coexist_with_composite(self, db):
        db.make_class("Leaf")
        db.make_class("Holder", attributes=[
            AttributeSpec("part", domain="Leaf", composite=True),
            AttributeSpec("see_also", domain="Leaf"),
        ])
        leaf = db.make("Leaf")
        h1 = db.make("Holder", values={"part": leaf, "see_also": leaf})
        h2 = db.make("Holder", values={"see_also": leaf})
        h3 = db.make("Holder", values={"see_also": leaf})
        # One composite reference and any number of weak ones.
        assert db.parents_of(leaf) == [h1]
        assert db.value(h2, "see_also") == leaf and db.value(h3, "see_also") == leaf
        db.validate()


class TestAttributeChangeFeasibility:
    def test_to_exclusive_needs_single_ref(self):
        obj = _obj()
        _add(obj, 10, False, False)
        _add(obj, 11, False, False)
        assert check_attribute_change_feasible(obj, to_exclusive=True) is not None

    def test_to_exclusive_rejects_shared(self):
        obj = _obj()
        _add(obj, 10, False, False)
        assert check_attribute_change_feasible(obj, to_exclusive=True) is not None

    def test_to_shared_rejects_exclusive(self):
        obj = _obj()
        _add(obj, 10, False, True)
        assert check_attribute_change_feasible(obj, to_exclusive=False) is not None

    def test_clean_object_feasible_both_ways(self):
        assert check_attribute_change_feasible(_obj(), to_exclusive=True) is None
        assert check_attribute_change_feasible(_obj(), to_exclusive=False) is None


class TestMultiParentTopology:
    def test_multi_parent_make_requires_shared(self, db):
        # Paper 2.3: simultaneous multiple composite parents must all be
        # shared composite attributes (Topology Rule 3).
        db.make_class("Item")
        db.make_class("ExclusiveOwner", attributes=[
            AttributeSpec("kids", domain=SetOf("Item"), composite=True,
                          exclusive=True),
        ])
        db.make_class("SharedOwner", attributes=[
            AttributeSpec("kids", domain=SetOf("Item"), composite=True,
                          exclusive=False),
        ])
        e = db.make("ExclusiveOwner")
        s = db.make("SharedOwner")
        with pytest.raises(TopologyError):
            db.make("Item", parents=[(e, "kids"), (s, "kids")])
        # Nothing was created or wired by the failed make.
        assert db.value(e, "kids") == [] and db.value(s, "kids") == []
        db.validate()

    def test_multi_shared_parents_ok(self, db):
        db.make_class("Item")
        db.make_class("SharedOwner", attributes=[
            AttributeSpec("kids", domain=SetOf("Item"), composite=True,
                          exclusive=False),
        ])
        s1, s2, s3 = (db.make("SharedOwner") for _ in range(3))
        item = db.make("Item", parents=[(s1, "kids"), (s2, "kids"), (s3, "kids")])
        assert set(db.parents_of(item)) == {s1, s2, s3}
        db.validate()

    def test_one_exclusive_parent_ok(self, db):
        db.make_class("Item")
        db.make_class("ExclusiveOwner", attributes=[
            AttributeSpec("kids", domain=SetOf("Item"), composite=True,
                          exclusive=True),
        ])
        e = db.make("ExclusiveOwner")
        item = db.make("Item", parents=[(e, "kids")])
        assert db.parents_of(item) == [e]

    def test_weak_parent_pairs_not_constrained(self, db):
        db.make_class("Item")
        db.make_class("WeakOwner", attributes=[
            AttributeSpec("refs", domain=SetOf("Item")),
        ])
        db.make_class("ExclusiveOwner", attributes=[
            AttributeSpec("kids", domain=SetOf("Item"), composite=True,
                          exclusive=True),
        ])
        w = db.make("WeakOwner")
        e = db.make("ExclusiveOwner")
        # One composite + one weak parent pair is fine.
        item = db.make("Item", parents=[(e, "kids"), (w, "refs")])
        assert db.parents_of(item) == [e]
        assert db.value(w, "refs") == [item]
