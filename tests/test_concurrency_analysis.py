"""The concurrency analysis pass (analysis plane 3).

Three surfaces under test:

* ``repro.analysis.lockdep`` — the runtime lock-order recorder must
  report a seeded lock-order inversion *from a run that never
  deadlocked* (the lockdep premise), with both witnesses' acquisition
  stacks, and must stay silent for compatible or consistently-ordered
  workloads.
* ``repro.analysis.locklint`` — the static template analyzer must
  predict the same hazards from declarative transaction templates
  without executing anything.
* ``repro.analysis.codelint`` — the AST discipline linter must flag
  seeded violations of the ``_operation()``/``txn_context``/lock-state/
  journal-hook conventions (with ``file:line`` anchors) and must pass
  clean over the real ``src/repro`` tree.

Plus direct unit tests for the wait-for-graph machinery in
``repro.locking.deadlock`` and the server's ``check`` op extension.
"""

from __future__ import annotations

import pytest

from repro.analysis.codelint import RULES, lint_package, lint_source
from repro.analysis.lockdep import (
    Acquisition,
    LockOrderGraph,
    LockOrderRecorder,
    conflicts_with_any,
)
from repro.analysis.locklint import (
    TransactionTemplate,
    analyze_templates,
    plan_template,
    resolve_target,
)
from repro.core.database import Database
from repro.errors import DeadlockError
from repro.locking.deadlock import DeadlockDetector, choose_victim, find_cycle
from repro.locking.modes import LockMode
from repro.locking.protocol import CompositeLockingProtocol
from repro.locking.table import LockTable
from repro.txn.transaction import Transaction
from repro.workloads.parts import build_assembly
from repro.workloads.txmix import disjoint_writers


def _assembly_db(composites=3):
    db = Database()
    roots = [
        build_assembly(db, depth=2, fanout=2).root for _ in range(composites)
    ]
    return db, roots


# ---------------------------------------------------------------------------
# Lockdep: the runtime recorder
# ---------------------------------------------------------------------------


class TestLockOrderRecorder:
    def test_seeded_inversion_without_deadlock_is_reported(self):
        """The acceptance scenario: two transactions lock two composites
        in opposite orders but never overlap in time — zero blocks, zero
        deadlocks — and lockdep still reports the latent inversion with
        both witnesses' stacks."""
        db, roots = _assembly_db()
        table = LockTable()
        recorder = LockOrderRecorder(table)
        protocol = CompositeLockingProtocol(db, table)
        for ordering in ((roots[0], roots[1]), (roots[1], roots[0])):
            txn = Transaction()
            for root in ordering:
                # wait=False raises on any conflict: this run provably
                # never blocks, so no runtime deadlock was possible.
                for resource, mode in protocol.plan_composite(root, "write"):
                    table.acquire(txn, resource, mode, wait=False)
            table.release_all(txn)

        assert table.stats.blocks == 0
        assert table.stats.denials == 0
        report = recorder.analyze()
        inversions = report.by_rule("LOCKDEP-INVERSION")
        assert len(inversions) == 1
        finding = inversions[0]
        forward = finding.detail["witness_forward"]
        reverse = finding.detail["witness_reverse"]
        assert forward["txn"] != reverse["txn"]
        # Witness acquisition stacks point at this test, not the lock
        # machinery.
        assert forward["acquire_stack"]
        assert reverse["acquire_stack"]
        assert any(
            "test_concurrency_analysis" in frame
            for frame in forward["acquire_stack"]
        )

    def test_shared_opposite_order_is_not_an_inversion(self):
        """S/S in opposite orders cannot deadlock: no finding."""
        table = LockTable()
        recorder = LockOrderRecorder(table)
        for name, order in (("T1", ("a", "b")), ("T2", ("b", "a"))):
            for resource in order:
                table.acquire(name, resource, LockMode.S)
            table.release_all(name)
        assert recorder.analyze().clean

    def test_conflicting_opposite_order_is_reported(self):
        table = LockTable()
        recorder = LockOrderRecorder(table)
        table.acquire("T1", "a", LockMode.X)
        table.acquire("T1", "b", LockMode.X)
        table.release_all("T1")
        table.acquire("T2", "b", LockMode.X)
        table.acquire("T2", "a", LockMode.X)
        table.release_all("T2")
        report = recorder.analyze()
        assert [f.rule for f in report.errors] == ["LOCKDEP-INVERSION"]

    def test_upgrade_hazard_is_reported(self):
        """S then X on the same resource: two concurrent instances of the
        pattern deadlock on the upgrade."""
        table = LockTable()
        recorder = LockOrderRecorder(table)
        table.acquire("T1", "a", LockMode.S)
        table.acquire("T1", "a", LockMode.X)
        table.release_all("T1")
        report = recorder.analyze()
        upgrades = report.by_rule("LOCKDEP-UPGRADE")
        assert len(upgrades) == 1
        assert upgrades[0].detail["holds"] == ["S"]
        assert upgrades[0].detail["acquires"] == "X"

    def test_long_cycle_is_reported_as_warning(self):
        graph = LockOrderGraph()
        trace = 0
        for order in (("a", "b"), ("b", "c"), ("c", "a")):
            trace += 1
            graph.add_trace(
                f"T{trace}",
                [
                    Acquisition(resource=order[0], mode=LockMode.X, order=0),
                    Acquisition(resource=order[1], mode=LockMode.X, order=1),
                ],
            )
        report = graph.analyze()
        assert report.by_rule("LOCKDEP-CYCLE")
        assert not report.errors  # conservative: warning, not error

    def test_open_traces_analyzed_non_destructively(self):
        """analyze() during a transaction sees its acquisitions, and the
        final analyze() after release is identical — no double fold."""
        table = LockTable()
        recorder = LockOrderRecorder(table)
        table.acquire("T1", "a", LockMode.X)
        table.acquire("T1", "b", LockMode.X)
        table.release_all("T1")
        table.acquire("T2", "b", LockMode.X)
        table.acquire("T2", "a", LockMode.X)
        mid = recorder.analyze()  # T2 still open
        assert mid.by_rule("LOCKDEP-INVERSION")
        assert recorder.graph.traces == 1  # open trace not folded
        table.release_all("T2")
        final = recorder.analyze()
        assert len(final.by_rule("LOCKDEP-INVERSION")) == 1
        assert recorder.graph.traces == 2

    def test_detach_stops_recording(self):
        table = LockTable()
        recorder = LockOrderRecorder(table)
        recorder.detach()
        assert recorder not in table.observers
        table.acquire("T1", "a", LockMode.X)
        table.release_all("T1")
        assert recorder.transactions_recorded == 0

    def test_stack_capture_can_be_disabled(self):
        table = LockTable()
        recorder = LockOrderRecorder(table, capture_stacks=False)
        table.acquire("T1", "a", LockMode.X)
        table.acquire("T1", "b", LockMode.X)
        table.release_all("T1")
        table.acquire("T2", "b", LockMode.X)
        table.acquire("T2", "a", LockMode.X)
        table.release_all("T2")
        finding = recorder.analyze().by_rule("LOCKDEP-INVERSION")[0]
        assert finding.detail["witness_forward"]["acquire_stack"] == []

    def test_conflicts_with_any_matches_matrix(self):
        assert conflicts_with_any(LockMode.X, {LockMode.S})
        assert not conflicts_with_any(LockMode.S, {LockMode.S})
        assert not conflicts_with_any(LockMode.IS, {LockMode.IX})
        assert conflicts_with_any(LockMode.IXO, {LockMode.IS})


# ---------------------------------------------------------------------------
# Locklint: static template analysis
# ---------------------------------------------------------------------------


class TestTemplateAnalysis:
    def test_opposite_order_templates_predicted_as_inversion(self):
        db, roots = _assembly_db()
        templates = [
            TransactionTemplate("fwd", [
                ("update_composite", roots[0]),
                ("update_composite", roots[1]),
            ]),
            TransactionTemplate("rev", [
                ("update_composite", roots[1]),
                ("update_composite", roots[0]),
            ]),
        ]
        report = analyze_templates(db, templates)
        assert report.checked == 2
        inversions = report.by_rule("LOCK-INVERSION")
        assert len(inversions) == 1
        txns = {
            inversions[0].detail["witness_forward"]["txn"],
            inversions[0].detail["witness_reverse"]["txn"],
        }
        assert txns == {"fwd", "rev"}

    def test_disjoint_writers_are_clean(self):
        """The paper's headline concurrency claim survives the analyzer:
        writers of different composites have no ordering hazard."""
        db, roots = _assembly_db()
        report = analyze_templates(db, disjoint_writers(roots))
        assert report.clean
        assert report.checked == len(roots)

    def test_read_then_update_same_root_is_an_upgrade(self):
        db, roots = _assembly_db()
        template = TransactionTemplate("rw", [
            ("read_composite", roots[0]),
            ("update_composite", roots[0]),
        ])
        report = analyze_templates(db, [template])
        upgrades = report.by_rule("LOCK-UPGRADE")
        assert upgrades
        assert upgrades[0].detail["acquires"] == "X"

    def test_unknown_action_and_target_are_template_errors(self):
        db, roots = _assembly_db()
        report = analyze_templates(
            db,
            [[("frobnicate", roots[0]), ("read_composite", "NoSuchClass")]],
        )
        rules = [f.rule for f in report.findings]
        assert rules == ["LOCK-TEMPLATE", "LOCK-TEMPLATE"]
        assert report.findings[0].detail["step"] == 0
        assert report.findings[1].detail["step"] == 1

    def test_target_resolution_forms(self):
        db, roots = _assembly_db()
        root = roots[0]
        assert resolve_target(db, root) == root
        assert resolve_target(db, root.number) == root
        assert resolve_target(db, str(root)) == root
        representative = resolve_target(db, root.class_name)
        assert representative.class_name == root.class_name
        with pytest.raises(LookupError):
            resolve_target(db, "NoSuchClass")
        with pytest.raises(LookupError):
            resolve_target(db, 10**9)

    def test_plan_includes_component_class_intention_locks(self):
        """The predicted trace covers the implicit ISO/IXO-family locks
        on composite component classes, not just the root."""
        db, roots = _assembly_db()
        template = TransactionTemplate(
            "w", [("update_composite", roots[0])]
        )
        acquisitions = plan_template(db, template, "composite")
        modes = {acq.mode for acq in acquisitions}
        assert LockMode.X in modes  # the root instance
        assert modes & {LockMode.IXO, LockMode.IXOS}  # component classes

    def test_step_dict_and_json_shapes_accepted(self):
        db, roots = _assembly_db()
        report = analyze_templates(db, [
            {"name": "json-form", "steps": [
                {"action": "read_composite", "target": str(roots[0])},
            ]},
        ])
        assert report.clean
        assert report.checked == 1


# ---------------------------------------------------------------------------
# Codelint: the AST discipline linter
# ---------------------------------------------------------------------------


class TestCodeLint:
    def test_real_tree_is_clean(self):
        """The acceptance criterion CI enforces: the shipped package obeys
        its own discipline."""
        report = lint_package()
        assert report.checked > 50
        assert report.clean, report.render()

    def test_unbracketed_database_mutation_is_flagged(self):
        source = (
            "class Database:\n"
            "    def delete(self, uid):\n"
            "        self._deletion.delete(uid)\n"
            "    def set_value(self, uid, attr, value):\n"
            "        with self._operation():\n"
            "            self._assign(uid, attr, value)\n"
        )
        report = lint_source(source, "core/database.py")
        findings = report.by_rule("CODE-OP-BRACKET")
        assert len(findings) == 1
        assert findings[0].location == "core/database.py:3"
        assert findings[0].detail["file"] == "core/database.py"
        assert findings[0].detail["line"] == 3

    def test_private_methods_and_other_files_exempt_from_bracket(self):
        source = (
            "class Database:\n"
            "    def _undo(self, uid):\n"
            "        self._assign(uid, 'x', 1)\n"
        )
        assert lint_source(source, "core/database.py").clean
        # Same code outside core/database.py: the rule does not apply.
        public = source.replace("_undo", "undo")
        assert lint_source(public, "other/module.py").clean

    def test_unwrapped_manager_mutation_is_flagged(self):
        source = (
            "class TransactionManager:\n"
            "    def write(self, txn, uid, attr, value):\n"
            "        self._db.set_value(uid, attr, value)\n"
            "    def make(self, txn, cls):\n"
            "        with self._db.txn_context(txn):\n"
            "            return self._db.make(cls)\n"
        )
        report = lint_source(source, "txn/manager.py")
        findings = report.by_rule("CODE-TXN-CONTEXT")
        assert [f.detail["line"] for f in findings] == [3]

    def test_bare_except_is_flagged_everywhere(self):
        source = (
            "def risky():\n"
            "    try:\n"
            "        pass\n"
            "    except:\n"
            "        pass\n"
        )
        report = lint_source(source, "query/interpreter.py")
        findings = report.by_rule("CODE-BARE-EXCEPT")
        assert findings and findings[0].detail["line"] == 4

    def test_lock_state_touch_outside_locking_is_flagged(self):
        source = (
            "def hack(table, txn):\n"
            "    table._granted.clear()\n"
            "    table._grant(txn, 'r', None)\n"
        )
        report = lint_source(source, "server/dispatch.py")
        assert len(report.by_rule("CODE-LOCK-STATE")) == 2
        # The identical code inside locking/ is the implementation itself.
        assert lint_source(source, "locking/table.py").clean

    def test_journal_hook_mutation_outside_storage_is_flagged(self):
        source = (
            "def wire(db, cb):\n"
            "    db.on_op_end.append(cb)\n"
            "    db.on_txn_commit = []\n"
        )
        report = lint_source(source, "server/server.py")
        assert len(report.by_rule("CODE-JOURNAL-HOOKS")) == 2
        assert lint_source(source, "storage/journal.py").clean

    def test_hook_definition_site_in_database_is_allowed(self):
        source = (
            "class Database:\n"
            "    def __init__(self):\n"
            "        self.on_persist = []\n"
            "        self.on_op_end = []\n"
        )
        assert lint_source(source, "core/database.py").clean

    def test_syntax_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", "x/y.py")
        assert report.by_rule("CODE-SYNTAX")

    def test_every_emitted_rule_is_documented(self):
        assert {
            "CODE-BARE-EXCEPT", "CODE-OP-BRACKET", "CODE-TXN-CONTEXT",
            "CODE-LOCK-STATE", "CODE-JOURNAL-HOOKS", "CODE-SYNTAX",
        } <= set(RULES)


# ---------------------------------------------------------------------------
# Deadlock machinery: find_cycle / choose_victim / DeadlockDetector
# ---------------------------------------------------------------------------


class TestDeadlockMachinery:
    def test_find_cycle_returns_none_on_dag(self):
        assert find_cycle([("a", "b"), ("b", "c"), ("a", "c")]) is None
        assert find_cycle([]) is None

    def test_find_cycle_finds_two_cycle(self):
        cycle = find_cycle([("a", "b"), ("b", "a")])
        assert cycle is not None
        assert set(cycle) == {"a", "b"}

    def test_find_cycle_finds_long_cycle_among_noise(self):
        edges = [("x", "a"), ("a", "b"), ("b", "c"), ("c", "a"), ("b", "y")]
        cycle = find_cycle(edges)
        assert set(cycle) == {"a", "b", "c"}

    def test_choose_victim_picks_youngest(self):
        t1, t2, t3 = Transaction(), Transaction(), Transaction()
        assert choose_victim([t2, t3, t1]) is t3
        assert choose_victim([3, 1, 2]) is 3

    def test_detector_on_real_wait_for_cycle(self):
        """Build an actual deadlock in the table: T1 holds a, wants b;
        T2 holds b, wants a."""
        table = LockTable()
        t1, t2 = Transaction(), Transaction()
        assert table.acquire(t1, "a", LockMode.X)
        assert table.acquire(t2, "b", LockMode.X)
        assert not table.acquire(t1, "b", LockMode.X)  # queued
        assert not table.acquire(t2, "a", LockMode.X)  # closes the cycle
        detector = DeadlockDetector(table)
        victim = detector.check(raise_on_deadlock=False)
        assert victim is t2  # youngest (higher txn_id)
        assert detector.detections == 1

    def test_detector_raises_with_cycle_payload(self):
        table = LockTable()
        t1, t2 = Transaction(), Transaction()
        table.acquire(t1, "a", LockMode.X)
        table.acquire(t2, "b", LockMode.X)
        table.acquire(t1, "b", LockMode.X)
        table.acquire(t2, "a", LockMode.X)
        detector = DeadlockDetector(table)
        with pytest.raises(DeadlockError) as raised:
            detector.check()
        assert raised.value.victim is t2
        assert t1 in raised.value.cycle and t2 in raised.value.cycle

    def test_detector_no_cycle_returns_none(self):
        table = LockTable()
        t1, t2 = Transaction(), Transaction()
        table.acquire(t1, "a", LockMode.X)
        table.acquire(t2, "a", LockMode.X)  # waits; no cycle
        detector = DeadlockDetector(table)
        assert detector.check(raise_on_deadlock=False) is None
        assert detector.detections == 0

    def test_simulator_aborts_victim_and_recovers(self):
        """Opposite-order writers in the event simulator deadlock for
        real; the victim aborts, restarts, and everything commits —
        while an attached recorder reports the same pair as an
        inversion."""
        from repro.sim.eventsim import ConcurrencySimulator, Step

        db, roots = _assembly_db()
        simulator = ConcurrencySimulator(db, discipline="composite")
        recorder = LockOrderRecorder(simulator.table)
        scripts = [
            [Step("update_composite", roots[0]),
             Step("update_composite", roots[1])],
            [Step("update_composite", roots[1]),
             Step("update_composite", roots[0])],
        ]
        result = simulator.run(scripts)
        assert result.committed == 2
        assert result.deadlock_aborts >= 1
        assert recorder.analyze().by_rule("LOCKDEP-INVERSION")


# ---------------------------------------------------------------------------
# The wire: server check op + stats
# ---------------------------------------------------------------------------


class TestCheckOverTheWire:
    def test_lockdep_and_code_planes_over_live_server(self):
        from repro.server import Client, ServerThread

        db = Database()
        root_a = build_assembly(db, depth=1, fanout=2).root
        root_b = build_assembly(db, depth=1, fanout=2).root
        with ServerThread(database=db) as handle:
            with Client(port=handle.port) as client:
                # Two sequential transactions, opposite composite order:
                # interleaved over one connection, never deadlocked.
                for ordering in ((root_a, root_b), (root_b, root_a)):
                    client.begin()
                    for root in ordering:
                        client.set_value(root, "Label", str(ordering))
                    client.commit()

                report = client.check(plane="lockdep")
                assert set(report) == {"lockdep", "ok"}
                assert not report["ok"]
                rules = {
                    finding["rule"]
                    for finding in report["lockdep"]["findings"]
                }
                assert "LOCKDEP-INVERSION" in rules
                inversion = next(
                    finding
                    for finding in report["lockdep"]["findings"]
                    if finding["rule"] == "LOCKDEP-INVERSION"
                )
                assert inversion["detail"]["witness_forward"]["acquire_stack"]

                code = client.check(plane="code")
                assert code["ok"]
                assert code["code"]["checked"] > 50

                stats = client.stats()
                assert stats["lockdep"]["transactions_recorded"] >= 2

    def test_all_plane_includes_lockdep_when_recording(self):
        from repro.server import Client, ServerThread

        with ServerThread() as handle:
            with Client(port=handle.port) as client:
                report = client.check()
                assert "lockdep" in report
                assert report["lockdep"]["ok"]

    def test_lockdep_plane_errors_when_disabled(self):
        from repro.server import Client, ServerThread

        with ServerThread(lockdep=False) as handle:
            with Client(port=handle.port) as client:
                report = client.check()  # "all" simply omits the plane
                assert "lockdep" not in report
                with pytest.raises(Exception, match="disabled"):
                    client.check(plane="lockdep")


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_lockdep_self_test_passes(self, capsys):
        from repro.analysis.cli import main

        assert main(["lockdep", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "lockdep self-test: pass" in out

    def test_code_subcommand_clean_on_tree(self, capsys):
        from repro.analysis.cli import main

        assert main(["code", "-q"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_code_subcommand_flags_seeded_fixture(self, tmp_path, capsys):
        from repro.analysis.cli import main

        package = tmp_path / "core"
        package.mkdir()
        (package / "database.py").write_text(
            "class Database:\n"
            "    def delete(self, uid):\n"
            "        self._deletion.delete(uid)\n"
        )
        assert main(["code", str(tmp_path), "--json"]) == 1
        import json

        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload["findings"]
        assert finding["rule"] == "CODE-OP-BRACKET"
        assert finding["location"] == "core/database.py:3"

    def test_locklint_subcommand_reports_template_inversion(
        self, tmp_path, capsys
    ):
        import json

        from repro.analysis.cli import main
        from repro.storage.durable import DurableDatabase

        store = tmp_path / "store"
        db = DurableDatabase(str(store))
        root_a = build_assembly(db, depth=1, fanout=2).root
        root_b = build_assembly(db, depth=1, fanout=2).root
        db.close()
        templates = tmp_path / "templates.json"
        templates.write_text(json.dumps({"templates": [
            {"name": "fwd", "steps": [
                {"action": "update_composite", "target": str(root_a)},
                {"action": "update_composite", "target": str(root_b)},
            ]},
            {"name": "rev", "steps": [
                {"action": "update_composite", "target": str(root_b)},
                {"action": "update_composite", "target": str(root_a)},
            ]},
        ]}))
        assert main(["locklint", str(store), str(templates), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["plane"] == "locklint"
        assert payload["checked"] == 2
        rules = {finding["rule"] for finding in payload["findings"]}
        assert rules == {"LOCK-INVERSION"}
