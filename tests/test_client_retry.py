"""Regression tests for :class:`repro.server.client.Client` reconnection.

Covers the two connection-handling bugs fixed alongside the group-commit
work: the ``AttributeError`` on a ``None`` socket when a reconnect
attempt fails silently with retries remaining, and the blind re-send of
mutating ops after a mid-call connection loss.
"""

import pytest

from repro import Database
from repro.server.client import RETRYABLE_OPS, Client
from repro.server.server import ServerThread


def _start_server(port=0):
    handle = ServerThread(database=Database(), port=port)
    handle.start()
    return handle


class TestReconnectLoop:
    def test_dead_server_raises_connection_error_not_attribute_error(self):
        # Satellite 1: with the server gone, every reconnect attempt
        # fails and leaves the socket None.  The buggy loop then called
        # into the None socket (AttributeError); the fixed loop re-enters
        # backoff and ultimately raises a clean ConnectionError.
        handle = _start_server()
        client = Client(port=handle.port, max_retries=2, backoff=0.01)
        handle.stop()
        with pytest.raises(ConnectionError, match="could not reach"):
            client.call("ping")
        client.close()

    def test_zero_retries_fail_fast(self):
        handle = _start_server()
        client = Client(port=handle.port, max_retries=0, backoff=0.01)
        handle.stop()
        with pytest.raises(ConnectionError):
            client.call("ping")
        client.close()

    def test_retryable_op_survives_server_restart(self):
        handle = _start_server()
        db2 = Database()
        client = Client(port=handle.port, max_retries=5, backoff=0.01)
        port = handle.port
        handle.stop()
        replacement = ServerThread(database=db2, port=port)
        replacement.start()
        try:
            # ping is in RETRYABLE_OPS: the mid-call loss is absorbed by
            # a reconnect to the restarted server.
            assert client.call("ping") == "pong"
        finally:
            client.close()
            replacement.stop()


class TestMidCallClassification:
    def test_mutating_op_raises_instead_of_resending(self):
        # Satellite 2: a mutating op that dies mid-call may already have
        # executed server-side; re-sending it could double-execute.
        handle = _start_server()
        with Client(port=handle.port, max_retries=5, backoff=0.01) as client:
            client.make_class("Doc")
            uid = client.make("Doc")
            handle.stop()
            with pytest.raises(ConnectionError, match="may have executed"):
                client.call("delete", uid=uid)

    def test_in_transaction_loss_raises_scope_error(self):
        handle = _start_server()
        with Client(port=handle.port, max_retries=5, backoff=0.01) as client:
            client.begin()
            handle.stop()
            with pytest.raises(ConnectionError, match="inside a transaction"):
                client.call("ping")
            # The scope is gone; a later out-of-scope call follows the
            # plain reconnect path (and fails cleanly — no server).
            with pytest.raises(ConnectionError, match="could not reach"):
                client.call("ping")

    def test_retryable_set_is_read_only(self):
        # query can mutate through the interpreter, so it must not be
        # blind-retried; neither may any of the explicit mutation ops.
        mutating = {
            "make", "make_class", "set_value", "insert_into", "remove_from",
            "make_part_of", "remove_part_of", "delete", "query",
            "begin", "commit", "abort",
        }
        assert not (RETRYABLE_OPS & mutating)
