"""The network subsystem: codec, sessions, and cross-client locking.

The end-to-end tests run the real asyncio server (on its own thread) and
talk to it over real TCP sockets with the blocking client — two
concurrent clients provoke a composite-lock conflict and a deadlock
abort, exercising the Section 7 protocol across connections.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro import AttributeSpec, Database, SetOf, UID
from repro.errors import (
    AccessDenied,
    DeadlockError,
    LockConflictError,
    TransactionStateError,
    UnknownObjectError,
)
from repro.server import (
    Client,
    MAX_FRAME_BYTES,
    ProtocolError,
    ServerThread,
    build_error,
    decode_frame,
    encode_frame,
)
from repro.server.protocol import (
    check_request,
    error_frame,
    frame_length,
    request_frame,
    wire_decode,
    wire_encode,
)


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------


class TestWireCodec:
    def test_scalars_round_trip(self):
        for value in (None, True, False, 0, -7, 3.25, "héllo", ""):
            assert wire_decode(wire_encode(value)) == value

    def test_uid_round_trips_as_real_uid(self):
        uid = UID(42, "Vehicle")
        decoded = wire_decode(wire_encode(uid))
        assert decoded == uid
        assert isinstance(decoded, UID)
        assert decoded.class_name == "Vehicle"

    def test_set_of_round_trips(self):
        decoded = wire_decode(wire_encode(SetOf("Paragraph")))
        assert decoded == SetOf("Paragraph")

    def test_nested_structures(self):
        value = {"uids": [UID(1, "A"), UID(2, "B")],
                 "spec": {"domain": SetOf("A")},
                 "plain": [1, [2, {"x": None}]]}
        assert wire_decode(wire_encode(value)) == value

    def test_unencodable_values_raise(self):
        # The old codec silently degraded these to str(value) — a lossy
        # one-way trip the receiver could not distinguish from a real
        # string.  Strictness is the fix: garbage in, typed error out.
        with pytest.raises(ProtocolError):
            wire_encode(object)
        with pytest.raises(ProtocolError):
            wire_encode({"x": {1, 2, 3}})

    def test_bytes_round_trip(self):
        for value in (b"", b"\x00\xff", "snow☃".encode()):
            decoded = wire_decode(wire_encode(value))
            assert decoded == value
            assert isinstance(decoded, bytes)

    def test_non_string_dict_keys_round_trip(self):
        value = {1: "one", (2, "b"): UID(3, "C"), None: [b"\x01"]}
        decoded = wire_decode(wire_encode(value))
        assert decoded == value

    def test_frame_round_trip(self):
        frame = request_frame(3, "ping", {})
        data = encode_frame(frame)
        assert frame_length(data[:4]) == len(data) - 4
        assert decode_frame(data[4:]) == frame

    def test_oversized_frame_rejected_by_length_prefix(self):
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            frame_length(prefix)

    def test_truncated_prefix_rejected(self):
        with pytest.raises(ProtocolError):
            frame_length(b"\x00\x00")

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2, 3]")

    def test_request_validation(self):
        with pytest.raises(ProtocolError):
            check_request({"op": "ping"})  # no id
        with pytest.raises(ProtocolError):
            check_request({"id": 1})  # no op
        with pytest.raises(ProtocolError):
            check_request({"id": 1, "op": "ping", "args": []})


class TestErrorMarshalling:
    def _round_trip(self, error):
        frame = error_frame(9, error)
        assert frame["ok"] is False
        return build_error(frame["error"])

    def test_unknown_object_keeps_typed_uid(self):
        rebuilt = self._round_trip(UnknownObjectError(UID(5, "Vehicle")))
        assert isinstance(rebuilt, UnknownObjectError)
        assert rebuilt.uid == UID(5, "Vehicle")
        assert isinstance(rebuilt.uid, UID)

    def test_deadlock_carries_victim_and_cycle_ids(self):
        class FakeTxn:
            def __init__(self, txn_id):
                self.txn_id = txn_id

        error = DeadlockError("boom", victim=FakeTxn(7),
                              cycle=(FakeTxn(3), FakeTxn(7)))
        rebuilt = self._round_trip(error)
        assert isinstance(rebuilt, DeadlockError)
        assert rebuilt.victim == 7
        assert rebuilt.cycle == [3, 7]

    def test_lock_conflict_keeps_resource(self):
        error = LockConflictError("no", resource=("instance", UID(1, "A")))
        rebuilt = self._round_trip(error)
        assert isinstance(rebuilt, LockConflictError)
        assert rebuilt.resource == ["instance", UID(1, "A")]

    def test_unknown_code_degrades_gracefully(self):
        rebuilt = build_error({"code": "FROM_THE_FUTURE", "message": "hm"})
        assert "FROM_THE_FUTURE" in str(rebuilt)

    def test_non_repro_exception_becomes_internal(self):
        frame = error_frame(1, ValueError("oops"))
        assert frame["error"]["code"] == "INTERNAL"
        assert frame["error"]["data"]["type"] == "ValueError"


# ---------------------------------------------------------------------------
# End-to-end over real TCP
# ---------------------------------------------------------------------------


def vehicle_schema(client):
    client.make_class("AutoBody", attributes=[
        AttributeSpec("Color", domain="string")])
    client.make_class("Engine")
    client.make_class(
        "Vehicle",
        attributes=[
            AttributeSpec("Body", domain="AutoBody", composite=True,
                          exclusive=True, dependent=True),
            AttributeSpec("Engines", domain=SetOf("Engine"), composite=True,
                          exclusive=True, dependent=True),
            AttributeSpec("Color", domain="string"),
        ],
    )


@pytest.fixture
def server():
    with ServerThread(lock_wait_timeout=5.0) as handle:
        yield handle


@pytest.fixture
def client(server):
    with Client(port=server.port, timeout=20.0) as c:
        yield c


@pytest.fixture
def client2(server):
    with Client(port=server.port, timeout=20.0) as c:
        yield c


class TestBasicOps:
    def test_handshake_negotiates_version(self, server, client):
        # Highest common version wins: this build's default client gets
        # the binary v2 codec; a v1-only client still gets served.
        assert client.protocol_version == max(client.versions)
        assert client.session_id is not None
        assert client.ping() == "pong"
        with Client(port=server.port, versions=(1,)) as old:
            assert old.protocol_version == 1
            assert old.ping() == "pong"

    def test_schema_and_data_ops(self, client):
        vehicle_schema(client)
        body = client.make("AutoBody")
        vehicle = client.make("Vehicle",
                              values={"Body": body, "Color": "red"})
        assert isinstance(vehicle, UID)
        assert client.value(vehicle, "Color") == "red"
        client.set_value(vehicle, "Color", "blue")
        snapshot = client.resolve(vehicle)
        assert snapshot["class"] == "Vehicle"
        assert snapshot["values"]["Color"] == "blue"
        assert snapshot["values"]["Body"] == body

    def test_composite_navigation(self, client):
        vehicle_schema(client)
        body = client.make("AutoBody")
        engine = client.make("Engine")
        vehicle = client.make("Vehicle", values={"Body": body})
        assert client.insert_into(vehicle, "Engines", engine) is True
        assert sorted(client.components_of(vehicle)) == sorted([body, engine])
        assert client.parents_of(body) == [vehicle]
        assert client.roots_of(engine) == [vehicle]
        assert client.remove_from(vehicle, "Engines", engine) is True
        assert client.components_of(vehicle) == [body]

    def test_bottom_up_assembly_over_the_wire(self, client):
        vehicle_schema(client)
        vehicle = client.make("Vehicle")
        engine = client.make("Engine")
        assert client.make_part_of(engine, vehicle, "Engines") is True
        assert client.children_of(vehicle) == [engine]
        assert client.remove_part_of(engine, vehicle, "Engines") is True
        assert client.children_of(vehicle) == []

    def test_delete_reports_cascade(self, client):
        vehicle_schema(client)
        body = client.make("AutoBody")
        vehicle = client.make("Vehicle", values={"Body": body})
        report = client.delete(vehicle)
        assert set(report["deleted"]) == {vehicle, body}  # dependent cascade
        with pytest.raises(UnknownObjectError):
            client.resolve(body)

    def test_instances_of_and_describe(self, client):
        vehicle_schema(client)
        made = {client.make("AutoBody") for _ in range(3)}
        assert set(client.instances_of("AutoBody")) == made
        description = client.describe("Vehicle")
        assert description["class"] == "Vehicle"
        assert any("Body" in line for line in description["attributes"])

    def test_query_evaluation(self, client):
        vehicle_schema(client)
        client.make("Vehicle", values={"Color": "red"})
        blue = client.make("Vehicle", values={"Color": "blue"})
        results = client.query('(select Vehicle (= Color "blue"))')
        assert results == [[blue]]

    def test_typed_errors_cross_the_wire(self, client):
        vehicle_schema(client)
        with pytest.raises(UnknownObjectError) as exc_info:
            client.value(UID(999, "Vehicle"), "Color")
        assert exc_info.value.uid == UID(999, "Vehicle")

    def test_unknown_op_is_protocol_error(self, client):
        with pytest.raises(ProtocolError):
            client.call("no_such_op")

    def test_stats_counters(self, client, client2):
        client.ping()
        client2.ping()
        stats = client.stats()
        assert stats["server"]["sessions_opened"] >= 2
        assert stats["server"]["requests"] >= 2
        assert stats["server"]["bytes_in"] > 0
        assert stats["server"]["bytes_out"] > 0
        assert stats["session"]["requests"] >= 1

    def test_version_negotiation_rejects_unknown_versions(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(encode_frame(
                {"id": 1, "op": "hello", "args": {"versions": [99]}}))
            prefix = sock.recv(4)
            (length,) = struct.unpack(">I", prefix)
            frame = decode_frame(sock.recv(length))
        assert frame["ok"] is False
        assert frame["error"]["code"] == "PROTOCOL"

    def test_malformed_first_frame_fails_cleanly(self, server, client):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=5.0) as sock:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")
            # Server hangs up (possibly after a best-effort error frame).
            sock.settimeout(5.0)
            while True:
                if not sock.recv(4096):
                    break
        assert client.ping() == "pong"  # the server survived


class TestTransactions:
    def test_explicit_commit_persists(self, client, client2):
        vehicle_schema(client)
        vehicle = client.make("Vehicle", values={"Color": "red"})
        client.begin()
        client.set_value(vehicle, "Color", "green")
        client.commit()
        assert client2.value(vehicle, "Color") == "green"

    def test_abort_rolls_back(self, client):
        vehicle_schema(client)
        vehicle = client.make("Vehicle", values={"Color": "red"})
        client.begin()
        client.set_value(vehicle, "Color", "green")
        client.abort()
        assert client.value(vehicle, "Color") == "red"

    def test_transaction_scope_aborts_on_error(self, client):
        vehicle_schema(client)
        vehicle = client.make("Vehicle", values={"Color": "red"})
        with pytest.raises(RuntimeError):
            with client.transaction():
                client.set_value(vehicle, "Color", "green")
                raise RuntimeError("client-side failure")
        assert client.value(vehicle, "Color") == "red"

    def test_nested_begin_rejected(self, client):
        client.begin()
        with pytest.raises(TransactionStateError):
            client.begin()
        client.abort()

    def test_disconnect_aborts_and_releases_locks(self, server, client2):
        doomed = Client(port=server.port, timeout=20.0)
        vehicle_schema(doomed)
        vehicle = doomed.make("Vehicle", values={"Color": "red"})
        doomed.begin()
        doomed.set_value(vehicle, "Color", "green")  # X locks held
        doomed.close()  # dies without commit
        deadline = time.time() + 5.0
        while time.time() < deadline:  # session teardown is async
            try:
                client2.set_value(vehicle, "Color", "blue")
                break
            except LockConflictError:
                time.sleep(0.05)
        assert client2.value(vehicle, "Color") == "blue"  # change rolled back

    def test_reconnect_with_backoff_outside_transaction(self, client):
        client._sock.close()  # simulate a dropped connection
        assert client.ping() == "pong"

    def test_connection_loss_inside_transaction_raises(self, client):
        vehicle_schema(client)
        vehicle = client.make("Vehicle", values={"Color": "red"})
        client.begin()
        client.set_value(vehicle, "Color", "green")
        client._sock.close()
        with pytest.raises(ConnectionError):
            client.value(vehicle, "Color")
        # After the explicit reconnect the rollback is observable.
        client.connect()
        assert client.value(vehicle, "Color") == "red"


class TestCrossClientLocking:
    """Two real clients contending through the Section 7 protocol."""

    def test_write_write_conflict_on_composite_root_blocks(
        self, client, client2
    ):
        """Acceptance: a write-write conflict on a shared composite root
        blocks until the holder commits, then proceeds."""
        vehicle_schema(client)
        body = client.make("AutoBody")
        vehicle = client.make("Vehicle",
                              values={"Body": body, "Color": "red"})

        client.begin()
        client.set_value(vehicle, "Color", "green")  # X on the root

        release_order = []

        def blocked_writer():
            client2.set_value(vehicle, "Color", "yellow")
            release_order.append("writer-done")

        thread = threading.Thread(target=blocked_writer)
        thread.start()
        time.sleep(0.4)  # long enough for client2 to be queued
        assert not release_order, "writer must block while the X lock is held"
        release_order.append("commit")
        client.commit()
        thread.join(timeout=10.0)
        assert release_order == ["commit", "writer-done"]
        assert client.value(vehicle, "Color") == "yellow"
        assert client.stats()["server"]["lock_waits"] >= 1

    def test_composite_plan_blocks_component_writer(self):
        """Reading a whole composite (components_of under an explicit
        transaction) holds ISO on the component classes; a direct write on
        a *component* from another client needs IX on that class, which
        conflicts — one granule covers the whole composite (Section 7)."""
        with ServerThread(lock_wait_timeout=0.4) as handle:
            reader = Client(port=handle.port, timeout=20.0)
            writer = Client(port=handle.port, timeout=20.0)
            try:
                vehicle_schema(reader)
                body = reader.make("AutoBody")
                vehicle = reader.make("Vehicle", values={"Body": body})

                reader.begin()
                reader.components_of(vehicle)  # ISO on AutoBody, held to commit
                started = time.time()
                with pytest.raises(LockConflictError):
                    writer.set_value(body, "Color", "x")
                assert time.time() - started >= 0.3  # queued, then timed out
                reader.commit()
                writer.set_value(body, "Color", "x")  # granted after release
            finally:
                reader.close()
                writer.close()

    def test_deadlock_across_clients_aborts_victim(self, client, client2):
        """Acceptance: a wait-for cycle spanning two connections is
        detected; the younger transaction gets a DeadlockError and its
        transaction is rolled back server-side."""
        vehicle_schema(client)
        a = client.make("Vehicle", values={"Color": "a"})
        b = client.make("Vehicle", values={"Color": "b"})

        client.begin()
        client2.begin()
        client.set_value(a, "Color", "a1")   # T1: X on a
        client2.set_value(b, "Color", "b1")  # T2: X on b

        outcome = {}

        def crossing(c, uid, key):
            try:
                c.set_value(uid, "Color", "x")
                outcome[key] = "ok"
            except DeadlockError as error:
                outcome[key] = error

        t1 = threading.Thread(target=crossing, args=(client, b, "t1"))
        t2 = threading.Thread(target=crossing, args=(client2, a, "t2"))
        t1.start()
        time.sleep(0.3)  # T1 queues first, completing the cycle via T2
        t2.start()
        t1.join(timeout=15.0)
        t2.join(timeout=15.0)

        victims = [k for k, v in outcome.items()
                   if isinstance(v, DeadlockError)]
        assert len(victims) == 1, f"exactly one victim expected: {outcome}"
        survivor = "t1" if victims == ["t2"] else "t2"
        assert outcome[survivor] == "ok"
        error = outcome[victims[0]]
        assert error.victim is not None

        # The victim's transaction is gone server-side...
        victim_client = client if victims == ["t1"] else client2
        with pytest.raises(TransactionStateError):
            victim_client.commit()
        # ...and the survivor can commit.
        survivor_client = client if survivor == "t1" else client2
        survivor_client.commit()
        stats = client.stats()["server"]
        assert stats["deadlock_aborts"] >= 1

    def test_disjoint_composites_do_not_interfere(self, client, client2):
        """The paper's headline property, across connections: writers of
        different composites sharing one class hierarchy never block."""
        vehicle_schema(client)
        v1 = client.make("Vehicle", values={"Color": "x"})
        v2 = client2.make("Vehicle", values={"Color": "y"})
        client.begin()
        client2.begin()
        client.set_value(v1, "Color", "x2")
        client2.set_value(v2, "Color", "y2")  # would block under class locks
        client.commit()
        client2.commit()
        assert client.value(v1, "Color") == "x2"
        assert client.value(v2, "Color") == "y2"


class TestAuthorization:
    def test_access_checks_route_through_engine(self):
        from repro.authorization.engine import AuthorizationEngine

        db = Database()
        db.make_class("Doc", attributes=[
            AttributeSpec("Title", domain="string")])
        doc = db.make("Doc", values={"Title": "secret"})
        engine = AuthorizationEngine(db)
        engine.grant("alice", "sW", database=True)
        engine.grant("bob", "sR", on_instance=doc)

        with ServerThread(database=db, auth=engine) as handle:
            alice = Client(port=handle.port, user="alice")
            bob = Client(port=handle.port, user="bob")
            try:
                # W implies R for alice; bob may read but not write.
                alice.set_value(doc, "Title", "updated")
                assert bob.value(doc, "Title") == "updated"
                with pytest.raises(AccessDenied):
                    bob.set_value(doc, "Title", "defaced")
                # An unauthenticated session is denied outright.
                nobody = Client(port=handle.port)
                with pytest.raises(AccessDenied):
                    nobody.value(doc, "Title")
                nobody.close()
            finally:
                alice.close()
                bob.close()

    def test_instances_of_filters_unreadable(self):
        from repro.authorization.engine import AuthorizationEngine

        db = Database()
        db.make_class("Doc")
        visible = db.make("Doc")
        db.make("Doc")  # hidden
        engine = AuthorizationEngine(db)
        engine.grant("carol", "sR", on_instance=visible)
        with ServerThread(database=db, auth=engine) as handle:
            with Client(port=handle.port, user="carol") as carol:
                assert carol.instances_of("Doc") == [visible]


class TestAsyncClient:
    def test_async_client_full_cycle(self, server):
        import asyncio

        from repro.server import AsyncClient

        async def scenario():
            async with AsyncClient(port=server.port) as c:
                await c.make_class("Part", attributes=[
                    {"name": "n", "domain": "integer"}])
                part = await c.make("Part", values={"n": 1})
                async with c.transaction():
                    await c.set_value(part, "n", 2)
                assert await c.value(part, "n") == 2
                with pytest.raises(UnknownObjectError):
                    await c.value(UID(10_000, "Part"), "n")
                return await c.ping()

        assert asyncio.run(scenario()) == "pong"
