#!/usr/bin/env python3
"""Quickstart: the extended composite-object model in five minutes.

Walks through the paper's core ideas on a tiny schema:

1. the five reference types,
2. bottom-up assembly (impossible in the original ORION model),
3. the Section 3 operations,
4. the Deletion Rule.

Run:  python examples/quickstart.py
"""

from repro import AttributeSpec, Database, LegacyDatabase, LegacyModelError, SetOf


def main():
    db = Database()

    # -- 1. A schema using three reference flavours -----------------------
    db.make_class("Page")
    db.make_class("Binder", attributes=[
        AttributeSpec("Title", domain="string"),
        # Dependent shared: a page exists as long as some binder holds it,
        # and may be filed in several binders at once.
        AttributeSpec("Pages", domain=SetOf("Page"), composite=True,
                      exclusive=False, dependent=True),
        # Independent exclusive: a bookmark belongs to one binder at a
        # time but survives the binder's deletion.
        AttributeSpec("Bookmark", domain="Page", composite=True,
                      exclusive=True, dependent=False),
        # Weak: no IS-PART-OF semantics at all.
        AttributeSpec("SeeAlso", domain="Binder"),
    ])

    # -- 2. Bottom-up assembly --------------------------------------------
    # Components first, aggregate later: the extended model allows it.
    page_a = db.make("Page")
    page_b = db.make("Page")
    bookmark = db.make("Page")
    binder1 = db.make("Binder", values={
        "Title": "Binder One", "Pages": [page_a, page_b], "Bookmark": bookmark,
    })
    binder2 = db.make("Binder", values={"Title": "Binder Two"})
    db.make_part_of(page_a, binder2, "Pages")      # share an existing page
    db.set_value(binder2, "SeeAlso", binder1)      # weak reference

    print("binder1 components:", [str(u) for u in db.components_of(binder1)])
    print("page_a parents:    ", [str(u) for u in db.parents_of(page_a)])
    print("page_a shared-component-of binder2?",
          db.shared_component_of(page_a, binder2))

    # -- 3. Topology rules in action ----------------------------------------
    # A page already shared cannot become someone's exclusive component.
    from repro import TopologyError
    try:
        db.set_value(binder2, "Bookmark", page_a)
    except TopologyError as error:
        print("topology rule enforced:", error)

    # -- 4. The Deletion Rule ----------------------------------------------
    report = db.delete(binder1)
    print("deleted with binder1:", [str(u) for u in report.deleted])
    print("page_a survived (still in binder2)?", db.exists(page_a))
    print("page_b survived?", db.exists(page_b), "(last dependent parent gone)")
    print("bookmark survived (independent)?", db.exists(bookmark))

    # -- 5. The KIM87b baseline rejects all of this --------------------------
    legacy = LegacyDatabase()
    legacy.make_class("Page")
    try:
        legacy.make_class("Binder", attributes=[
            AttributeSpec("Pages", domain=SetOf("Page"), composite=True,
                          exclusive=False, dependent=True),
        ])
    except LegacyModelError as error:
        print("KIM87b baseline:", error)

    db.validate()
    print("all invariants hold — done.")


if __name__ == "__main__":
    main()
