#!/usr/bin/env python3
"""Two network clients sharing a vehicle-assembly composite over TCP.

Starts an in-process server (the same asyncio server ``repro-server``
runs standalone), connects two blocking clients over real sockets, and
walks through the subsystem's core behaviors:

* building a composite object (Vehicle -> AutoBody + Engines) over the
  wire, with typed UIDs crossing the JSON codec intact;
* both clients reading the shared composite concurrently;
* a write-write conflict on the composite root: the second writer
  *blocks* inside the Section 7 lock queue until the first commits;
* a cross-client deadlock, detected server-side — the victim receives a
  typed :class:`DeadlockError` and its transaction is rolled back.

Run:  python examples/network_clients.py
"""

import threading
import time

from repro import AttributeSpec, DeadlockError, SetOf
from repro.server import Client, ServerThread


def build_vehicle(designer):
    designer.make_class("AutoBody")
    designer.make_class("Engine")
    designer.make_class("Vehicle", attributes=[
        AttributeSpec("Body", domain="AutoBody", composite=True,
                      exclusive=True, dependent=True),
        AttributeSpec("Engines", domain=SetOf("Engine"), composite=True,
                      exclusive=True, dependent=True),
        AttributeSpec("Color", domain="string"),
    ])
    body = designer.make("AutoBody")
    vehicle = designer.make("Vehicle", values={"Body": body, "Color": "red"})
    for _ in range(2):
        designer.make("Engine", parents=[(vehicle, "Engines")])
    return vehicle


def main():
    with ServerThread() as handle:
        print(f"server listening on 127.0.0.1:{handle.port}")
        alice = Client(port=handle.port, user="alice")
        bob = Client(port=handle.port, user="bob")

        # -- shared composite over the wire --------------------------------
        vehicle = build_vehicle(alice)
        print(f"\nalice assembled {vehicle}; components: "
              f"{alice.components_of(vehicle)}")
        print(f"bob sees color {bob.value(vehicle, 'Color')!r} and root "
              f"{bob.roots_of(alice.components_of(vehicle)[0])}")

        # -- write-write conflict on the root ------------------------------
        print("\nalice begins a transaction and repaints the vehicle...")
        alice.begin()
        alice.set_value(vehicle, "Color", "green")

        def bob_paints():
            started = time.perf_counter()
            bob.set_value(vehicle, "Color", "blue")  # queues behind alice's X
            print(f"  bob's write granted after "
                  f"{time.perf_counter() - started:.2f}s (alice committed)")

        blocked = threading.Thread(target=bob_paints)
        blocked.start()
        time.sleep(0.5)
        print("  bob is blocked in the lock queue; alice commits")
        alice.commit()
        blocked.join()
        print(f"  final color: {alice.value(vehicle, 'Color')!r}")

        # -- deadlock across connections -----------------------------------
        print("\nprovoking a deadlock (alice and bob cross their writes):")
        other = alice.make("Vehicle", values={"Color": "white"})
        alice.begin()
        bob.begin()
        alice.set_value(vehicle, "Color", "a")   # alice: X on vehicle
        bob.set_value(other, "Color", "b")       # bob:   X on other

        def crossing(client, uid, name):
            try:
                client.set_value(uid, "Color", "x")
                client.commit()
                print(f"  {name} committed")
            except DeadlockError as error:
                print(f"  {name} aborted as the deadlock victim: {error}")

        t1 = threading.Thread(target=crossing, args=(alice, other, "alice"))
        t2 = threading.Thread(target=crossing, args=(bob, vehicle, "bob"))
        t1.start()
        time.sleep(0.3)
        t2.start()
        t1.join()
        t2.join()

        stats = alice.stats()["server"]
        print(f"\nserver counters: {stats['requests']} requests, "
              f"{stats['lock_waits']} lock waits, "
              f"{stats['deadlock_aborts']} deadlock abort(s)")
        alice.close()
        bob.close()


if __name__ == "__main__":
    main()
