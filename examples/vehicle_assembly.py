#!/usr/bin/env python3
"""The paper's Example 1: a physical part hierarchy (Vehicle).

"We require that a vehicle part may be used for only one vehicle at any
point in time; however, vehicle parts may be re-used for other vehicles"
— independent exclusive composite references.

The script builds vehicles bottom-up, dismantles one, reuses its parts,
and contrasts the same workflow against the [KIM87b] baseline where the
parts would have been destroyed.

Run:  python examples/vehicle_assembly.py
"""

from repro import Database, LegacyDatabase, LegacyModelError, TopologyError
from repro.workloads.parts import build_vehicle, define_vehicle_schema


def main():
    db = Database()
    define_vehicle_schema(db)
    print(db.classdef("Vehicle").describe())
    print()

    # Assemble two vehicles from freshly made parts (bottom-up).
    red = build_vehicle(db, color="red")
    blue = build_vehicle(db, color="blue")
    print("red vehicle components:",
          [str(u) for u in db.components_of(red.vehicle)])

    # Exclusivity: the red body cannot serve two vehicles at once.
    try:
        db.set_value(blue.vehicle, "Body", red.body)
    except TopologyError as error:
        print("exclusive reference enforced:", error)

    # Dismantle the red vehicle: independent references preserve the parts.
    report = db.delete(red.vehicle)
    print(f"dismantled red: deleted {report.deleted_count} object(s), "
          f"preserved {report.preserved_count} part(s)")
    assert db.exists(red.body) and db.exists(red.drivetrain)

    # Re-use the preserved body in the blue vehicle.
    db.set_value(blue.vehicle, "Body", None)        # detach blue's own body
    db.set_value(blue.vehicle, "Body", red.body)    # install the red body
    print("blue vehicle now has body:", db.value(blue.vehicle, "Body"))
    print("red body's parent:       ", [str(u) for u in db.parents_of(red.body)])

    # The same dismantle-and-reuse workflow under the KIM87b baseline:
    legacy = LegacyDatabase()
    define_vehicle_schema_legacy(legacy)
    assembly = legacy.make("LegacyVehicle")
    body = legacy.make("LegacyBody", parents=[(assembly, "Body")])
    report = legacy.delete(assembly)
    print(f"\nKIM87b baseline: deleting the vehicle destroyed "
          f"{report.deleted_count} objects (body included: "
          f"{not legacy.exists(body)})")
    try:
        fresh = legacy.make("LegacyBody")
        target = legacy.make("LegacyVehicle")
        legacy.make_part_of(fresh, target, "Body")
    except LegacyModelError as error:
        print("KIM87b baseline cannot assemble bottom-up:", error)

    db.validate()
    print("\ndone.")


def define_vehicle_schema_legacy(legacy):
    """Vehicle-ish schema expressible in the baseline (dependent exclusive)."""
    from repro import AttributeSpec

    legacy.make_class("LegacyBody")
    legacy.make_class("LegacyVehicle", attributes=[
        AttributeSpec("Body", domain="LegacyBody", composite=True,
                      exclusive=True, dependent=True),
    ])


if __name__ == "__main__":
    main()
