#!/usr/bin/env python3
"""The paper's Example 2: a logical part hierarchy (electronic documents).

Documents share sections and paragraphs (dependent shared references),
reference images extracted from files (independent shared), and own
private annotations (dependent exclusive).  The script demonstrates the
sharing topology, the Deletion Rule over it, and a live schema change.

Run:  python examples/document_sharing.py
"""

from repro import Database
from repro.schema.evolution import SchemaEvolutionManager
from repro.workloads.documents import define_document_schema


def main():
    db = Database()
    define_document_schema(db)
    print(db.classdef("Document").describe())
    print()

    # Build two documents that share a section (the paper's motivating
    # case: "an identical chapter may be a part of two different books").
    intro_par = db.make("Paragraph", values={"Text": "Common introduction."})
    shared_intro = db.make("Section",
                           values={"Heading": "Introduction",
                                   "Content": [intro_par]})
    own_par = db.make("Paragraph", values={"Text": "Only in the report."})
    body = db.make("Section", values={"Heading": "Body", "Content": [own_par]})
    logo = db.make("Image", values={"File": "/figures/logo.png"})
    note = db.make("Paragraph", values={"Text": "reviewer note"})

    report = db.make("Document", values={
        "Title": "Technical Report",
        "Sections": [shared_intro, body],
        "Figures": [logo],
        "Annotations": [note],
    })
    paper = db.make("Document", values={
        "Title": "Conference Paper",
        "Sections": [shared_intro],
        "Figures": [logo],
    })

    print("intro section appears in:",
          [db.value(d, "Title") for d in db.parents_of(shared_intro)])
    print("ancestors of the shared paragraph:",
          [str(u) for u in db.ancestors_of(intro_par)])
    print("is the intro an exclusive component of the report?",
          db.exclusive_component_of(shared_intro, report))
    print("...a shared component?",
          db.shared_component_of(shared_intro, report))

    # Delete the report: shared things survive through the paper; private
    # things (body section, annotation) die; the image is independent.
    deletion = db.delete(report)
    print(f"\ndeleted the report: {deletion.deleted_count} objects gone")
    print("shared intro survives?", db.exists(shared_intro))
    print("body section survives?", db.exists(body))
    print("annotation survives?  ", db.exists(note))
    print("logo survives?        ", db.exists(logo))

    # Delete the paper too: the intro loses its last dependent parent.
    db.delete(paper)
    print("\nafter deleting the paper as well:")
    print("shared intro survives?", db.exists(shared_intro))
    print("logo survives?        ", db.exists(logo))

    # Live schema change: decide that figures should be owned (dependent).
    evolution = SchemaEvolutionManager(db)
    evolution.make_dependent("Document", "Figures", mode="deferred")
    album = db.make("Document", values={"Title": "Album", "Figures": [logo]})
    db.resolve(logo)  # deferred catch-up happens on access
    db.delete(album)
    print("\nafter I4 (Figures now dependent) and deleting the album:")
    print("logo survives?        ", db.exists(logo))

    db.validate()
    print("\ndone.")


if __name__ == "__main__":
    main()
