#!/usr/bin/env python3
"""Long-duration design transactions: the check-out model.

The paper closes its locking section noting that the composite protocols
"may not be suitable for long-duration transactions".  This example shows
the check-out/check-in workflow the reproduction builds on top of the
whole-composite operations ([KIM87a] copy/move/equality):

1. Alice checks out a chip design — a persistent composite lock plus a
   private deep copy.
2. She edits freely (no further locking); Bob is blocked from the same
   chip but works on another one concurrently.
3. Check-in merges her workspace back: edited values, adopted new
   components, deleted components — then frees the lock.

Run:  python examples/design_workspace.py
"""

from repro import AttributeSpec, Database, LockConflictError, SetOf
from repro.core import composites_equal, copy_composite
from repro.txn import CheckoutManager


def build_chip(db, name):
    pins = [db.make("Pin", values={"Signal": s}) for s in ("a", "b", "out")]
    adder = db.make("Cell", values={"Name": f"{name}-adder", "Pins": pins})
    return db.make("Chip", values={"Name": name, "Rev": 1, "Cells": [adder]})


def main():
    db = Database()
    db.make_class("Pin", attributes=[AttributeSpec("Signal", domain="string")])
    db.make_class("Cell", attributes=[
        AttributeSpec("Name", domain="string"),
        AttributeSpec("Pins", domain=SetOf("Pin"), composite=True,
                      exclusive=True, dependent=True),
    ])
    db.make_class("Chip", attributes=[
        AttributeSpec("Name", domain="string"),
        AttributeSpec("Rev", domain="integer", init=1),
        AttributeSpec("Cells", domain=SetOf("Cell"), composite=True,
                      exclusive=True, dependent=True),
    ])
    alpha = build_chip(db, "alpha")
    beta = build_chip(db, "beta")
    manager = CheckoutManager(db)

    # A quick aside: whole-composite copy + structural equality.
    twin = copy_composite(db, alpha)
    print("copy is structurally equal to the original:",
          composites_equal(db, alpha, twin))
    db.delete(twin)

    # 1. Alice checks out chip alpha.
    alice = manager.checkout("alice", alpha)
    print(f"\nalice checked out {alpha} into workspace "
          f"{alice.working_root}")

    # 2. Bob cannot touch alpha, but beta is free.
    try:
        manager.checkout("bob", alpha)
    except LockConflictError:
        print("bob's checkout of the same chip is blocked (persistent "
              "composite lock)")
    bob = manager.checkout("bob", beta)
    print(f"bob checked out {beta} concurrently")

    # 3. Alice edits her private copy — months of work, zero lock calls.
    working_cell = db.value(alice.working_root, "Cells")[0]
    db.set_value(working_cell, "Name", "alpha-adder-v2")
    db.set_value(alice.working_root, "Rev", 2)
    carry = db.make("Pin", values={"Signal": "carry"},
                    parents=[(working_cell, "Pins")])
    old_pin = db.value(working_cell, "Pins")[0]
    db.remove_from(working_cell, "Pins", old_pin)
    print("\nalice's workspace edits: rename cell, bump rev, add 'carry' "
          "pin, drop pin 'a'")
    print("original cell name is still:",
          db.value(db.value(alpha, "Cells")[0], "Name"))

    # 4. Check-in merges everything back and releases the lock.
    manager.checkin(alice)
    cell = db.value(alpha, "Cells")[0]
    print("\nafter check-in:")
    print("  chip rev:", db.value(alpha, "Rev"))
    print("  cell name:", db.value(cell, "Name"))
    print("  pin signals:",
          sorted(db.value(p, "Signal") for p in db.value(cell, "Pins")))
    manager.abandon(bob)
    db.validate()
    print("\nbob abandoned his checkout; all invariants hold — done.")


if __name__ == "__main__":
    main()
