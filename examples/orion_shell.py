#!/usr/bin/env python3
"""An ORION-flavoured interactive shell.

Evaluates the s-expression message language against a live database —
the closest thing to sitting at an ORION console in 1989.

Run interactively:      python examples/orion_shell.py
Run the demo script:    python examples/orion_shell.py --demo
Run a file of messages: python examples/orion_shell.py path/to/script.orion
"""

import sys

from repro.errors import ReproError
from repro.query import Interpreter, QuerySyntaxError

DEMO = """
;; The paper's Example 1, in the message language.
(make-class 'AutoBody)
(make-class 'AutoDrivetrain)
(make-class 'AutoTires)
(make-class 'Vehicle
  :attributes '((Manufacturer :domain string)
                (Color :domain string)
                (Body :domain AutoBody :composite t :exclusive t :dependent nil)
                (Drivetrain :domain AutoDrivetrain :composite t :exclusive t
                            :dependent nil)
                (Tires :domain (set-of AutoTires) :composite t :exclusive t
                       :dependent nil)))
(create-index Vehicle Color)

(setq body (make AutoBody))
(setq dt (make AutoDrivetrain))
(setq v (make Vehicle :Color "red" :Manufacturer "MCC" :Body body
              :Drivetrain dt))
(setq t1 (make AutoTires :parent ((v Tires))))
(setq t2 (make AutoTires :parent ((v Tires))))

(components-of v)
(parents-of body)
(exclusive-component-of body v)
(select Vehicle (= Color "red"))
(select AutoTires (part-of v))
(describe Vehicle)

;; Live schema evolution (paper Section 4) as messages:
(make-shared Vehicle Body)           ;; I2: exclusive -> shared
(setq v2 (make Vehicle :Body body))  ;; the body is now shareable
(parents-of body)

(delete v)
(delete v2)
(parents-of body)   ;; independent references: the body survived
"""


def format_result(value):
    if isinstance(value, list):
        return "(" + " ".join(format_result(v) for v in value) + ")"
    if value is True:
        return "t"
    if value is None:
        return "nil"
    return str(value)


def run_script(interpreter, text, echo=True):
    from repro.query.sexpr import parse_all

    for form in parse_all(text):
        if echo:
            print(f"> {render_form(form)}")
        try:
            result = interpreter.eval_form(form)
        except ReproError as error:
            print(f"!! {type(error).__name__}: {error}")
            continue
        print(format_result(result))


def render_form(form):
    from repro.query.sexpr import Keyword, QUOTE, Symbol

    if isinstance(form, list):
        if form and form[0] == QUOTE:
            return "'" + render_form(form[1])
        return "(" + " ".join(render_form(f) for f in form) + ")"
    if isinstance(form, str):
        return f'"{form}"'
    if form is True:
        return "t"
    if form is None:
        return "nil"
    return str(form)


def repl(interpreter):
    print("ORION-style shell — type messages, (quit) to exit.")
    buffer = ""
    while True:
        try:
            prompt = "orion> " if not buffer else "  ...> "
            line = input(prompt)
        except EOFError:
            break
        buffer += line + "\n"
        if buffer.count("(") > buffer.count(")"):
            continue  # unbalanced: keep reading
        text, buffer = buffer, ""
        if text.strip() in ("(quit)", "(exit)"):
            break
        if not text.strip():
            continue
        try:
            run_script(interpreter, text, echo=False)
        except QuerySyntaxError as error:
            print(f"!! syntax: {error}")


def main():
    interpreter = Interpreter()
    if len(sys.argv) > 1:
        if sys.argv[1] == "--demo":
            run_script(interpreter, DEMO)
        else:
            with open(sys.argv[1]) as handle:
                run_script(interpreter, handle.read())
    elif sys.stdin.isatty():
        repl(interpreter)
    else:
        run_script(interpreter, sys.stdin.read())


if __name__ == "__main__":
    main()
