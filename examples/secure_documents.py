#!/usr/bin/env python3
"""Composite objects as a unit of authorization (paper Section 6).

Reproduces the Figure 4/5 scenarios: one grant on a composite root covers
every component; a component shared by two composites combines the implied
authorizations ("the strongest wins"); contradictory strong grants are
rejected; and the full Figure 6 matrix is printed.

Run:  python examples/secure_documents.py
"""

from repro import AttributeSpec, Database, SetOf
from repro.authorization import AuthorizationEngine, render_figure6
from repro.errors import AccessDenied, AuthorizationConflict


def main():
    db = Database()
    db.make_class("Element")
    db.make_class("Design", attributes=[
        AttributeSpec("Name", domain="string"),
        AttributeSpec("Elements", domain=SetOf("Element"), composite=True,
                      exclusive=False, dependent=False),
    ])

    # Figure 5 topology: two designs sharing a standard cell o'.
    std_cell = db.make("Element")
    private_j = db.make("Element")
    private_k = db.make("Element")
    design_j = db.make("Design",
                       values={"Name": "J", "Elements": [std_cell, private_j]})
    design_k = db.make("Design",
                       values={"Name": "K", "Elements": [std_cell, private_k]})

    auth = AuthorizationEngine(db)

    # One grant on the root covers the whole composite (Figure 4).
    auth.grant("elisa", "sR", on_instance=design_j)
    print("elisa reads design J's private element:",
          auth.check("elisa", "R", private_j))
    print("elisa reads the shared standard cell:  ",
          auth.check("elisa", "R", std_cell))
    print("elisa reads design K's private element:",
          auth.check("elisa", "R", private_k))
    print("stored authorization records:", auth.stored_record_count(),
          "(one grant, implicit coverage)")

    # Strongest-wins on the shared component (Figure 5 + Section 6 text).
    auth.grant("elisa", "sW", on_instance=design_k)
    print("\nafter sW on design K, elisa writes the shared cell:",
          auth.check("elisa", "W", std_cell))

    # Conflicting grant rejected: s¬R on J implies s¬W on the shared cell,
    # so a later sW on K must fail (the paper's example).
    auth.grant("jorge", "s¬R", on_instance=design_j)
    try:
        auth.grant("jorge", "sW", on_instance=design_k)
    except AuthorizationConflict as error:
        print("\nconflicting grant rejected:", error)

    try:
        auth.require("jorge", "R", std_cell)
    except AccessDenied as error:
        print("negative authorization enforced:", error)

    # Class-level implicit authorization: covers instances and their
    # components, but NOT unrelated instances of the component classes.
    stray_element = db.make("Element")
    auth.grant("won", "sR", on_class="Design")
    print("\nwon reads any design's components:",
          auth.check("won", "R", std_cell))
    print("won reads a stray element:",
          auth.check("won", "R", stray_element))

    print("\nFigure 6 — implicit authorization on a shared component")
    print("(rows: grant on composite j; columns: grant on composite k)\n")
    print(render_figure6())


if __name__ == "__main__":
    main()
