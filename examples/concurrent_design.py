#!/usr/bin/env python3
"""Composite objects as a unit of locking (paper Section 7, Figures 7-9).

Prints the derived compatibility matrices, replays the paper's locking
Examples 1-3, demonstrates the GARZ88 root-locking anomaly on shared
references, and races the three locking disciplines in the deterministic
concurrency simulator.

Run:  python examples/concurrent_design.py
"""

from repro import AttributeSpec, Database, LockConflictError, SetOf
from repro.bench import print_table
from repro.locking import (
    CompositeLockingProtocol,
    FIGURE7_MATRIX,
    FIGURE7_MODES,
    LockTable,
    RootLockingAlgorithm,
    render_matrix,
)
from repro.sim import ConcurrencySimulator
from repro.workloads import composite_mix
from repro.workloads.parts import build_assembly


def figure9_database():
    db = Database()
    db.make_class("W")
    db.make_class("C", attributes=[
        AttributeSpec("w", domain="W", composite=True, exclusive=True,
                      dependent=True)])
    db.make_class("I", attributes=[
        AttributeSpec("c", domain="C", composite=True, exclusive=True,
                      dependent=True)])
    db.make_class("K", attributes=[
        AttributeSpec("cs", domain=SetOf("C"), composite=True,
                      exclusive=False, dependent=False)])
    w1 = db.make("W"); c1 = db.make("C", values={"w": w1})
    i1 = db.make("I", values={"c": c1})
    w2 = db.make("W"); c2 = db.make("C", values={"w": w2})
    k1 = db.make("K", values={"cs": [c2]})
    k2 = db.make("K", values={"cs": [c2]})
    return db, i1, k1, k2


def main():
    print("Figure 7 — granularity + exclusive composite locking")
    print(render_matrix(FIGURE7_MODES, FIGURE7_MATRIX))
    print("\nFigure 8 — with the shared composite modes")
    print(render_matrix())

    # -- Figure 9 examples -------------------------------------------------
    db, i1, k1, k2 = figure9_database()
    table = LockTable()
    protocol = CompositeLockingProtocol(db, table)
    print("\nExample 1 (update composite rooted at i1):")
    for resource, mode in protocol.lock_composite("T1", i1, "write"):
        print(f"  lock {resource} in {mode}")
    print("Example 2 (read composite rooted at k1):")
    for resource, mode in protocol.lock_composite("T2", k1, "read"):
        print(f"  lock {resource} in {mode}")
    print("Examples 1 and 2 coexist.")
    try:
        protocol.lock_composite("T3", k2, "write", wait=False)
    except LockConflictError as error:
        print(f"Example 3 (update composite rooted at k2) blocks: {error}")

    # -- GARZ88 anomaly -------------------------------------------------------
    db2 = Database()
    db2.make_class("Obj")
    db2.make_class("Root", attributes=[
        AttributeSpec("kids", domain=SetOf("Obj"), composite=True,
                      exclusive=False, dependent=False)])
    shared = db2.make("Obj")
    p, q = db2.make("Obj"), db2.make("Obj")
    db2.make("Root", values={"kids": [shared, p]})
    db2.make("Root", values={"kids": [shared, q]})
    garz = RootLockingAlgorithm(db2)
    garz.lock_component("T1", p, "read")
    garz.lock_component("T2", q, "write")
    conflicts = garz.detect_implicit_conflicts()
    print("\nGARZ88 root locking with shared references — undetected "
          "conflicts:")
    for conflict in conflicts:
        print(f"  {conflict.instance}: {conflict.txn_a} holds implicit "
              f"{conflict.mode_a}, {conflict.txn_b} holds implicit "
              f"{conflict.mode_b}")

    # -- Simulator race ---------------------------------------------------------
    db3 = Database()
    trees = [build_assembly(db3, depth=2, fanout=3) for _ in range(6)]
    roots = [t.root for t in trees]
    components = {t.root: t.all_uids[1:] for t in trees}
    rows = []
    for discipline in ("composite", "instance", "class"):
        scripts = composite_mix(roots, transactions=24, steps_per_txn=3,
                                read_ratio=0.7,
                                components_by_root=components, seed=29)
        result = ConcurrencySimulator(db3, discipline).run(scripts)
        rows.append(result.row())
    print_table(rows, title="Locking disciplines under a mixed workload "
                            "(24 transactions, 6 composite objects)")


if __name__ == "__main__":
    main()
