#!/usr/bin/env python3
"""Versions of composite objects (paper Section 5, Figures 1-3).

A CAD-flavoured scenario: a versionable Design holds independent exclusive
references to versionable Modules.  The script walks the exact mechanics
of Figures 1-3: derivation rebinding, dynamic default resolution, and the
reverse composite generic references with their ref-counts.

Run:  python examples/cad_versioning.py
"""

from repro import Database
from repro.versions import VersionManager
from repro.workloads.cad import define_cad_schema


def main():
    db = Database()
    define_cad_schema(db)
    versions = VersionManager(db)

    # A module and a design statically bound to its first version.
    g_alu, alu_v1 = versions.create("Module", values={"Name": "ALU", "Gates": 1200})
    g_design, design_v1 = versions.create(
        "Design", values={"Name": "CPU", "Modules": [alu_v1]}
    )
    print(f"design v1 references module version {db.value(design_v1, 'Modules')}")

    # Figure 1: deriving design v2 rebinds the exclusive static reference
    # to the module's *generic* instance (dynamic binding).
    derive = versions.derive(design_v1)
    design_v2 = derive.new_version
    print(f"design v2 references {db.value(design_v2, 'Modules')} "
          f"(rebound: {derive.rebound})")

    # Dynamic binding resolves to the default version — initially v1...
    print("v2 resolves modules to:",
          [str(u) for u in versions.resolve_value(design_v2, "Modules")])
    # ...and follows new module versions automatically.
    alu_v2 = versions.derive(alu_v1, overrides={"Gates": 1100}).new_version
    print("after deriving ALU v2, v2 resolves to:",
          [str(u) for u in versions.resolve_value(design_v2, "Modules")])
    # A user default pins it.
    versions.set_default(g_alu, alu_v1)
    print("with user default ALU v1:",
          [str(u) for u in versions.resolve_value(design_v2, "Modules")])

    # Figure 3: the reverse composite generic reference and its ref-count.
    print(f"\nref-count g(CPU) --Modules--> g(ALU): "
          f"{versions.ref_count(g_design, 'Modules', g_alu)}")
    print("generic parents of g(ALU):",
          [str(u) for u in versions.generic_parents(g_alu)])

    # Removing references decrements the count; at zero the generic-level
    # reverse reference disappears (the paper's Figure 3 walk-through).
    db.remove_from(design_v1, "Modules", alu_v1)
    print("after unlinking v1's static ref, ref-count =",
          versions.ref_count(g_design, "Modules", g_alu))
    db.remove_from(design_v2, "Modules", g_alu)
    print("after unlinking v2's dynamic ref, ref-count =",
          versions.ref_count(g_design, "Modules", g_alu))
    print("generic parents of g(ALU):", versions.generic_parents(g_alu))

    # Change notification ([CHOU88]): the design is flagged when a module
    # it references evolves.
    from repro.versions import ChangeNotifier

    notifier = ChangeNotifier(db, versions)
    db.insert_into(design_v2, "Modules", g_alu)   # re-link dynamically
    notifier.acknowledge(design_v2)
    alu_v3 = versions.derive(alu_v2).new_version
    print("\nafter deriving ALU v3, design v2 has pending notifications:")
    for event in notifier.pending(design_v2):
        print("  ", event)
    notifier.acknowledge(design_v2)
    print("acknowledged; pending now:", notifier.pending(design_v2))

    # CV-4X: deleting the last version of the design deletes its generic.
    versions.delete_version(design_v1)
    versions.delete_version(design_v2)
    print("\ndesign generic survives?",
          versions.registry.is_generic(g_design))
    print("module generic survives (independent reference)?",
          versions.registry.is_generic(g_alu))

    db.validate()
    print("\ndone.")


if __name__ == "__main__":
    main()
