"""Instance objects.

An :class:`Instance` is one database object: a UID, the name of its class,
a value for every effective attribute of that class, and — per paper
Section 2.4 — the list of *reverse composite references* to its parents,
stored inside the object itself.

Instances are dynamic in the ZODB style: attribute values live in a dict
and the set of attributes follows the class definition, so schema evolution
can add, drop, or re-type attributes of live objects.  Each instance also
carries the change-count (CC) described in paper 4.3: "The CC is also a
system-defined attribute of the class C; that is, each instance of C
carries a value for CC, although the value may not be up to date."
"""

from __future__ import annotations

from ..errors import TopologyError
from .references import ReverseReference


class Instance:
    """One object in the database.

    Client code normally goes through :class:`repro.Database` rather than
    mutating instances directly; the mutation methods here maintain only
    *local* invariants (a single reverse reference per (parent, attribute)
    pair), while the database layer enforces the topology rules, which need
    a global view.
    """

    __slots__ = (
        "uid",
        "class_name",
        "values",
        "reverse_references",
        "change_count",
        "deleted",
    )

    def __init__(self, uid, class_name, values=None, change_count=0):
        #: The object's UID.
        self.uid = uid
        #: Name of the class this object is an instance of.
        self.class_name = class_name
        #: Attribute name -> value (UIDs for reference attributes, or a
        #: list of UIDs for set-of attributes).
        self.values = dict(values or {})
        #: In-object reverse composite references (paper 2.4).
        self.reverse_references = []
        #: Deferred-schema-evolution change count (paper 4.3).
        self.change_count = change_count
        #: Tombstone flag set by the deletion engine.
        self.deleted = False

    # -- attribute values ----------------------------------------------------

    def get(self, attribute, default=None):
        """Return the value of *attribute* (or *default* when unset)."""
        return self.values.get(attribute, default)

    def set(self, attribute, value):
        """Set the raw value of *attribute* (no topology checks)."""
        self.values[attribute] = value

    def drop_value(self, attribute):
        """Remove the stored value for *attribute* (schema evolution)."""
        self.values.pop(attribute, None)

    # -- reverse composite references (paper 2.4) -----------------------------

    def add_reverse_reference(self, parent_uid, dependent, exclusive, attribute):
        """Insert a reverse composite reference to *parent_uid*.

        Implements step 3 of the paper's make-component algorithm: "Insert
        in O a reverse composite reference to O' with the D flag set if A
        is a dependent attribute, the X flag set if A is an exclusive
        attribute."
        """
        if self.find_reverse_reference(parent_uid, attribute) is not None:
            raise TopologyError(
                f"{self.uid} already has a reverse reference from "
                f"{parent_uid}.{attribute}"
            )
        self.reverse_references.append(
            ReverseReference(
                parent=parent_uid,
                dependent=dependent,
                exclusive=exclusive,
                attribute=attribute,
            )
        )

    def remove_reverse_reference(self, parent_uid, attribute):
        """Remove the reverse reference from (*parent_uid*, *attribute*).

        Returns the removed :class:`ReverseReference`, or None when absent
        (deletion is tolerant so cascades can be idempotent).
        """
        for index, ref in enumerate(self.reverse_references):
            if ref.parent == parent_uid and ref.attribute == attribute:
                return self.reverse_references.pop(index)
        return None

    def find_reverse_reference(self, parent_uid, attribute=None):
        """Find the reverse reference from *parent_uid* (any attribute when
        *attribute* is None)."""
        for ref in self.reverse_references:
            if ref.parent == parent_uid and (
                attribute is None or ref.attribute == attribute
            ):
                return ref
        return None

    def replace_reverse_reference(self, old, new):
        """Swap reverse reference *old* for *new* (flag updates, rebinding)."""
        index = self.reverse_references.index(old)
        self.reverse_references[index] = new

    # -- Definition 1 partitions (paper 2.2) -----------------------------------

    def ix_parents(self):
        """Ix(O): parents holding an independent exclusive reference."""
        return [r.parent for r in self.reverse_references if r.exclusive and not r.dependent]

    def dx_parents(self):
        """Dx(O): parents holding a dependent exclusive reference."""
        return [r.parent for r in self.reverse_references if r.exclusive and r.dependent]

    def is_parents(self):
        """Is(O): parents holding an independent shared reference."""
        return [r.parent for r in self.reverse_references if not r.exclusive and not r.dependent]

    def ds_parents(self):
        """Ds(O): parents holding a dependent shared reference."""
        return [r.parent for r in self.reverse_references if not r.exclusive and r.dependent]

    def composite_parents(self):
        """All composite parents (union of the four partitions)."""
        return [r.parent for r in self.reverse_references]

    def has_composite_reference(self):
        """True when any composite reference points at this object."""
        return bool(self.reverse_references)

    def has_exclusive_reference(self):
        """True when an exclusive composite reference points at this object."""
        return any(r.exclusive for r in self.reverse_references)

    def has_shared_reference(self):
        """True when a shared composite reference points at this object."""
        return any(not r.exclusive for r in self.reverse_references)

    # -- sizing (benchmark B5: in-object reverse refs grow the object) ---------

    def storage_size(self):
        """Approximate serialized size in bytes.

        Deliberately simple and deterministic: a fixed per-object header,
        per-attribute name + value estimate, and the paper's own accounting
        for reverse references (a UID plus two flag bits each).  Benchmark
        B5 uses this to quantify "it causes the object size to increase".
        """
        header = 16
        body = 0
        for name, value in self.values.items():
            body += len(name) + _value_size(value)
        reverse = len(self.reverse_references) * (8 + 1 + len("attribute"))
        return header + body + reverse

    def __repr__(self):
        flags = "deleted " if self.deleted else ""
        return f"<Instance {flags}{self.uid} {self.values!r} rev={len(self.reverse_references)}>"


def _value_size(value):
    """Byte-size estimate of one attribute value."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(_value_size(v) for v in value)
    # UIDs and anything else: one object-identifier slot.
    return 8
