"""The Deletion Rule (paper Section 2.2).

Deleting an object O' propagates along its composite references:

1. *independent exclusive* — never propagates;
2. *dependent exclusive* — always deletes the component;
3. *independent shared* — never propagates;
4. *dependent shared* — deletes the component only when O' was the last
   member of Ds(O); otherwise Ds(O) merely loses O'.

Condition 3 of the paper's Deletion Rule (transitive propagation through
intermediate objects that are themselves being deleted) falls out of the
worklist formulation below: every object enqueued for deletion processes
its own outgoing references the same way the root did.

Deletion also maintains referential hygiene beyond the rule itself: a
deleted object is unlinked from the forward attributes of its surviving
parents, and surviving components lose their reverse references to it.
Weak references are *not* chased — the paper gives them no semantics — so
they may dangle; :func:`repro.core.operations.find_dangling_references`
reports them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class DeletionReport:
    """What one ``delete`` call did.

    Benchmark B7 compares these reports between the extended model and the
    KIM87b baseline to quantify "impedes reuse of objects in a complex
    design environment".
    """

    #: UIDs deleted, in cascade order (the requested root first).
    deleted: list = field(default_factory=list)
    #: Components that survived because their reference was independent.
    preserved_independent: list = field(default_factory=list)
    #: Components that survived because other dependent-shared parents remain.
    preserved_shared: list = field(default_factory=list)
    #: Surviving parents whose forward attribute lost a deleted component.
    unlinked_parents: list = field(default_factory=list)

    @property
    def deleted_count(self):
        return len(self.deleted)

    @property
    def preserved_count(self):
        return len(self.preserved_independent) + len(self.preserved_shared)


class DeletionEngine:
    """Executes the Deletion Rule over a database's object table.

    The engine is deliberately separate from :class:`repro.Database` so the
    KIM87b baseline (which hard-wires dependent-exclusive semantics) can
    reuse the same machinery with a different reference classification.
    """

    def __init__(self, database):
        self._db = database

    def delete(self, uid):
        """Delete *uid* and everything the Deletion Rule requires.

        Returns a :class:`DeletionReport`.  Raises
        :class:`repro.errors.UnknownObjectError` when *uid* is not live.
        """
        db = self._db
        root = db.resolve(uid)  # raises when unknown/deleted
        report = DeletionReport()
        queue = deque([root.uid])
        scheduled = {root.uid}

        while queue:
            current_uid = queue.popleft()
            instance = db.peek(current_uid)
            if instance is None or instance.deleted:
                continue
            instance.deleted = True
            report.deleted.append(current_uid)

            self._propagate_to_components(instance, queue, scheduled, report)
            self._unlink_from_parents(instance, scheduled, report)
            db.discard(current_uid)
            for callback in db.on_update:
                callback(instance, None)

        return report

    # -- internals ----------------------------------------------------------

    def _propagate_to_components(self, instance, queue, scheduled, report):
        """Apply deletion conditions 1-4 to every outgoing composite ref."""
        db = self._db
        for attr, child_uid in db.iter_composite_values(instance):
            child = db.peek(child_uid)
            if child is None or child.deleted:
                continue
            removed = child.remove_reverse_reference(instance.uid, attr)
            if removed is None:
                continue
            spec = db.lattice.get(instance.class_name).attribute(attr)
            for callback in db.on_unlink:
                callback(instance, spec, child)
            if removed.dependent:
                if removed.exclusive:
                    # Condition 2: dependent exclusive always cascades.
                    self._schedule(child.uid, queue, scheduled)
                elif not child.ds_parents():
                    # Condition 4: last dependent-shared parent gone.
                    self._schedule(child.uid, queue, scheduled)
                else:
                    report.preserved_shared.append(child.uid)
            else:
                # Conditions 1 and 3: independent references never cascade.
                report.preserved_independent.append(child.uid)
            db.persist(child)

    def _unlink_from_parents(self, instance, scheduled, report):
        """Remove the dying object from its surviving parents' attributes."""
        db = self._db
        for ref in list(instance.reverse_references):
            if ref.parent in scheduled:
                continue  # parent is dying too; nothing to fix up
            parent = db.peek(ref.parent)
            if parent is None or parent.deleted:
                continue
            if db.unlink_forward_value(parent, ref.attribute, instance.uid):
                report.unlinked_parents.append(parent.uid)
                spec = db.lattice.get(parent.class_name).attribute(ref.attribute)
                for callback in db.on_unlink:
                    callback(parent, spec, instance)
                db.persist(parent)

    @staticmethod
    def _schedule(uid, queue, scheduled):
        if uid not in scheduled:
            scheduled.add(uid)
            queue.append(uid)


def would_delete(database, uid):
    """Predict the cascade of ``delete(uid)`` without performing it.

    Returns the set of UIDs that would be deleted.  Useful for interactive
    tools and used by tests to check the engine against an independent
    implementation of the rule.
    """
    root = database.resolve(uid)
    deleted = {root.uid}
    # Iterate to a fixed point: an object dies when (a) it is the root, or
    # (b) some dying parent holds a dependent exclusive reference to it, or
    # (c) ALL parents in its Ds set are dying and Ds is non-empty, and it
    # has no dependent-exclusive parent outside the dying set.
    changed = True
    while changed:
        changed = False
        for instance in database.live_instances():
            if instance.uid in deleted:
                continue
            dx = instance.dx_parents()
            ds = instance.ds_parents()
            dies = False
            if dx and dx[0] in deleted:
                dies = True
            elif ds and all(parent in deleted for parent in ds):
                dies = True
            if dies:
                deleted.add(instance.uid)
                changed = True
    return deleted
