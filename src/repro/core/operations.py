"""Operations on composite objects (paper Section 3).

Implements the ORION messages::

    (components-of Object [ListofClasses] [Exclusive] [Shared] [Level])
    (parents-of    Object [ListofClasses] [Exclusive] [Shared])
    (ancestors-of  Object [ListofClasses] [Exclusive] [Shared])
    (component-of  Object1 Object2)
    (child-of      Object1 Object2)
    (exclusive-component-of Object1 Object2)
    (shared-component-of    Object1 Object2)

plus the class predicates ``compositep`` / ``exclusive-compositep`` /
``shared-compositep`` / ``dependent-compositep`` (those live on
:class:`repro.schema.classdef.ClassDef` and are re-exported through the
database façade).

All traversals are breadth-first, so the ``Level`` argument of
``components-of`` coincides with the paper's definition of a *level-n
component* ("the shortest path between O and O' has n composite
references").
"""

from __future__ import annotations

from collections import deque


def _class_filter(database, list_of_classes):
    """Build a UID predicate from the optional ListofClasses argument.

    Membership is by class *hierarchy*: naming a class admits instances of
    its subclasses too, matching ORION's class-hierarchy query semantics.
    """
    if not list_of_classes:
        return lambda uid: True
    lattice = database.lattice
    admitted = set()
    for name in list_of_classes:
        admitted.update(lattice.class_hierarchy_scope(name))
    return lambda uid: database.class_of(uid) in admitted


def _kind_admits(exclusive, shared, ref_is_exclusive):
    """Apply the Exclusive/Shared filter arguments of Section 3.1.

    "If Exclusive is True, only the exclusive components are retrieved;
    and if Shared is True, only shared components. If both are Nil, all
    components are retrieved."  Both True admits everything (the union).
    """
    if exclusive and shared:
        return True
    if exclusive:
        return ref_is_exclusive
    if shared:
        return not ref_is_exclusive
    return True


def components_of(database, uid, classes=None, exclusive=False, shared=False, level=None):
    """``components-of`` — all (transitive) components of *uid*.

    Returns UIDs in BFS order, without *uid* itself, each appearing once
    (at its shortest-path level).  *level* limits the depth; ``level=1``
    returns the children.
    """
    database.resolve(uid)
    admit_class = _class_filter(database, classes)
    results = []
    seen = {uid}
    queue = deque([(uid, 0)])
    while queue:
        current, depth = queue.popleft()
        if level is not None and depth >= level:
            continue
        instance = database.peek(current)
        if instance is None:
            continue
        for attr, child_uid in database.iter_composite_values(instance):
            if child_uid in seen:
                continue
            child = database.peek(child_uid)
            if child is None or child.deleted:
                continue
            spec = database.lattice.get(instance.class_name).attribute(attr)
            seen.add(child_uid)
            queue.append((child_uid, depth + 1))
            if _kind_admits(exclusive, shared, spec.exclusive) and admit_class(child_uid):
                results.append(child_uid)
    return results


def children_of(database, uid, classes=None, exclusive=False, shared=False):
    """Direct components (level-1) of *uid*."""
    return components_of(
        database, uid, classes=classes, exclusive=exclusive, shared=shared, level=1
    )


def parents_of(database, uid, classes=None, exclusive=False, shared=False):
    """``parents-of`` — objects with a *direct* composite reference to *uid*.

    Served straight from the in-object reverse composite references, which
    is the whole point of storing them (paper 2.4: "the user often finds
    it necessary to determine its parents or ancestors ... we need to
    maintain in each component a list of reverse composite references").
    """
    instance = database.resolve(uid)
    admit_class = _class_filter(database, classes)
    results = []
    for ref in instance.reverse_references:
        if not _kind_admits(exclusive, shared, ref.exclusive):
            continue
        if not admit_class(ref.parent):
            continue
        if ref.parent not in results:
            results.append(ref.parent)
    return results


def ancestors_of(database, uid, classes=None, exclusive=False, shared=False):
    """``ancestors-of`` — transitive closure of ``parents-of``.

    The Exclusive/Shared filter applies to each hop's reference type; the
    class filter applies to which ancestors are *returned* (traversal is
    not cut by class, matching ``components-of``).
    """
    database.resolve(uid)
    admit_class = _class_filter(database, classes)
    results = []
    seen = {uid}
    queue = deque([uid])
    while queue:
        current = queue.popleft()
        instance = database.peek(current)
        if instance is None:
            continue
        for ref in instance.reverse_references:
            if ref.parent in seen:
                continue
            if not _kind_admits(exclusive, shared, ref.exclusive):
                continue
            seen.add(ref.parent)
            queue.append(ref.parent)
            if admit_class(ref.parent):
                results.append(ref.parent)
    return results


def child_of(database, uid1, uid2):
    """``child-of`` — True when *uid1* is a direct component of *uid2*."""
    instance = database.resolve(uid1)
    return any(ref.parent == uid2 for ref in instance.reverse_references)


def component_of(database, uid1, uid2):
    """``component-of`` — True when *uid1* is a direct or indirect
    component of *uid2*.

    Implemented by walking *up* from uid1 through reverse references (the
    paper notes ``components-of`` + scan also works but is a long way
    round).
    """
    database.resolve(uid1)
    database.resolve(uid2)
    seen = set()
    queue = deque([uid1])
    while queue:
        current = queue.popleft()
        instance = database.peek(current)
        if instance is None:
            continue
        for ref in instance.reverse_references:
            if ref.parent == uid2:
                return True
            if ref.parent not in seen:
                seen.add(ref.parent)
                queue.append(ref.parent)
    return False


def exclusive_component_of(database, uid1, uid2):
    """``exclusive-component-of`` (paper 3.2).

    True when *uid1* is a component of *uid2* and is an exclusive
    component (its composite references are exclusive — by Topology Rule 3
    an object's composite references are all-exclusive or all-shared, so
    this is a property of *uid1*).  Nil (False) when not a component or a
    shared component.
    """
    instance = database.resolve(uid1)
    if not instance.has_exclusive_reference():
        return False
    return component_of(database, uid1, uid2)


def shared_component_of(database, uid1, uid2):
    """``shared-component-of`` (paper 3.2).

    The paper observes this equals ``component-of`` followed by a negative
    ``exclusive-component-of`` in the same transaction; we implement it
    directly.
    """
    instance = database.resolve(uid1)
    if not instance.has_shared_reference():
        return False
    return component_of(database, uid1, uid2)


def roots_of(database, uid):
    """The roots of every composite object containing *uid*.

    Not a paper message, but the system needs it internally ("the system
    needs to determine efficiently the parents or the roots of a given
    component ... to efficiently support locking, versions, and
    authorization"); the GARZ88 root-locking algorithm (Section 7) calls
    this.  A root is an ancestor with no composite parents of its own; an
    object with no parents is its own root.
    """
    instance = database.resolve(uid)
    if not instance.reverse_references:
        return [uid]
    roots = []
    seen = {uid}
    queue = deque([uid])
    while queue:
        current = queue.popleft()
        node = database.peek(current)
        if node is None:
            continue
        if current != uid and not node.reverse_references:
            if current not in roots:
                roots.append(current)
            continue
        for ref in node.reverse_references:
            if ref.parent not in seen:
                seen.add(ref.parent)
                queue.append(ref.parent)
    # An object whose every ancestor chain is cyclic has no parentless
    # ancestor; treat it as its own root.
    return roots or [uid]


def find_dangling_references(database):
    """Report weak references to objects that no longer exist.

    The Deletion Rule leaves weak references untouched; this audit helper
    finds ``(holder_uid, attribute, dangling_target)`` triples.
    """
    dangles = []
    for instance in database.live_instances():
        classdef = database.lattice.get(instance.class_name)
        for spec in classdef.attributes():
            if not spec.is_reference or spec.is_composite:
                continue
            value = instance.get(spec.name)
            targets = value if isinstance(value, list) else [value]
            for target in targets:
                if target is not None and database.peek(target) is None:
                    dangles.append((instance.uid, spec.name, target))
    return dangles
