"""The database façade.

:class:`Database` ties the subsystems together: the class lattice, the
object table, the topology checks, the Deletion Rule engine, the
Section-3 operations, optional paged storage with first-parent clustering,
and hooks the schema-evolution, version, authorization, and locking
managers attach to.

The public surface mirrors ORION's message API with Pythonic names::

    db = Database()
    db.make_class("Vehicle", attributes=[...])
    v = db.make("Vehicle", values={"Manufacturer": "MCC"})
    body = db.make("AutoBody", parents=[(v, "Body")])       # top-down
    db.make_part_of(existing_engine, v, "Drivetrain")        # bottom-up
    db.components_of(v)
    db.delete(v)
"""

from __future__ import annotations

import contextlib

from ..errors import (
    ClassDefinitionError,
    DomainError,
    TopologyError,
    UnknownObjectError,
)
from ..schema.attribute import AttributeSpec
from ..schema.classdef import ClassDef
from ..schema.lattice import ClassLattice
from ..storage.clustering import ClusteringPolicy
from ..storage.store import ObjectStore
from . import operations as ops
from .deletion import DeletionEngine
from .identity import UIDAllocator
from .instance import Instance
from .topology import check_make_component, check_topology_rules


class Database:
    """An ORION-style object database with extended composite objects.

    Parameters
    ----------
    paged:
        When True, every object is written through to a page-backed
        :class:`ObjectStore` whose I/O the experiments meter.  The object
        table remains authoritative either way (the store is a faithful
        mirror), so paged mode changes performance accounting, never
        semantics.
    buffer_capacity:
        Buffer-pool frames for paged mode.
    clustering:
        ``"parent"`` (the paper's first-parent policy) or ``"none"``.
    """

    def __init__(self, paged=False, buffer_capacity=64, clustering="parent"):
        self.lattice = ClassLattice()
        self.allocator = UIDAllocator()
        self._objects = {}
        #: Class extents: class name -> set of live UIDs.  ORION maintains
        #: extents for associative access; here they keep instances_of()
        #: O(extent) instead of O(database).
        self._extents = {}
        self.store = ObjectStore(buffer_capacity=buffer_capacity) if paged else None
        self.clustering = ClusteringPolicy(self.lattice, mode=clustering)
        self.clustering.class_resolver = self.class_of
        self._deletion = DeletionEngine(self)
        #: Hooks run on every resolve(); the deferred-evolution manager
        #: registers one to bring instances up to date (paper 4.3).
        self.access_hooks = []
        #: Optional callable(class_name) -> int giving the change count a
        #: new instance is born with ("When a new instance of the class C
        #: is created, the CC of the instance is set to the current value
        #: of the CC of the class", paper 4.3).
        self.cc_provider = None
        #: Optional override of the Make-Component check, with signature
        #: ``(parent_instance, spec, child_instance) -> None`` (raise to
        #: reject).  The version manager installs one implementing rule
        #: CV-2X, which relaxes exclusivity for generic instances.
        self.link_policy = None
        #: Callbacks ``(parent_instance, spec, child_instance)`` fired when
        #: a composite link is added / removed (including by deletion).
        #: The version manager maintains reverse composite generic
        #: reference counts here (paper 5.3).
        self.on_link = []
        self.on_unlink = []
        #: Optional predicate ``uid -> bool``: instances for which the
        #: strict Topology Rules are relaxed by the link policy (the
        #: version manager exempts generic instances — rule CV-2X allows
        #: several same-hierarchy exclusive references to a generic).
        self.topology_exempt = None
        #: Callbacks ``(instance, attribute_name)`` fired after an
        #: attribute value changes (attribute_name is None when many
        #: attributes may have changed at once, e.g. object creation).
        #: The query-index manager subscribes here.
        self.on_update = []
        #: Callbacks ``(instance,)`` fired whenever an instance is
        #: persisted (covers reverse-reference and flag changes that do
        #: not alter forward attribute values).  The durability journal
        #: subscribes to both on_update and on_persist.
        self.on_persist = []
        #: Callbacks ``()`` fired when a top-level mutating operation
        #: (``make``, ``set_value``, ``insert_into``, ``remove_from``,
        #: ``delete``) finishes.  The durability journal seals its
        #: current write batch here, so all redo records of one operation
        #: reach disk atomically.
        self.on_op_end = []
        #: Callbacks ``(txn,)`` fired by the transaction manager when a
        #: transaction commits / aborts.  The durability journal flushes
        #: the transaction's batched redo records on commit and drops
        #: them on abort.
        self.on_txn_commit = []
        self.on_txn_abort = []
        #: Callbacks ``(uid, attribute)`` fired by attribute-granular
        #: reads (:meth:`value`; :meth:`components_of` fires one per
        #: returned UID with attribute ``None`` — a whole-object
        #: footprint).  The isolation-history recorder subscribes here;
        #: the list is empty otherwise and the read path pays one
        #: truthiness check.
        self.on_read = []
        #: Callbacks ``(uid,)`` fired when :meth:`discard` removes an
        #: instance (the deletion engine's funnel) — the isolation-
        #: history recorder models a delete as the object's final write.
        self.on_delete = []
        #: Callbacks ``(instance,)`` fired *before* a mutation funnel
        #: changes an instance's forward state (and before ``discard``
        #: drops it).  The MVCC snapshot manager captures the
        #: pre-change image here, once per instance per commit scope,
        #: so snapshot readers below the current epoch still see the
        #: committed state while a writer holds X-locks.
        self.on_before_change = []
        #: Callbacks ``(uid, attribute, epoch)`` fired by the MVCC
        #: snapshot-read path (attribute ``None`` for whole-object
        #: footprints).  The isolation-history recorder subscribes here
        #: to attribute the read to the *version installed at or below
        #: that epoch* rather than the live tail.
        self.on_snapshot_read = []
        #: Commit epoch: the journal mirrors its monotonic batch
        #: sequence here on every seal (the MVCC snapshot token).  A
        #: database without a journal has it bumped by the snapshot
        #: manager instead; it stays 0 when neither is attached.
        self.commit_epoch = 0
        #: The attached :class:`repro.mvcc.manager.SnapshotManager`
        #: (None when MVCC is off); the transaction manager routes
        #: snapshot-mode reads through it.
        self.snapshot_manager = None
        #: The transaction whose operation is currently executing (set by
        #: :meth:`txn_context`); the journal routes redo records of an
        #: open transaction into that transaction's commit batch.
        self.current_txn = None
        #: Nesting depth of :meth:`_operation` brackets (``make_part_of``
        #: delegates to ``insert_into``/``set_value``, so brackets nest).
        self._op_depth = 0
        #: Counter of instance accesses (benchmarks read this).
        self.access_count = 0
        #: UID whose first store write is deferred to ``make`` placement.
        self._placement_pending = None
        #: Subsystem managers register themselves here on construction so
        #: the analysis plane (``Database.fsck()``, ``repro-check``, the
        #: server's ``check`` op) can audit everything that is wired up.
        self.versions = None
        self.evolution = None
        self.auth_engine = None

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------

    def make_class(
        self,
        name,
        superclasses=(),
        attributes=(),
        versionable=False,
        segment="",
        document="",
    ):
        """Define a class (the ``make-class`` message, paper 2.3).

        *attributes* is a sequence of :class:`AttributeSpec` (or dicts of
        keyword arguments for one).
        """
        specs = {}
        for item in attributes:
            spec = item if isinstance(item, AttributeSpec) else AttributeSpec(**item)
            if spec.name in specs:
                raise ClassDefinitionError(
                    f"class {name!r}: duplicate attribute {spec.name!r}"
                )
            specs[spec.name] = spec
        classdef = ClassDef(
            name=name,
            superclasses=tuple(superclasses),
            local=specs,
            versionable=versionable,
            segment=segment,
            document=document,
        )
        return self.lattice.define(classdef)

    def classdef(self, name):
        """The :class:`ClassDef` named *name*."""
        return self.lattice.get(name)

    # ------------------------------------------------------------------
    # Operation / transaction scoping (durability batching)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _operation(self):
        """Bracket one top-level mutating operation.

        ``on_op_end`` listeners run when the outermost bracket exits —
        on success *and* on failure, because a failed operation may have
        journaled compensating images that must still reach disk.
        """
        self._op_depth += 1
        try:
            yield
        finally:
            self._op_depth -= 1
            if self._op_depth == 0:
                for callback in self.on_op_end:
                    callback()

    @contextlib.contextmanager
    def txn_context(self, txn):
        """Mark *txn* as the transaction executing the enclosed operation
        (the transaction manager wraps every data operation in this, so
        the journal can batch redo records per transaction)."""
        previous = self.current_txn
        self.current_txn = txn
        try:
            yield
        finally:
            self.current_txn = previous

    # ------------------------------------------------------------------
    # Object table plumbing (used by the subsystem engines)
    # ------------------------------------------------------------------

    def resolve(self, uid):
        """Return the live instance of *uid*, applying access hooks.

        This is *the* access path: the deferred schema-evolution catch-up
        of paper 4.3 ("When an instance of C is accessed, the CC of the
        instance is checked against the CC in the operation log") happens
        here.
        """
        instance = self._objects.get(uid)
        if instance is None or instance.deleted:
            raise UnknownObjectError(uid)
        self.access_count += 1
        for hook in self.access_hooks:
            hook(instance)
        return instance

    def peek(self, uid):
        """Return the instance without hooks/erroring (None when absent)."""
        instance = self._objects.get(uid)
        if instance is None or instance.deleted:
            return None
        return instance

    def exists(self, uid):
        """True when *uid* names a live object."""
        return self.peek(uid) is not None

    def class_of(self, uid):
        """Current class name of *uid*.

        Prefer this over ``uid.class_name``: the UID embeds the class the
        object was *born* in (for segment routing), which goes stale when
        the class is renamed (schema evolution).
        """
        instance = self.peek(uid)
        return instance.class_name if instance is not None else uid.class_name

    def live_instances(self):
        """Iterate over all live instances."""
        return (obj for obj in self._objects.values() if not obj.deleted)

    def instances_of(self, class_name, include_subclasses=True):
        """Live instances of *class_name* (and subclasses by default)."""
        names = (
            self.lattice.class_hierarchy_scope(class_name)
            if include_subclasses
            else [class_name]
        )
        results = []
        for name in names:
            for uid in sorted(self._extents.get(name, ()),
                              key=lambda u: u.number):
                instance = self.peek(uid)
                if instance is not None:
                    results.append(instance)
        return results

    def rebuild_extents(self):
        """Recompute the class extents (after a class rename)."""
        self._extents.clear()
        for instance in self.live_instances():
            self._extents.setdefault(instance.class_name, set()).add(
                instance.uid
            )

    def discard(self, uid):
        """Remove *uid* from the object table and store (deletion engine)."""
        instance = self._objects.get(uid)
        if instance is not None:
            for callback in self.on_before_change:
                callback(instance)
            del self._objects[uid]
            extent = self._extents.get(instance.class_name)
            if extent is not None:
                extent.discard(uid)
            for callback in self.on_delete:
                callback(uid)
        if self.store is not None:
            self.store.delete(uid)

    def persist(self, instance, near_uid=None):
        """Write-through *instance* to the paged store and notify
        persistence listeners (the durability journal)."""
        if instance.deleted:
            return
        if instance.uid == self._placement_pending:
            # The object is mid-``make``: its first write must be the
            # placement-aware one (clustering hint), not an incidental
            # write-through from link bookkeeping.
            return
        for callback in self.on_persist:
            callback(instance)
        if self.store is None:
            return
        segment = self.clustering.segment_for_class(instance.class_name)
        self.store.write(instance, segment, near_uid=near_uid)

    # ------------------------------------------------------------------
    # Instance creation (the ``make`` message, paper 2.3)
    # ------------------------------------------------------------------

    def make(self, class_name, values=None, parents=(), **kw_values):
        """Create an instance, optionally as a part of existing parents.

        *parents* is a sequence of ``(parent_uid, attribute_name)`` pairs —
        the ``:parent`` keyword.  "If ParentAttributeName.i is a composite
        attribute, the new instance becomes part of ParentObject.i"; when
        several composite parents are given they must all be shared
        composite attributes (Topology Rule 3), which is checked *before*
        any state changes.

        *values* / keyword arguments supply attribute values; a UID value
        for a composite attribute makes that existing object a component of
        the new instance (Make-Component Rule enforced).

        Returns the new instance's UID.
        """
        with self._operation():
            return self._make(class_name, values, parents, **kw_values)

    def _make(self, class_name, values, parents, **kw_values):
        classdef = self.lattice.get(class_name)
        merged = dict(values or {})
        merged.update(kw_values)

        parent_pairs = [(p, a) for p, a in parents]
        self._check_parent_pairs(parent_pairs)

        uid = self.allocator.allocate(class_name)
        born_cc = self.cc_provider(class_name) if self.cc_provider else 0
        instance = Instance(uid, class_name, change_count=born_cc)
        self._extents.setdefault(class_name, set()).add(uid)
        self._placement_pending = uid
        # Initialize every effective attribute (init value or None/empty).
        for spec in classdef.attributes():
            if spec.name in merged:
                continue
            if spec.is_set:
                instance.set(spec.name, list(spec.init) if spec.init else [])
            else:
                instance.set(spec.name, spec.init)
        self._objects[uid] = instance

        try:
            for name, value in merged.items():
                self._assign(instance, classdef.attribute(name), value)
            for parent_uid, attribute in parent_pairs:
                self._attach_child(parent_uid, attribute, uid)
        except Exception:
            # Creation is atomic: roll back partial wiring.
            instance.deleted = True
            self._rollback_new(instance, parent_pairs)
            del self._objects[uid]
            self._extents[class_name].discard(uid)
            self._placement_pending = None
            raise
        finally:
            self._placement_pending = None

        if self.store is not None:
            segment, near_hint = self.clustering.placement(
                class_name, [p for p, _ in parent_pairs]
            )
            self.store.write(instance, segment, near_uid=near_hint)
        # Persist mutated parents even without a paged store: the
        # durability journal listens on on_persist, and the parent's
        # forward set just grew.
        for parent_uid, _ in parent_pairs:
            parent = self.peek(parent_uid)
            if parent is not None:
                self.persist(parent)
        self._notify_update(instance, None)
        return uid

    def _check_parent_pairs(self, parent_pairs):
        """Pre-validate the ``:parent`` list (paper 2.3).

        "When more than one (ParentObject.i ParentAttributeName.i) is
        specified such that ParentAttributeName.i is a composite attribute,
        then ... these attributes must be shared composite attributes."
        """
        composite_pairs = []
        for parent_uid, attribute in parent_pairs:
            parent = self.resolve(parent_uid)
            spec = self.lattice.get(parent.class_name).attribute(attribute)
            if spec.is_composite:
                composite_pairs.append((parent_uid, attribute, spec))
        if len(composite_pairs) > 1:
            offenders = [
                f"{p}.{a}" for p, a, s in composite_pairs if not s.is_shared_composite
            ]
            if offenders:
                raise TopologyError(
                    "multiple composite parents require shared composite "
                    f"attributes; exclusive: {', '.join(offenders)}",
                    rule=3,
                )

    def _rollback_new(self, instance, parent_pairs):
        """Undo partial wiring of a failed ``make``."""
        for attr, child_uid in list(self.iter_composite_values(instance)):
            child = self.peek(child_uid)
            if child is not None:
                child.remove_reverse_reference(instance.uid, attr)
        for parent_uid, attribute in parent_pairs:
            parent = self.peek(parent_uid)
            if parent is not None:
                self.unlink_forward_value(parent, attribute, instance.uid)

    # ------------------------------------------------------------------
    # Attribute access and update
    # ------------------------------------------------------------------

    def value(self, uid, attribute):
        """Read one attribute value."""
        instance = self.resolve(uid)
        classdef = self.lattice.get(instance.class_name)
        spec = classdef.attribute(attribute)
        if self.on_read:
            for callback in self.on_read:
                callback(uid, attribute)
        value = instance.get(attribute)
        if spec.is_set and value is None:
            return []
        return list(value) if spec.is_set else value

    def set_value(self, uid, attribute, value):
        """Set a single-valued attribute.

        For composite attributes this unlinks the old component (removing
        its reverse reference) and links the new one under the
        Make-Component Rule.
        """
        instance = self.resolve(uid)
        spec = self.lattice.get(instance.class_name).attribute(attribute)
        if spec.is_set:
            raise DomainError(
                f"{instance.class_name}.{attribute} is a set-of attribute; "
                f"use insert_into/remove_from"
            )
        with self._operation():
            self._assign(instance, spec, value)
            self.persist(instance)

    def insert_into(self, uid, attribute, member):
        """Add *member* to a set-of attribute (linking when composite)."""
        instance = self.resolve(uid)
        spec = self.lattice.get(instance.class_name).attribute(attribute)
        if not spec.is_set:
            raise DomainError(
                f"{instance.class_name}.{attribute} is single-valued; use set_value"
            )
        current = instance.get(attribute) or []
        if member in current:
            return False
        with self._operation():
            for callback in self.on_before_change:
                callback(instance)
            self._check_member(spec, member)
            if spec.is_composite:
                self._link_component(instance, spec, member)
            current = list(current)
            current.append(member)
            instance.set(attribute, current)
            self._notify_update(instance, attribute)
            self.persist(instance)
        return True

    def remove_from(self, uid, attribute, member):
        """Remove *member* from a set-of attribute (unlinking when composite)."""
        instance = self.resolve(uid)
        spec = self.lattice.get(instance.class_name).attribute(attribute)
        if not spec.is_set:
            raise DomainError(
                f"{instance.class_name}.{attribute} is single-valued; use set_value"
            )
        current = instance.get(attribute) or []
        if member not in current:
            return False
        with self._operation():
            for callback in self.on_before_change:
                callback(instance)
            if spec.is_composite:
                self._unlink_component(instance, spec, member)
            instance.set(attribute, [v for v in current if v != member])
            self._notify_update(instance, attribute)
            self.persist(instance)
        return True

    def make_part_of(self, child_uid, parent_uid, attribute):
        """Make existing *child_uid* a part of *parent_uid* (bottom-up).

        This is the paper's algorithm of Section 2.4 ("making an existing
        object O a part of another object O' through an attribute A"),
        enabled by the extended model: "This prevents a bottom-up creation
        of objects by assembling already existing objects" was shortcoming
        2 of [KIM87b].
        """
        parent = self.resolve(parent_uid)
        spec = self.lattice.get(parent.class_name).attribute(attribute)
        if spec.is_set:
            return self.insert_into(parent_uid, attribute, child_uid)
        self.set_value(parent_uid, attribute, child_uid)
        return True

    def remove_part_of(self, child_uid, parent_uid, attribute):
        """Detach *child_uid* from *parent_uid.attribute* (never deletes).

        Reference removal only severs the IS-PART-OF link; existence
        dependency fires exclusively on object deletion (the paper's
        Deletion Rule is defined on ``del`` only).
        """
        parent = self.resolve(parent_uid)
        spec = self.lattice.get(parent.class_name).attribute(attribute)
        if spec.is_set:
            return self.remove_from(parent_uid, attribute, child_uid)
        if parent.get(attribute) != child_uid:
            return False
        self.set_value(parent_uid, attribute, None)
        return True

    # -- assignment internals ---------------------------------------------

    def _assign(self, instance, spec, value):
        """Assign *value* to *spec* on *instance*, maintaining reverse refs."""
        for callback in self.on_before_change:
            callback(instance)
        if spec.is_set:
            members = list(value or [])
            if len(set(members)) != len(members):
                raise DomainError(
                    f"{instance.class_name}.{spec.name}: duplicate members"
                )
            for member in members:
                self._check_member(spec, member)
            old_members = instance.get(spec.name) or []
            if spec.is_composite:
                for member in old_members:
                    if member not in members:
                        self._unlink_component(instance, spec, member)
                for member in members:
                    if member not in old_members:
                        self._link_component(instance, spec, member)
            instance.set(spec.name, members)
            self._notify_update(instance, spec.name)
            return
        self._check_member(spec, value)
        old = instance.get(spec.name)
        if spec.is_composite:
            if old is not None and old != value:
                self._unlink_component(instance, spec, old)
            if value is not None and value != old:
                self._link_component(instance, spec, value)
        instance.set(spec.name, value)
        self._notify_update(instance, spec.name)

    def _check_member(self, spec, value):
        """Domain-check one element value for *spec*."""
        if value is None:
            return
        if spec.is_primitive:
            if not spec.accepts_primitive(value):
                raise DomainError(
                    f"attribute {spec.name!r}: {value!r} is not a "
                    f"{spec.domain_class}"
                )
            return
        # Reference domain: value must be a live UID of the domain class
        # (or a subclass of it).
        target = self.peek(value) if not isinstance(value, (int, float, str)) else None
        if target is None:
            raise DomainError(
                f"attribute {spec.name!r}: {value!r} is not a live object UID"
            )
        if spec.domain_class != "any" and not self.lattice.is_subclass(
            target.class_name, spec.domain_class
        ):
            raise DomainError(
                f"attribute {spec.name!r}: {value} is a {target.class_name}, "
                f"not a {spec.domain_class}"
            )

    def _link_component(self, instance, spec, child_uid):
        """Add the IS-PART-OF link instance --spec--> child_uid."""
        child = self.resolve(child_uid)
        if self.link_policy is not None:
            # The policy owns the topology invariants (version rule CV-2X
            # legitimately relaxes them for generic instances).
            self.link_policy(instance, spec, child)
        else:
            check_make_component(child, spec, parent_uid=instance.uid)
        child.add_reverse_reference(
            instance.uid,
            dependent=spec.dependent,
            exclusive=spec.exclusive,
            attribute=spec.name,
        )
        if self.link_policy is None:
            check_topology_rules(child)
        for callback in self.on_link:
            callback(instance, spec, child)
        self.persist(child)

    def _unlink_component(self, instance, spec, child_uid):
        """Remove the IS-PART-OF link instance --spec--> child_uid."""
        child = self.peek(child_uid)
        if child is None:
            return
        removed = child.remove_reverse_reference(instance.uid, spec.name)
        if removed is not None:
            for callback in self.on_unlink:
                callback(instance, spec, child)
        self.persist(child)

    def _attach_child(self, parent_uid, attribute, child_uid):
        """Wire a new instance into *parent_uid.attribute* (the ``:parent``
        keyword path of ``make``)."""
        parent = self.resolve(parent_uid)
        spec = self.lattice.get(parent.class_name).attribute(attribute)
        if spec.is_set:
            current = parent.get(attribute) or []
            if child_uid in current:
                return
            for callback in self.on_before_change:
                callback(parent)
            self._check_member(spec, child_uid)
            if spec.is_composite:
                self._link_component(parent, spec, child_uid)
            parent.set(attribute, list(current) + [child_uid])
            self._notify_update(parent, attribute)
        else:
            self._assign(parent, spec, child_uid)

    def _notify_update(self, instance, attribute):
        for callback in self.on_update:
            callback(instance, attribute)

    def iter_composite_values(self, instance):
        """Yield ``(attribute_name, child_uid)`` for every composite
        forward reference held by *instance*."""
        classdef = self.lattice.get(instance.class_name)
        for spec in classdef.attributes():
            if not spec.is_composite:
                continue
            value = instance.get(spec.name)
            if value is None:
                continue
            if spec.is_set:
                for member in value:
                    yield spec.name, member
            else:
                yield spec.name, value

    def unlink_forward_value(self, parent, attribute, child_uid):
        """Drop *child_uid* from *parent.attribute* (deletion fix-up).

        Unlike :meth:`remove_from`, this does not touch reverse references
        (the child is being deleted) and tolerates stale schema states.
        """
        value = parent.get(attribute)
        if isinstance(value, list):
            if child_uid in value:
                for callback in self.on_before_change:
                    callback(parent)
                parent.set(attribute, [v for v in value if v != child_uid])
                self._notify_update(parent, attribute)
                return True
            return False
        if value == child_uid:
            for callback in self.on_before_change:
                callback(parent)
            parent.set(attribute, None)
            self._notify_update(parent, attribute)
            return True
        return False

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, uid):
        """Delete *uid* under the Deletion Rule; returns a DeletionReport."""
        with self._operation():
            return self._deletion.delete(uid)

    # ------------------------------------------------------------------
    # Section 3 operations, re-exported
    # ------------------------------------------------------------------

    def components_of(self, uid, classes=None, exclusive=False, shared=False, level=None):
        """``components-of`` (see :mod:`repro.core.operations`)."""
        result = ops.components_of(self, uid, classes, exclusive, shared, level)
        if self.on_read:
            # A composite read's data footprint is the root plus every
            # returned component (whole-object granularity).
            for callback in self.on_read:
                callback(uid, None)
                for member in result:
                    callback(member, None)
        return result

    def children_of(self, uid, classes=None, exclusive=False, shared=False):
        """Direct components of *uid*."""
        return ops.children_of(self, uid, classes, exclusive, shared)

    def parents_of(self, uid, classes=None, exclusive=False, shared=False):
        """``parents-of``."""
        return ops.parents_of(self, uid, classes, exclusive, shared)

    def ancestors_of(self, uid, classes=None, exclusive=False, shared=False):
        """``ancestors-of``."""
        return ops.ancestors_of(self, uid, classes, exclusive, shared)

    def child_of(self, uid1, uid2):
        """``child-of``."""
        return ops.child_of(self, uid1, uid2)

    def component_of(self, uid1, uid2):
        """``component-of``."""
        return ops.component_of(self, uid1, uid2)

    def exclusive_component_of(self, uid1, uid2):
        """``exclusive-component-of``."""
        return ops.exclusive_component_of(self, uid1, uid2)

    def shared_component_of(self, uid1, uid2):
        """``shared-component-of``."""
        return ops.shared_component_of(self, uid1, uid2)

    def roots_of(self, uid):
        """Roots of the composite objects containing *uid*."""
        return ops.roots_of(self, uid)

    def compositep(self, class_name, attribute=None):
        """``compositep`` class predicate (paper 3.2)."""
        return self.lattice.get(class_name).compositep(attribute)

    def exclusive_compositep(self, class_name, attribute=None):
        """``exclusive-compositep``."""
        return self.lattice.get(class_name).exclusive_compositep(attribute)

    def shared_compositep(self, class_name, attribute=None):
        """``shared-compositep``."""
        return self.lattice.get(class_name).shared_compositep(attribute)

    def dependent_compositep(self, class_name, attribute=None):
        """``dependent-compositep``."""
        return self.lattice.get(class_name).dependent_compositep(attribute)

    # ------------------------------------------------------------------
    # Invariant validation (tests & property-based checks)
    # ------------------------------------------------------------------

    def validate(self):
        """Check global invariants; raises on violation.

        1. Topology Rules 1-3 hold for every live object.
        2. Every forward composite reference has a matching reverse
           reference with the right flags, and vice versa.
        3. No composite reference targets a deleted object.
        """
        for instance in self.live_instances():
            exempt = (
                self.topology_exempt is not None
                and self.topology_exempt(instance.uid)
            )
            if not exempt:
                check_topology_rules(instance)
            classdef = self.lattice.get(instance.class_name)
            for attr, child_uid in self.iter_composite_values(instance):
                child = self.peek(child_uid)
                if child is None:
                    raise TopologyError(
                        f"{instance.uid}.{attr} references dead object {child_uid}"
                    )
                spec = classdef.attribute(attr)
                ref = child.find_reverse_reference(instance.uid, attr)
                if ref is None:
                    raise TopologyError(
                        f"missing reverse reference: {instance.uid}.{attr} -> "
                        f"{child_uid}"
                    )
                if ref.exclusive != spec.exclusive or ref.dependent != spec.dependent:
                    raise TopologyError(
                        f"reverse-reference flags of {child_uid} disagree with "
                        f"schema of {instance.class_name}.{attr}"
                    )
            for ref in instance.reverse_references:
                parent = self.peek(ref.parent)
                if parent is None:
                    raise TopologyError(
                        f"{instance.uid} has a reverse reference to dead "
                        f"parent {ref.parent}"
                    )
                forward = parent.get(ref.attribute)
                present = (
                    instance.uid in forward
                    if isinstance(forward, list)
                    else forward == instance.uid
                )
                if not present:
                    raise TopologyError(
                        f"stale reverse reference: {instance.uid} claims parent "
                        f"{ref.parent}.{ref.attribute}"
                    )
        return True

    def fsck(self):
        """Audit every invariant; returns an analysis ``Report``.

        Unlike :meth:`validate`, which raises on the first violation,
        fsck keeps going and reports *every* problem as a finding — and
        also covers the version registry, ref-counts, extents, and
        authorization graph of whatever managers are registered (see
        :mod:`repro.analysis.fsck`).
        """
        from ..analysis.fsck import fsck_database

        return fsck_database(self)

    def check_schema(self):
        """Run the static schema analyzer; returns an analysis ``Report``
        (see :mod:`repro.analysis.schema_check`)."""
        from ..analysis.schema_check import SchemaAnalyzer

        return SchemaAnalyzer(self.lattice).analyze()

    def __len__(self):
        return sum(1 for _ in self.live_instances())

    def __contains__(self, uid):
        return self.exists(uid)
