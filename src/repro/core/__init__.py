"""Core composite-object model (the paper's primary contribution).

Exports the database façade, the KIM87b baseline, object identity, the
reference taxonomy, and the Section-3 operations.
"""

from .compose import (
    composite_size,
    composites_equal,
    copy_composite,
    dismantle,
    move_component,
)
from .database import Database
from .deletion import DeletionEngine, DeletionReport, would_delete
from .identity import UID, UIDAllocator
from .instance import Instance
from .legacy import LegacyDatabase
from .references import (
    ALL_REFERENCE_KINDS,
    COMPOSITE_REFERENCE_KINDS,
    ReferenceKind,
    ReverseReference,
)
from .topology import (
    check_attribute_change_feasible,
    check_make_component,
    check_topology_rules,
)

__all__ = [
    "ALL_REFERENCE_KINDS",
    "COMPOSITE_REFERENCE_KINDS",
    "Database",
    "DeletionEngine",
    "DeletionReport",
    "Instance",
    "LegacyDatabase",
    "ReferenceKind",
    "ReverseReference",
    "UID",
    "UIDAllocator",
    "check_attribute_change_feasible",
    "check_make_component",
    "check_topology_rules",
    "composite_size",
    "composites_equal",
    "copy_composite",
    "dismantle",
    "move_component",
    "would_delete",
]
