"""Object identity: UIDs and UID allocation.

ORION identifies every object by a system-generated *unique identifier*
(the paper calls it a UID; Section 2.1: "an object O' has a reference to
another object O if O' contains the object identifier (UID) of O").

A :class:`UID` here is an immutable value wrapping a monotonically
increasing integer plus the name of the class the object was created in.
Carrying the class name in the identifier mirrors ORION's segmented OIDs
(class identifier + instance identifier) and lets the storage layer route
an object to its class's physical segment without a catalog lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count


@dataclass(frozen=True, slots=True, order=True)
class UID:
    """An immutable object identifier.

    Ordering is by allocation number, which doubles as a creation
    timestamp for the version subsystem's "system default is the most
    recently created version" rule (paper 5.1).
    """

    #: Monotonically increasing allocation number, unique per database.
    number: int
    #: Name of the class the object belongs to (ORION-style segmented OID).
    class_name: str = field(compare=False)

    def __repr__(self):
        return f"UID({self.number}:{self.class_name})"

    def __str__(self):
        return f"{self.class_name}#{self.number}"


class UIDAllocator:
    """Allocates UIDs for one database.

    The allocator is deliberately trivial — a shared counter — but it is
    the single point of identity creation, so the storage layer and the
    version manager can rely on UID numbers being unique and monotonic.

    ``step`` supports strided allocation for sharded deployments: shard
    *i* of *N* allocates ``start=i+1, step=N``, so every UID number
    satisfies ``(number - 1) % N == i`` and shard membership is a pure
    function of the identifier (no placement catalog lookup; see
    docs/SHARDING.md).
    """

    def __init__(self, start=1, step=1):
        if step < 1:
            raise ValueError("allocator step must be >= 1")
        self.step = step
        self._counter = count(start, step)

    def allocate(self, class_name):
        """Return a fresh :class:`UID` for an instance of *class_name*."""
        return UID(next(self._counter), class_name)

    def peek(self):
        """Return the next number that would be allocated (for tests)."""
        # itertools.count has no peek; emulate by allocating and rebuilding.
        nxt = next(self._counter)
        self._counter = count(nxt, self.step)
        return nxt

    def restride(self, floor, shard_id, shards):
        """Re-seat the counter on shard *shard_id*'s stride, at the
        smallest on-stride number > *floor*.

        Called after journal recovery on a shard worker: recovery sets
        the counter to ``max_uid + 1``, which may sit on another shard's
        residue; the worker must resume allocating only numbers with
        ``(n - 1) % shards == shard_id``.
        """
        nxt = floor + 1
        nxt += (shard_id - (nxt - 1)) % shards
        self.step = shards
        self._counter = count(nxt, shards)
        return nxt
