"""Whole-composite operations: copy, move, structural equality.

The paper's Section 3 opens: "the purpose of modeling a composite object
is above all to define operations which directly make use of the semantics
of composite objects", and cites [KIM87a] ("Operations and Implementation
of Complex Objects") for exactly these.  The reference semantics decide
what each operation does per attribute:

* **copy** — exclusive components are *copied* recursively (they cannot be
  shared with the original); shared components are *shared* (the copy
  references the same component); weak references are kept as-is.
* **move** — re-parent a component from one owner attribute to another,
  preserving its identity (legal only where Make-Component allows it).
* **equal** — structural equality of two composite objects: same class,
  same non-reference values, and recursively equal/identical components
  per the same exclusive/shared distinction (an isomorphism check that
  ignores UIDs for exclusive substructure).
"""

from __future__ import annotations

from ..errors import TopologyError


def copy_composite(database, root_uid, overrides=None, with_mapping=False):
    """Deep-copy the composite object rooted at *root_uid*.

    Returns the new root's UID — or ``(new_root, mapping)`` with
    ``with_mapping=True``, where *mapping* maps each copied original UID
    to its copy (the check-out/check-in workflow needs the
    correspondence).  Exclusive components are copied recursively; shared
    components are shared; weak references point at the originals.
    Cycles through exclusive references are preserved in the copy (each
    original is copied once).

    *overrides* optionally replaces attribute values on the new root.
    """
    copies = {}

    def clone(uid):
        existing = copies.get(uid)
        if existing is not None:
            return existing
        instance = database.resolve(uid)
        classdef = database.lattice.get(instance.class_name)
        # Two-phase: create an empty shell first so exclusive cycles
        # terminate, then fill values.
        new_uid = database.make(instance.class_name)
        copies[uid] = new_uid
        for spec in classdef.attributes():
            value = instance.get(spec.name)
            if value is None:
                continue
            if spec.is_set:
                for member in value:
                    database.insert_into(
                        new_uid, spec.name, _copy_member(spec, member)
                    )
            else:
                database.set_value(new_uid, spec.name, _copy_member(spec, value))
        return new_uid

    def _copy_member(spec, member):
        if spec.is_composite and spec.exclusive:
            return clone(member)
        return member  # shared component or weak reference: share

    new_root = clone(root_uid)
    if overrides:
        for name, value in overrides.items():
            database.set_value(new_root, name, value)
    if with_mapping:
        return new_root, dict(copies)
    return new_root


def move_component(database, component_uid, from_parent, to_parent,
                   attribute=None, to_attribute=None):
    """Move a component between parents, keeping its identity.

    *attribute* defaults to the attribute through which *from_parent*
    holds the component; *to_attribute* defaults to the same name on the
    destination.  The detach happens first, so an exclusive component can
    move (the Make-Component Rule sees it unattached); on failure the
    original link is restored.
    """
    component = database.resolve(component_uid)
    if attribute is None:
        refs = [r for r in component.reverse_references if r.parent == from_parent]
        if len(refs) != 1:
            raise TopologyError(
                f"{component_uid} is held by {from_parent} through "
                f"{len(refs)} attributes; specify one"
            )
        attribute = refs[0].attribute
    to_attribute = to_attribute or attribute
    if not database.remove_part_of(component_uid, from_parent, attribute):
        raise TopologyError(
            f"{component_uid} is not a component of "
            f"{from_parent}.{attribute}"
        )
    try:
        database.make_part_of(component_uid, to_parent, to_attribute)
    except Exception:
        database.make_part_of(component_uid, from_parent, attribute)
        raise
    return to_attribute


def composites_equal(database, uid_a, uid_b):
    """Structural equality of two composite objects.

    Equal iff: same class; equal primitive/weak values; set attributes
    match element-wise under an order-insensitive pairing; exclusive
    components are recursively equal (identity ignored); shared components
    and weak references must be *identical* (sharing is part of the
    structure).  Handles cycles via a visited-pair set.
    """
    in_progress = set()

    def equal(a, b):
        if a == b:
            return True
        if (a, b) in in_progress:
            return True  # co-recursive pair assumed equal within the cycle
        instance_a, instance_b = database.peek(a), database.peek(b)
        if instance_a is None or instance_b is None:
            return False
        if instance_a.class_name != instance_b.class_name:
            return False
        in_progress.add((a, b))
        try:
            classdef = database.lattice.get(instance_a.class_name)
            for spec in classdef.attributes():
                value_a = instance_a.get(spec.name)
                value_b = instance_b.get(spec.name)
                if spec.is_set:
                    if not _sets_equal(spec, value_a or [], value_b or []):
                        return False
                elif not _members_equal(spec, value_a, value_b):
                    return False
            return True
        finally:
            in_progress.discard((a, b))

    def _members_equal(spec, a, b):
        if a is None or b is None:
            return a is None and b is None
        if spec.is_composite and spec.exclusive:
            return equal(a, b)
        return a == b  # shared/weak/primitive: identity or value equality

    def _sets_equal(spec, members_a, members_b):
        if len(members_a) != len(members_b):
            return False
        if not (spec.is_composite and spec.exclusive):
            return sorted(map(str, members_a)) == sorted(map(str, members_b))
        remaining = list(members_b)
        for member_a in members_a:
            match = next(
                (m for m in remaining if equal(member_a, m)), None
            )
            if match is None:
                return False
            remaining.remove(match)
        return True

    return equal(uid_a, uid_b)


def composite_size(database, root_uid):
    """Number of objects in the composite (root + components)."""
    return 1 + len(database.components_of(root_uid))


def dismantle(database, root_uid):
    """Detach every *direct* component of *root_uid* (never deletes).

    Returns the detached component UIDs.  After dismantling, independent
    components are free for reuse (the Example 1 workflow); the root
    remains, empty of composite references.
    """
    detached = []
    instance = database.resolve(root_uid)
    classdef = database.lattice.get(instance.class_name)
    for spec in list(classdef.attributes()):
        if not spec.is_composite:
            continue
        value = instance.get(spec.name)
        if value is None:
            continue
        members = list(value) if spec.is_set else [value]
        for member in members:
            database.remove_part_of(member, root_uid, spec.name)
            detached.append(member)
    return detached
