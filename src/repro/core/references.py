"""The five reference types and in-object reverse composite references.

Paper Section 2.1 distinguishes five types of reference between a pair of
objects:

1. weak reference,
2. dependent exclusive composite reference,
3. independent exclusive composite reference,
4. dependent shared composite reference,
5. independent shared composite reference.

A composite reference is a weak reference augmented with the IS-PART-OF
relationship; *exclusive* means the referenced object is part of only one
parent, *dependent* means the referenced object's existence depends on the
parent's.

Section 2.4 prescribes the implementation we follow: each component object
carries a list of *reverse composite references* — the UIDs of its parent
objects, each with two flags: **D** (the object is a dependent component of
that parent) and **X** (the object is an exclusive component of that
parent).  Keeping the reverse pointers in the object itself, rather than in
a separate structure, "avoids a level of indirection in accessing the
parents of a given component, and simplifies deletion and migration of
objects; however, it causes the object size to increase" — benchmark B5
quantifies exactly that trade-off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ReferenceKind(enum.Enum):
    """One of the paper's five reference types.

    The enum value packs the three orthogonal semantics the paper untangles
    from the single overloaded reference of [KIM87b]: whether the reference
    is composite at all, whether it is exclusive, and whether it is
    dependent.
    """

    WEAK = ("weak", False, False, False)
    DEPENDENT_EXCLUSIVE = ("dependent-exclusive", True, True, True)
    INDEPENDENT_EXCLUSIVE = ("independent-exclusive", True, True, False)
    DEPENDENT_SHARED = ("dependent-shared", True, False, True)
    INDEPENDENT_SHARED = ("independent-shared", True, False, False)

    def __init__(self, label, composite, exclusive, dependent):
        self.label = label
        #: True for the four composite kinds (IS-PART-OF semantics).
        self.composite = composite
        #: True when the component may be part of only one parent.
        self.exclusive = exclusive
        #: True when the component's existence depends on the parent.
        self.dependent = dependent

    @property
    def shared(self):
        """True for the two shared composite kinds."""
        return self.composite and not self.exclusive

    @classmethod
    def from_flags(cls, composite, exclusive=True, dependent=True):
        """Build a kind from the ORION keyword flags.

        Mirrors the class-definition syntax of paper 2.3 where
        ``:composite``, ``:exclusive`` and ``:dependent`` each take True or
        Nil.  The paper's defaults — exclusive and dependent both True, for
        compatibility with [KIM87b] — are reproduced here.
        """
        if not composite:
            return cls.WEAK
        if exclusive:
            return cls.DEPENDENT_EXCLUSIVE if dependent else cls.INDEPENDENT_EXCLUSIVE
        return cls.DEPENDENT_SHARED if dependent else cls.INDEPENDENT_SHARED

    def __repr__(self):
        return f"ReferenceKind.{self.name}"


#: Kinds in the order the paper enumerates them (Section 2.1).
ALL_REFERENCE_KINDS = (
    ReferenceKind.WEAK,
    ReferenceKind.DEPENDENT_EXCLUSIVE,
    ReferenceKind.INDEPENDENT_EXCLUSIVE,
    ReferenceKind.DEPENDENT_SHARED,
    ReferenceKind.INDEPENDENT_SHARED,
)

#: The four composite kinds (everything but WEAK).
COMPOSITE_REFERENCE_KINDS = tuple(k for k in ALL_REFERENCE_KINDS if k.composite)


@dataclass(frozen=True, slots=True)
class ReverseReference:
    """One reverse composite reference stored inside a component object.

    Paper 2.4: "A reverse composite reference actually consists of a couple
    of flags in addition to the object identifier of a parent. One flag (D)
    indicates whether the object is a dependent component of the parent;
    while the other flag (X) indicates whether the object is an exclusive
    component of the parent."

    The attribute name through which the parent references the component is
    also recorded; the paper leaves this implicit, but it is required to
    drop exactly the right reverse reference when a parent attribute is
    cleared, and to apply per-attribute schema changes (Section 4.3).
    """

    #: UID of the parent object.
    parent: object
    #: D flag — the component's existence depends on this parent.
    dependent: bool
    #: X flag — the component is an exclusive component of this parent.
    exclusive: bool
    #: Name of the parent's attribute holding the forward reference.
    attribute: str

    @property
    def kind(self):
        """The composite :class:`ReferenceKind` this reverse ref encodes."""
        return ReferenceKind.from_flags(
            composite=True, exclusive=self.exclusive, dependent=self.dependent
        )

    def with_flags(self, dependent=None, exclusive=None):
        """Return a copy with one or both flags replaced.

        Used by schema-evolution operations I2-I4 (paper 4.3), which are
        implemented by "accessing all instances of the class C and turning
        on/off the D or X flag in the reverse composite references".
        """
        return ReverseReference(
            parent=self.parent,
            dependent=self.dependent if dependent is None else dependent,
            exclusive=self.exclusive if exclusive is None else exclusive,
            attribute=self.attribute,
        )

    def __str__(self):
        flags = ("D" if self.dependent else "-") + ("X" if self.exclusive else "-")
        return f"<-{flags}- {self.parent}.{self.attribute}"
