"""The [KIM87b] baseline model.

The paper's Section 1 identifies three shortcomings of the original ORION
composite-object model that the extended model removes:

1. **Strict hierarchy** — "a component object is only part of one composite
   object" (no shared references);
2. **Top-down creation** — "before a component object may be created, its
   parent object must already exist", so existing objects cannot be
   assembled bottom-up;
3. **Existence dependency** — "if an object ceases to exist, all its
   component objects are also deleted" (every composite reference is
   dependent), which "impedes reuse of objects in a complex design
   environment".

:class:`LegacyDatabase` enforces exactly those restrictions on top of the
same machinery, so benchmarks B7/B8 can compare the models head-to-head.
The only composite reference type is the dependent exclusive composite
reference; bottom-up attachment of an existing object raises
:class:`LegacyModelError`.
"""

from __future__ import annotations

from ..errors import LegacyModelError
from ..schema.attribute import AttributeSpec
from .database import Database


class LegacyDatabase(Database):
    """A database restricted to the [KIM87b] composite-object model."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        #: UID of the instance currently being created (the only object
        #: allowed to acquire a composite parent — top-down creation).
        self._newborn = None

    # -- schema restrictions -------------------------------------------------

    def make_class(self, name, superclasses=(), attributes=(), **kwargs):
        """Define a class; composite attributes must be dependent exclusive.

        [KIM87b] knows a single composite reference type, so declaring
        ``exclusive=False`` or ``dependent=False`` on a composite attribute
        is rejected.
        """
        checked = []
        for item in attributes:
            spec = item if isinstance(item, AttributeSpec) else AttributeSpec(**item)
            if spec.is_composite and (not spec.exclusive or not spec.dependent):
                raise LegacyModelError(
                    f"{name}.{spec.name}: the KIM87b model supports only "
                    f"dependent exclusive composite references"
                )
            checked.append(spec)
        return super().make_class(name, superclasses, checked, **kwargs)

    # -- top-down creation only ------------------------------------------------

    def make(self, class_name, values=None, parents=(), **kw_values):
        """Create an instance; composite wiring only via ``:parent``.

        Passing a UID for a composite attribute in *values* would attach a
        pre-existing object bottom-up, which the baseline forbids.
        """
        merged = dict(values or {})
        merged.update(kw_values)
        classdef = self.lattice.get(class_name)
        for attr_name, value in merged.items():
            spec = classdef.attribute(attr_name)
            if spec.is_composite and value not in (None, [], ()):
                raise LegacyModelError(
                    f"{class_name}.{attr_name}: the KIM87b model creates "
                    f"composite objects top-down; components must be created "
                    f"with :parent, not assigned"
                )
        return super().make(class_name, values=merged, parents=parents)

    def _attach_child(self, parent_uid, attribute, child_uid):
        """Attach the newborn via ``:parent`` — the one legal linking path."""
        self._newborn = child_uid
        try:
            super()._attach_child(parent_uid, attribute, child_uid)
        finally:
            self._newborn = None

    def _link_component(self, instance, spec, child_uid):
        if spec.is_composite and child_uid != self._newborn:
            raise LegacyModelError(
                f"bottom-up assembly is not possible in the KIM87b model: "
                f"{child_uid} already exists and cannot become a component "
                f"of {instance.uid}"
            )
        super()._link_component(instance, spec, child_uid)

    def make_part_of(self, child_uid, parent_uid, attribute):
        """Bottom-up attachment — always rejected by the baseline."""
        parent = self.resolve(parent_uid)
        spec = self.lattice.get(parent.class_name).attribute(attribute)
        if spec.is_composite:
            raise LegacyModelError(
                "make_part_of: the KIM87b model creates composite objects "
                "top-down only"
            )
        return super().make_part_of(child_uid, parent_uid, attribute)
