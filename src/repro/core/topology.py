"""Topology Rules 1-4 and the Make-Component Rule (paper Section 2.2).

The paper formalizes the legal "object topologies" as constraints on the
four partitions of an object's composite parents:

* **Rule 1** — ``card(Ix(O)) <= 1`` and ``card(Dx(O)) <= 1``.
* **Rule 2** — an independent exclusive reference and a dependent exclusive
  reference to the same object are mutually exclusive.
* **Rule 3** — exclusive (of either dependency) and shared (of either
  dependency) references to the same object are mutually exclusive.
* **Rule 4** — weak references are unconstrained.

Rules 1+2 together say: *at most one exclusive composite reference in
total*.  The **Make-Component Rule** is the insertion-time form: to make O
a component through an exclusive attribute, O must have no composite
reference at all; through a shared attribute, O must have no exclusive
composite reference.

These checks are pure functions over an object's reverse references, so
they can run against live instances, version instances, and the generic
instances of the version subsystem alike.
"""

from __future__ import annotations

from ..errors import TopologyError


def _uids(uids):
    """Render parent UIDs for error messages ("[12, 34]")."""
    return "[" + ", ".join(str(uid) for uid in uids) + "]"


def check_topology_rules(instance):
    """Validate Rules 1-3 on *instance*'s reverse references.

    Raises :class:`TopologyError` naming the violated rule.  Used as a
    global invariant by the property-based tests: any sequence of public
    API calls must leave every object satisfying this check.
    """
    ix = instance.ix_parents()
    dx = instance.dx_parents()
    is_ = instance.is_parents()
    ds = instance.ds_parents()
    if len(ix) > 1:
        raise TopologyError(
            f"{instance.uid}: card(Ix) = {len(ix)} > 1; independent "
            f"exclusive parents {_uids(ix)}",
            rule=1,
        )
    if len(dx) > 1:
        raise TopologyError(
            f"{instance.uid}: card(Dx) = {len(dx)} > 1; dependent "
            f"exclusive parents {_uids(dx)}",
            rule=1,
        )
    if ix and dx:
        raise TopologyError(
            f"{instance.uid}: has both an independent ({_uids(ix)}) and a "
            f"dependent ({_uids(dx)}) exclusive composite reference",
            rule=2,
        )
    if (ix or dx) and (is_ or ds):
        raise TopologyError(
            f"{instance.uid}: has both exclusive ({_uids(ix + dx)}) and "
            f"shared ({_uids(is_ + ds)}) composite references",
            rule=3,
        )


def check_make_component(instance, attribute_spec, *, parent_uid=None):
    """Enforce the Make-Component Rule before adding a composite reference.

    Paper 2.2: "1. If A is an exclusive composite attribute, O must not
    already have any composite reference to it (exclusive or shared).
    2. If A is a shared composite attribute, O must not already have an
    exclusive composite reference."

    *parent_uid* is only used for error messages.
    """
    if not attribute_spec.is_composite:
        return
    whom = f" (making it part of {parent_uid})" if parent_uid else ""
    if attribute_spec.exclusive:
        if instance.has_composite_reference():
            raise TopologyError(
                f"Make-Component Rule: {instance.uid} already has a "
                f"composite reference (parents "
                f"{_uids(instance.composite_parents())}) and cannot become "
                f"an exclusive component{whom}",
                rule=3 if instance.has_shared_reference() else 1,
            )
    else:
        if instance.has_exclusive_reference():
            raise TopologyError(
                f"Make-Component Rule: {instance.uid} already has an "
                f"exclusive composite reference (parents "
                f"{_uids(instance.ix_parents() + instance.dx_parents())}) "
                f"and cannot become a shared component{whom}",
                rule=3,
            )


def check_attribute_change_feasible(instance, *, to_exclusive):
    """State-dependent schema-change verification for one instance.

    Used by D1/D2/D3 (paper 4.2-4.3): a change that adds an *exclusive*
    constraint requires the instance to have no other composite reference;
    one that adds a *shared* constraint requires no exclusive reference.
    Returns None when feasible, otherwise a human-readable reason.
    """
    if to_exclusive:
        if len(instance.reverse_references) > 1:
            return (
                f"{instance.uid} has {len(instance.reverse_references)} "
                f"reverse composite references; an exclusive reference "
                f"must be the only one"
            )
        if instance.has_shared_reference():
            return f"{instance.uid} has a shared composite reference"
    else:
        if instance.has_exclusive_reference():
            return f"{instance.uid} has an exclusive composite reference"
    return None
