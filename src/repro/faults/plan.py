"""Seeded, deterministic fault plans.

A :class:`FaultPlan` bundles everything one crash experiment needs —
the sync policy, the injection rules, the workload size, where the
simulated ``kill -9`` lands, and whether the crash is a *process* death
(``kill``: flushed bytes survive in the OS page cache) or a *power*
cut (``power``: only truly-fsynced bytes survive).  Two runs of the
same plan produce byte-identical journals and identical recovery
outcomes, which is what lets CI sweep hundreds of plans with fixed
seeds and treat any failure as a regression, not flake.

:func:`random_plan` derives a plan from a single integer seed; the
plan's own ``seed`` also drives the workload generator in
``repro.faults.crashsim``, so the seed is the complete experiment
identifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..storage.journal import SYNC_POLICIES
from .registry import FailpointRegistry, FaultRule

#: Simulated crash flavors.
CRASH_MODES = ("kill", "power")


@dataclass
class FaultPlan:
    """One deterministic crash experiment.

    Parameters
    ----------
    seed:
        Drives the workload generator and the power-cut point.
    policy:
        Journal sync policy (one of ``SYNC_POLICIES``).
    crash_mode:
        ``"kill"`` — the process dies; everything flushed to the OS
        survives.  ``"power"`` — the machine dies; only bytes covered
        by a *real* fsync are guaranteed, the rest survives partially
        (a seeded cut somewhere past the durable watermark).
    rules:
        Failpoint rules armed for the run; the run also crashes at the
        first injected :class:`~repro.errors.StorageError`.
    units:
        Workload units (transactions / bare operations) to attempt.
    stop_at_unit:
        Simulate ``kill -9`` after this unit when no fault fired first
        (None: run every unit, crash at the end).
    group_size:
        Journal ``group`` policy auto-sync width.
    """

    seed: int
    policy: str = "commit"
    crash_mode: str = "kill"
    rules: list[FaultRule] = field(default_factory=list)
    units: int = 8
    stop_at_unit: int | None = None
    group_size: int = 3

    def __post_init__(self):
        if self.policy not in SYNC_POLICIES:
            raise ValueError(f"unknown sync policy {self.policy!r}")
        if self.crash_mode not in CRASH_MODES:
            raise ValueError(f"unknown crash mode {self.crash_mode!r}")

    def build_registry(self):
        """A fresh registry armed with this plan's rules."""
        return FailpointRegistry(rules=self.rules)

    def describe(self):
        """One-line human summary (sweep CLI output)."""
        rules = ", ".join(
            f"{r.site}:{r.action}@{r.nth}"
            + ("+" if r.count is None else "" if r.count == 1 else f"x{r.count}")
            for r in self.rules
        ) or "no-fault"
        stop = self.stop_at_unit if self.stop_at_unit is not None else self.units
        return (
            f"seed={self.seed} policy={self.policy} crash={self.crash_mode} "
            f"units={stop}/{self.units} rules=[{rules}]"
        )

    def to_dict(self):
        return {
            "seed": self.seed,
            "policy": self.policy,
            "crash_mode": self.crash_mode,
            "rules": [rule.to_dict() for rule in self.rules],
            "units": self.units,
            "stop_at_unit": self.stop_at_unit,
            "group_size": self.group_size,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        data["rules"] = [FaultRule.from_dict(r) for r in data.get("rules", ())]
        return cls(**data)


def random_plan(seed, policy=None):
    """Derive a deterministic plan from *seed*.

    Roughly a third of plans carry no injection rule at all (pure
    crash-at-a-point runs); the rest mix write errors, torn writes, and
    lying fsyncs, which are the storage failures recovery must absorb.
    Network-site rules are deliberately absent here — wire faults are
    exercised end-to-end in ``tests/test_net_faults.py``, while these
    plans feed the embedded :class:`~repro.faults.crashsim.CrashSim`.
    """
    rng = Random(seed)
    if policy is None:
        policy = rng.choice(SYNC_POLICIES)
    units = rng.randint(5, 12)
    plan = FaultPlan(
        seed=seed,
        policy=policy,
        crash_mode=rng.choice(CRASH_MODES),
        units=units,
        stop_at_unit=rng.randint(1, units),
        group_size=rng.choice((2, 3, 4)),
    )
    for _ in range(rng.randint(0, 2)):
        roll = rng.random()
        if roll < 0.4:
            plan.rules.append(FaultRule(
                site="journal.write_record",
                action="error",
                nth=rng.randint(1, 40),
            ))
        elif roll < 0.7:
            plan.rules.append(FaultRule(
                site="journal.write_record",
                action="torn",
                nth=rng.randint(1, 40),
                torn_bytes=rng.randint(1, 24),
            ))
        elif roll < 0.9:
            plan.rules.append(FaultRule(
                site="journal.fsync",
                action="skip",
                nth=rng.randint(1, 10),
                count=rng.choice((1, 2, None)),
            ))
        else:
            plan.rules.append(FaultRule(
                site="journal.fsync",
                action="error",
                nth=rng.randint(1, 10),
            ))
    return plan
