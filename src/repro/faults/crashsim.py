"""CrashSim: run a seeded workload under a fault plan, crash, recover.

The harness generalizes the hand-rolled torn-final-batch sweep of
``tests/test_group_commit.py`` into a reusable oracle:

1. Open a :class:`~repro.storage.durable.DurableDatabase` under the
   plan's sync policy with the plan's failpoint rules armed.
2. Run a deterministic workload (transactions, bare operations, aborts,
   deletion cascades, syncs, checkpoints — all derived from the plan
   seed), capturing a *fingerprint* of the database state at every
   operation and unit boundary, together with how many journal bytes
   were flushed and how many were truly fsynced at that moment.
3. Crash: either at the plan's stop unit or at the first injected
   :class:`~repro.errors.StorageError`, whichever comes first.  The
   simulated ``kill -9`` copies the store as the disk would see it —
   under ``kill`` mode everything the OS received survives; under
   ``power`` mode a seeded cut lands anywhere past the truly-fsynced
   watermark (so a "lying fsync" plan loses exactly the bytes the lie
   pretended were safe).
4. Recover the copy offline via :meth:`Journal.recover_into` — with no
   faults armed — and check the two invariants every plan must satisfy:

   * **committed prefix** — the recovered state byte-equals one of the
     captured boundary states, at or after the *durable floor* (the
     last state the policy actually guaranteed, given real fsyncs);
   * **fsck-clean** — :func:`repro.analysis.fsck.fsck_database` reports
     zero findings on the recovered database.

With ``record_history`` a
:class:`~repro.analysis.history.HistoryRecorder` rides along (attached
after the store opens, detached at the crash) and the run additionally
checks the captured transaction history for isolation anomalies via
:func:`repro.analysis.isocheck.check_history` — the workload is
single-threaded strict execution, so any ``ISO-*`` error is a recorder
or undo-path bug, not a storage failure.  Reads from the transaction
the crash interrupted surface as *warnings* (that transaction is
legitimately unfinished) and do not fail the plan.

Everything is derived from ``plan.seed``: two runs of one plan produce
identical journals, identical crashes, and identical verdicts.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from ..core.database import Database
from ..errors import StorageError
from ..schema.attribute import AttributeSpec, SetOf
from ..storage.durable import DurableDatabase
from ..storage.journal import JOURNAL_NAME, SNAPSHOT_NAME, Journal
from ..txn import TransactionManager
from .registry import fault_scope


def _canonical_value(value):
    """Order-insensitive rendering of one attribute value.

    Set-of attributes store their members as a list whose order is an
    implementation accident, not semantics — an abort's undo pass, for
    instance, re-inserts a removed member at the tail.  Canonicalizing
    keeps the oracle from flagging two logically identical states as
    different.
    """
    if isinstance(value, (list, tuple, set, frozenset)):
        return ("set",) + tuple(sorted(repr(member) for member in value))
    return repr(value)


def state_fingerprint(database):
    """Canonical state map ``{uid: canonical form}`` of live instances.

    Two fingerprints are equal exactly when the databases hold the same
    instances with the same attribute values, set memberships, and
    composite (reverse-reference) topology — member and reference
    *order* is normalized away.
    """
    state = {}
    for instance in database.live_instances():
        state[instance.uid] = (
            instance.class_name,
            instance.change_count,
            tuple(sorted(
                (attribute, _canonical_value(value))
                for attribute, value in instance.values.items()
            )),
            tuple(sorted(
                (repr(ref.parent), ref.attribute, ref.dependent,
                 ref.exclusive)
                for ref in instance.reverse_references
            )),
        )
    return state


@dataclass
class _Boundary:
    """One captured state: what recovery may legally land on."""

    label: str
    state: dict
    #: Journal bytes flushed to the OS when captured (current epoch).
    flushed: int
    #: True when the journal had no open batch / unsealed records —
    #: i.e. the captured state coincides with a batch boundary on disk.
    sealed: bool
    #: Journal epoch the capture belongs to.
    epoch: int
    #: True when no transaction was open.  Only quiescent boundaries
    #: hold purely *committed* data and may become the durable floor:
    #: a mid-transaction state (durable per-op under ``always``) can
    #: legally be rolled back by the abort's own journaled undo pass.
    quiescent: bool = True


@dataclass
class CrashReport:
    """Outcome of one CrashSim run.  ``ok`` is the verdict; the rest is
    forensics for the sweep CLI and for debugging a failing seed."""

    plan: object
    crash_mode: str
    completed_units: int
    crashed_by_fault: bool
    faults_triggered: list = field(default_factory=list)
    boundaries: int = 0
    surviving_bytes: int = 0
    recovered_index: int | None = None
    durable_floor: int = 0
    fsck_clean: bool = False
    fsck_summary: str = ""
    #: Captured transaction history (``record_history`` runs only).
    history: object | None = None
    iso_summary: str = ""
    problems: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.problems

    def summary(self):
        verdict = "ok" if self.ok else "FAIL " + "; ".join(self.problems)
        return (
            f"{self.plan.describe()} -> units={self.completed_units} "
            f"fault={'yes' if self.crashed_by_fault else 'no'} "
            f"survived={self.surviving_bytes}B "
            f"recovered@{self.recovered_index}/floor={self.durable_floor} "
            f"[{verdict}]"
        )


class SeededWorkload:
    """Deterministic mixed workload over the Paragraph/Section schema
    (the same composite shape the crash-consistency sweep uses)."""

    def __init__(self, database, rng):
        self.db = database
        self.tm = TransactionManager(database)
        self.rng = rng

    def define_schema(self):
        self.db.make_class("Paragraph", attributes=[
            AttributeSpec("Text", domain="string"),
        ])
        self.db.make_class("Section", attributes=[
            AttributeSpec("Content", domain=SetOf("Paragraph"),
                          composite=True, exclusive=False, dependent=True),
        ])

    # -- pools -----------------------------------------------------------

    def _paragraphs(self):
        return sorted(
            (i.uid for i in self.db.instances_of("Paragraph")),
            key=lambda uid: uid.number,
        )

    def _sections(self):
        return sorted(
            (i.uid for i in self.db.instances_of("Section")),
            key=lambda uid: uid.number,
        )

    # -- units -----------------------------------------------------------

    def run_unit(self, index, capture):
        """Run one workload unit; *capture(label)* records a boundary
        after every completed operation."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            self._txn_unit(index, capture, commit=True)
        elif roll < 0.50:
            self._txn_unit(index, capture, commit=False)
        elif roll < 0.75:
            self._bare_unit(index, capture)
        elif roll < 0.85:
            self._delete_unit(index, capture)
        elif roll < 0.92:
            if self.db.journal.needs_sync:
                self.db.journal.sync()
            capture(f"u{index}:sync")
        else:
            self.db.checkpoint()
            capture(f"u{index}:checkpoint")

    def _txn_unit(self, index, capture, commit):
        tm, rng = self.tm, self.rng
        txn = tm.begin()
        for op in range(rng.randint(1, 3) if not commit else rng.randint(2, 4)):
            self._txn_op(txn, f"u{index}.{op}")
            # Mid-transaction boundaries matter under the write-through
            # ``always`` policy, where every operation seals its own
            # batch; under batching policies they are never recoverable
            # alone and simply sit unused in the candidate list.
            capture(f"u{index}:op{op}", quiescent=False)
        if commit:
            tm.commit(txn)
            capture(f"u{index}:commit")
        else:
            tm.abort(txn)
            capture(f"u{index}:abort")

    def _txn_op(self, txn, tag):
        tm, rng = self.tm, self.rng
        paragraphs, sections = self._paragraphs(), self._sections()
        roll = rng.random()
        if roll < 0.35 or not paragraphs:
            if len(paragraphs) >= 40:
                return
            tm.make(txn, "Paragraph", values={"Text": f"t-{tag}"})
        elif roll < 0.60:
            tm.write(txn, rng.choice(paragraphs), "Text", f"w-{tag}")
        elif roll < 0.75 or not sections:
            if sections and rng.random() < 0.5:
                tm.make(txn, "Paragraph", values={"Text": f"m-{tag}"},
                        parents=[(rng.choice(sections), "Content")])
            else:
                tm.make(txn, "Section")
        elif roll < 0.90:
            tm.insert(txn, rng.choice(sections), "Content",
                      rng.choice(paragraphs))
        else:
            section = rng.choice(sections)
            # Attribute the read to the open transaction (not a bare
            # auto-txn, which could observe this txn's own dirty state).
            with self.db.txn_context(txn):
                content = self.db.value(section, "Content")
            if content:
                tm.remove(txn, section, "Content",
                          rng.choice(sorted(content, key=lambda u: u.number)))

    def _bare_unit(self, index, capture):
        db, rng = self.db, self.rng
        for op in range(rng.randint(1, 3)):
            paragraphs, sections = self._paragraphs(), self._sections()
            roll = rng.random()
            if roll < 0.40 or not paragraphs:
                if sections and rng.random() < 0.4:
                    db.make("Paragraph", values={"Text": f"b-u{index}.{op}"},
                            parents=[(rng.choice(sections), "Content")])
                else:
                    db.make("Paragraph", values={"Text": f"b-u{index}.{op}"})
            elif roll < 0.70:
                db.set_value(rng.choice(paragraphs), "Text", f"e-u{index}.{op}")
            elif roll < 0.85 or not sections:
                db.make("Section")
            else:
                db.insert_into(rng.choice(sections), "Content",
                               rng.choice(paragraphs))
            capture(f"u{index}:bare{op}")

    def _delete_unit(self, index, capture):
        db, rng = self.db, self.rng
        sections, paragraphs = self._sections(), self._paragraphs()
        if sections and rng.random() < 0.6:
            db.delete(rng.choice(sections))  # may cascade to dependents
        elif paragraphs:
            db.delete(rng.choice(paragraphs))
        capture(f"u{index}:delete")


class CrashSim:
    """Run *plan* inside *root* (a scratch directory the caller owns).

    *record_history*: falsy — no recording; ``True`` — record the
    transaction history in memory and isolation-check it; a path —
    additionally stream it there as JSONL (the sweep's
    ``--record-histories`` files).
    """

    def __init__(self, plan, root, record_history=False):
        self.plan = plan
        self.root = Path(root)
        self.store = self.root / "store"
        self.scratch = self.root / "crash"
        self.record_history = record_history

    def run(self):
        plan = self.plan
        report = CrashReport(
            plan=plan, crash_mode=plan.crash_mode,
            completed_units=0, crashed_by_fault=False,
        )
        registry = plan.build_registry()
        # The durable watermark: bytes of the current journal epoch
        # covered by a *real* fsync.  A lying fsync never fires the
        # observer-only "journal.fsynced" site, so the watermark stays
        # put while the counters claim otherwise — exactly the gap the
        # power-cut model then exploits.
        marks = {"synced": 0, "floor_base": 0}

        def on_fsynced(ctx):
            marks["synced"] = ctx["journal"]._journal_file.tell()

        def on_checkpointed(ctx):
            # A checkpoint fsyncs the snapshot: every state captured so
            # far is durable regardless of journal bytes, and journal
            # accounting restarts with the new (empty) epoch file.
            marks["synced"] = 0
            marks["floor_base"] = len(boundaries)

        registry.observe("journal.fsynced", on_fsynced)
        registry.observe("journal.checkpointed", on_checkpointed)

        boundaries = []
        rng = Random(plan.seed)
        with fault_scope(registry):
            db = DurableDatabase(
                self.store, sync_policy=plan.policy,
                group_size=plan.group_size,
            )
            journal = db.journal
            workload = SeededWorkload(db, rng)
            recorder = None
            if self.record_history:
                from ..analysis.history import HistoryRecorder

                path = (None if self.record_history is True
                        else str(self.record_history))
                recorder = HistoryRecorder(db, path=path)

            def capture(label, sealed=None, quiescent=True):
                flushed = journal.journal_path.stat().st_size
                if sealed is None:
                    sealed = (
                        journal._unsealed_records == 0
                        and not journal._auto_batch.records
                        and not any(
                            b.records for b in journal._txn_batches.values()
                        )
                    )
                boundaries.append(_Boundary(
                    label=label,
                    state=state_fingerprint(db),
                    flushed=flushed,
                    sealed=sealed,
                    epoch=journal.epoch,
                    quiescent=quiescent,
                ))

            try:
                workload.define_schema()
                capture("schema")
                # Schema DDL checkpoints; nothing before this capture
                # can be lost, so the floor starts here.
                marks["floor_base"] = len(boundaries) - 1
                for index in range(1, plan.units + 1):
                    workload.run_unit(index, capture)
                    report.completed_units = index
                    if index == plan.stop_at_unit:
                        break
            except StorageError:
                report.crashed_by_fault = True
                # The operation that hit the fault may have become
                # durable anyway (e.g. under ``always`` an fsync error
                # fires after the commit marker was flushed), so the
                # crash-moment state is a legal recovery target.  It is
                # never a *floor*: the operation raised, so it carries
                # no durability guarantee.
                capture("crash", sealed=False, quiescent=False)

            if recorder is not None:
                recorder.close()
                report.history = recorder.history
            report.faults_triggered = [
                (t.site, t.hit, t.action) for t in registry.triggered
            ]
            report.boundaries = len(boundaries)
            self._simulate_crash(journal, rng, marks, report)
            journal.abandon()

        self._recover_and_check(boundaries, marks, report)
        if report.history is not None:
            self._check_history(report)
        return report

    def _check_history(self, report):
        """Isolation-check the captured history (errors gate; reads from
        the crash-interrupted transaction are expected warnings)."""
        from ..analysis.isocheck import check_history

        iso = check_history(report.history)
        report.iso_summary = iso.summary()
        for finding in iso.errors:
            report.problems.append(f"isolation: {finding}")

    def _simulate_crash(self, journal, rng, marks, report):
        """Copy the store as the disk would survive the crash."""
        self.scratch.mkdir(parents=True, exist_ok=True)
        snapshot = self.store / SNAPSHOT_NAME
        if snapshot.exists():
            shutil.copyfile(snapshot, self.scratch / SNAPSHOT_NAME)
        # Reading the path sees what reached the OS — bytes still in
        # the writer's userspace buffer are lost, as in a real kill -9.
        data = (self.store / JOURNAL_NAME).read_bytes()
        if self.plan.crash_mode == "power":
            # A power cut preserves only what a real fsync covered; the
            # tail past the watermark survives to a seeded cut point.
            cut = rng.randint(min(marks["synced"], len(data)), len(data))
            data = data[:cut]
        report.surviving_bytes = len(data)
        (self.scratch / JOURNAL_NAME).write_bytes(data)

    def _recover_and_check(self, boundaries, marks, report):
        recovered = Database()
        Journal.recover_into(recovered, self.scratch)
        state = state_fingerprint(recovered)

        from ..analysis.fsck import fsck_database

        fsck = fsck_database(recovered)
        report.fsck_clean = fsck.clean
        report.fsck_summary = fsck.summary()
        if not fsck.clean:
            report.problems.append(f"fsck not clean: {fsck.summary()}")

        if not boundaries:
            if state:
                report.problems.append(
                    "recovered instances although no boundary was captured"
                )
            return

        matches = [
            j for j, boundary in enumerate(boundaries)
            if boundary.state == state
        ]
        if not matches:
            report.problems.append(
                "recovered state matches no captured boundary state "
                "(not a committed prefix)"
            )
            return
        report.recovered_index = matches[-1]
        report.durable_floor = self._durable_floor(boundaries, marks, report)
        if report.recovered_index < report.durable_floor:
            lost = boundaries[report.durable_floor].label
            report.problems.append(
                f"durable state {lost!r} (floor {report.durable_floor}) "
                f"lost: recovery landed on index {report.recovered_index} "
                f"({boundaries[report.recovered_index].label!r})"
            )

    def _durable_floor(self, boundaries, marks, report):
        """Index of the last boundary the policy actually guaranteed.

        Checkpoint snapshots make everything before ``floor_base``
        durable.  Past that, a sealed boundary is guaranteed iff its
        journal bytes survived the crash: under ``kill`` every flushed
        byte did; under ``power`` only bytes under the real-fsync
        watermark.  States of older journal epochs are covered by the
        checkpoint that ended their epoch, never by surviving bytes of
        the current file.
        """
        floor = marks["floor_base"]
        final_epoch = boundaries[-1].epoch
        if self.plan.crash_mode == "power":
            limit = min(marks["synced"], report.surviving_bytes)
        else:
            limit = report.surviving_bytes
        for j, boundary in enumerate(boundaries):
            if (j > floor and boundary.sealed and boundary.quiescent
                    and boundary.epoch == final_epoch
                    and boundary.flushed <= limit):
                floor = j
        return floor
