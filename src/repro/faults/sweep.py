"""The crash sweep: hundreds of seeded fault plans, one verdict.

CI runs this as a merge gate::

    python -m repro.faults.sweep --plans 200 --seed 20260806

Plans are dealt round-robin across all four sync policies, so a sweep
of N plans exercises N/4 seeded workloads per policy.  Every plan must
recover to a committed prefix with a clean fsck; any failure prints the
plan's reproduction line (seed, policy, crash mode, rules) and fails
the run.  A fast subset of the same sweep runs inside tier-1
(``tests/test_crashsim.py``), so a regression usually fires twice.

Exit codes follow ``repro-check``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from ..storage.journal import SYNC_POLICIES
from .crashsim import CrashSim
from .plan import random_plan

#: Spread per-plan seeds apart so neighbouring plans do not share rng
#: prefixes (100003 is prime and far from any power of two).
SEED_STRIDE = 100003


def sweep_seeds(base_seed, plans, policies=SYNC_POLICIES):
    """The (seed, policy) grid a sweep of *plans* plans covers."""
    return [
        (base_seed + index * SEED_STRIDE, policies[index % len(policies)])
        for index in range(plans)
    ]


def run_sweep(base_seed, plans, policies=SYNC_POLICIES, root=None,
              report_stream=None, verbose=False, record_histories=None):
    """Run *plans* seeded crash plans; returns the list of failed reports.

    With *record_histories* (a directory) every plan records its
    transaction history to ``plan-NNN.jsonl`` there and is additionally
    isolation-checked (``ISO-*`` errors fail the plan like a dirty
    fsck).
    """
    failures = []
    echo = report_stream.write if report_stream else lambda _line: None
    history_dir = None
    if record_histories is not None:
        history_dir = Path(record_histories)
        history_dir.mkdir(parents=True, exist_ok=True)
    for index, (seed, policy) in enumerate(
        sweep_seeds(base_seed, plans, policies)
    ):
        plan = random_plan(seed, policy=policy)
        record = (history_dir / f"plan-{index:03d}.jsonl"
                  if history_dir is not None else False)
        if root is None:
            with tempfile.TemporaryDirectory(prefix="crashsim-") as scratch:
                report = CrashSim(plan, scratch, record_history=record).run()
        else:
            report = CrashSim(plan, Path(root) / f"plan-{index}",
                              record_history=record).run()
        if not report.ok:
            failures.append(report)
            echo(f"FAIL  {report.summary()}\n")
        elif verbose:
            echo(f"ok    {report.summary()}\n")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-crashsweep",
        description=(
            "Deterministic crash sweep: seeded fault plans x sync "
            "policies, each checked for committed-prefix recovery and "
            "a clean fsck."
        ),
    )
    parser.add_argument("--plans", type=int, default=200,
                        help="number of plans to run (default 200)")
    parser.add_argument("--seed", type=int, default=20260806,
                        help="base seed (default 20260806)")
    parser.add_argument("--policy", choices=SYNC_POLICIES, default=None,
                        help="restrict to one sync policy "
                             "(default: round-robin over all four)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every plan, not only failures")
    parser.add_argument("--record-histories", metavar="DIR", default=None,
                        help="record each plan's transaction history as "
                             "DIR/plan-NNN.jsonl and isolation-check it "
                             "(repro-check iso reads the same files)")
    args = parser.parse_args(argv)
    if args.plans < 1:
        parser.error("--plans must be >= 1")
    policies = (args.policy,) * len(SYNC_POLICIES) if args.policy \
        else SYNC_POLICIES
    failures = run_sweep(
        args.seed, args.plans, policies=policies,
        report_stream=sys.stdout, verbose=args.verbose,
        record_histories=args.record_histories,
    )
    per_policy = args.plans // len(SYNC_POLICIES)
    print(
        f"crash sweep: {args.plans - len(failures)}/{args.plans} plans "
        f"recovered clean (~{per_policy} per policy, base seed "
        f"{args.seed})"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
