"""``python -m repro.faults`` runs the crash sweep (see sweep.py)."""

import sys

from .sweep import main

if __name__ == "__main__":
    sys.exit(main())
