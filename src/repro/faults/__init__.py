"""Deterministic fault injection: failpoints, plans, and crash simulation.

Layers (low to high):

- :mod:`repro.faults.registry` — named failpoint sites threaded through
  the storage, server, and client code; the arming registry; the
  ``fire()`` shim production code calls (a near-free no-op unless a
  :func:`fault_scope` is active).
- :mod:`repro.faults.plan` — seeded, deterministic :class:`FaultPlan`\\ s
  bundling rules, workload size, sync policy, and crash point.
- :mod:`repro.faults.crashsim` — the :class:`CrashSim` harness: run a
  seeded workload under a plan, simulate ``kill -9`` (or a power cut),
  recover, and check committed-prefix durability plus a clean fsck.
- :mod:`repro.faults.sweep` — the CLI sweeping hundreds of plans in CI
  (``python -m repro.faults.sweep`` / ``repro-crashsweep``).

Only the registry is imported eagerly: the storage/server/client
modules import ``fire`` from here at module load, and pulling the
harness in would create an import cycle (the harness itself drives the
storage layer).
"""

from .registry import (
    ACTIONS,
    FAILPOINTS,
    FailpointRegistry,
    FaultRule,
    InjectedFault,
    active,
    fault_scope,
    fire,
)

__all__ = [
    "ACTIONS",
    "FAILPOINTS",
    "FailpointRegistry",
    "FaultRule",
    "InjectedFault",
    "active",
    "fault_scope",
    "fire",
    "CRASH_MODES",
    "FaultPlan",
    "random_plan",
    "CrashSim",
    "CrashReport",
]


def __getattr__(name):
    if name in ("FaultPlan", "random_plan", "CRASH_MODES"):
        from . import plan

        return getattr(plan, name)
    if name in ("CrashSim", "CrashReport"):
        from . import crashsim

        return getattr(crashsim, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
