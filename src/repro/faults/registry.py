"""Named failpoints: the arming registry and the ``fire()`` shim.

A *failpoint* is a named site threaded through production code —
``journal.write_record``, ``server.send_frame``, ``client.recv``, … —
where a test can deterministically inject a failure.  Production code
calls :func:`fire` at each site; when no registry is armed (the default,
and the only state production ever sees) the call reads one module
global and returns, so the instrumented paths pay ~nothing (benchmark
B17 asserts the overhead stays under 5%).

Arming happens through :func:`fault_scope`::

    with fault_scope() as faults:
        faults.add("journal.fsync", "error", nth=3)
        ...  # the third fsync anywhere below raises InjectedFault

Rules are matched per-site by hit count (1-based ``nth``, for ``count``
consecutive hits, or forever).  An action either raises
:class:`InjectedFault` (an :class:`OSError`, so the production error
paths that already handle real IO and socket failures catch it), or
returns a *directive* that the site interprets — ``"skip"`` for a lying
fsync, ``"drop"``/``"garble"``/``"kill"`` and ``("delay", seconds)`` for
wire frames.  Sites that get ``None`` back proceed normally.

The registry also supports *observers* — callbacks invoked on every hit
of a site regardless of rules.  The crash simulator uses them to track
the journal's truly-fsynced watermark without touching any database hook
list (see ``repro.faults.crashsim``).
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass, field

_U32 = struct.Struct(">I")

#: Catalog of every failpoint site threaded through the codebase.
#: ``add()`` validates rule sites against this map to catch typos; the
#: docs/FAULTS.md table is generated from the same names.
FAILPOINTS = {
    "journal.write_record": (
        "before a redo record is written; supports error and torn"
    ),
    "journal.fsync": (
        "before the journal fsyncs; error raises, skip lies (counters "
        "advance, durability does not)"
    ),
    "journal.fsynced": (
        "observer-only: after a *real* fsync completed (the crash "
        "simulator's durable watermark)"
    ),
    "journal.checkpoint": "before a checkpoint starts",
    "journal.checkpointed": "observer-only: after a checkpoint completed",
    "store.write": "before the object store writes a record (paged mode)",
    "store.read": "before the object store reads a record (paged mode)",
    "server.send_frame": (
        "before the server writes a response/event frame; supports "
        "error, drop, garble, delay, kill"
    ),
    "server.recv_frame": (
        "after the server reads a request frame; supports error, drop, "
        "kill"
    ),
    "client.send": "before the blocking client writes request bytes",
    "client.recv": "before the blocking client reads response bytes",
    "twopc.prepare": (
        "worker: before the participant seals its prepare batch; "
        "supports error and kill (process exit)"
    ),
    "twopc.prepared": (
        "worker: after the prepare record is durable, before the vote "
        "is sent; supports kill (process exit)"
    ),
    "twopc.decide": (
        "worker: before the participant applies a coordinator decision; "
        "supports error and kill (process exit)"
    ),
    "twopc.decided": (
        "worker: after the decision is applied and locks released; "
        "supports kill (process exit)"
    ),
    "coord.log_decision": (
        "router: before the coordinator journals its commit/abort "
        "decision; supports error and kill (process exit)"
    ),
    "coord.decided": (
        "router: after the decision record is fsynced, before any "
        "participant hears it; supports kill (process exit)"
    ),
    "coord.send_decide": (
        "router: before the decision is sent to one participant "
        "(ctx carries shard); supports kill (process exit)"
    ),
}

#: Actions a rule may carry.  ``error``/``torn`` raise InjectedFault at
#: the site; the rest are returned as directives for the site to apply.
ACTIONS = (
    "error",   # raise InjectedFault (an OSError)
    "torn",    # write a truncated record frame, then raise (journal only)
    "skip",    # lying fsync: pretend success, do nothing (journal.fsync)
    "drop",    # swallow the frame (wire sites)
    "garble",  # corrupt the frame payload (server.send_frame)
    "delay",   # sleep delay_s before proceeding (wire sites)
    "kill",    # wire sites: tear the connection down mid-op;
               # twopc./coord. sites: hard process exit (os._exit)
    "count",   # benign: match and log, change nothing (B17 "armed" mode)
)


class InjectedFault(OSError):
    """A failure injected by an armed failpoint.

    Subclasses :class:`OSError` on purpose: the production error paths
    that handle real disk and socket failures (``except OSError``,
    ``except (ConnectionError, OSError)``) treat an injected fault
    exactly like the real thing.
    """


@dataclass
class FaultRule:
    """One injection rule: *site* × trigger window × action.

    The rule triggers on hits ``nth .. nth+count-1`` of its site (hit
    numbering is 1-based and per-site); ``count=None`` means forever.
    """

    site: str
    action: str
    nth: int = 1
    count: int | None = 1
    torn_bytes: int = 8
    delay_s: float = 0.0
    message: str = ""

    def __post_init__(self):
        if self.site not in FAILPOINTS:
            raise ValueError(
                f"unknown failpoint site {self.site!r}; "
                f"known sites: {', '.join(sorted(FAILPOINTS))}"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"known actions: {', '.join(ACTIONS)}"
            )
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for forever)")

    def matches(self, hit):
        """True when the *hit*-th firing of the site triggers this rule."""
        if hit < self.nth:
            return False
        return self.count is None or hit < self.nth + self.count

    def to_dict(self):
        return {
            "site": self.site,
            "action": self.action,
            "nth": self.nth,
            "count": self.count,
            "torn_bytes": self.torn_bytes,
            "delay_s": self.delay_s,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


@dataclass
class Triggered:
    """Log entry for one rule firing (``registry.triggered``)."""

    site: str
    hit: int
    action: str
    rule: FaultRule = field(repr=False)


class FailpointRegistry:
    """Hit counting, rule matching, and observers for every site.

    Not armed by itself — pass it to (or receive it from)
    :func:`fault_scope`.  One registry is single-use per scope but its
    counters survive disarming, so tests can assert on ``hits`` and
    ``triggered`` after the scope exits.
    """

    def __init__(self, rules=()):
        self._rules = {}
        self.hits = {}
        #: Chronological log of every rule firing.
        self.triggered = []
        self._observers = {}
        for rule in rules:
            self.add_rule(rule)

    def add(self, site, action, **kwargs):
        """Create, register, and return a :class:`FaultRule`."""
        rule = FaultRule(site=site, action=action, **kwargs)
        self.add_rule(rule)
        return rule

    def add_rule(self, rule):
        self._rules.setdefault(rule.site, []).append(rule)
        return rule

    def observe(self, site, callback):
        """Invoke *callback(ctx_dict)* on every hit of *site*."""
        if site not in FAILPOINTS:
            raise ValueError(f"unknown failpoint site {site!r}")
        self._observers.setdefault(site, []).append(callback)

    def hit_count(self, site):
        return self.hits.get(site, 0)

    def fire(self, site, **ctx):
        """Register a hit of *site*; apply the first matching rule."""
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for callback in self._observers.get(site, ()):
            callback(ctx)
        rules = self._rules.get(site)
        if not rules:
            return None
        for rule in rules:
            if rule.matches(hit):
                return self._apply(rule, site, hit, ctx)
        return None

    def _apply(self, rule, site, hit, ctx):
        self.triggered.append(Triggered(site, hit, rule.action, rule))
        action = rule.action
        if action == "error":
            raise InjectedFault(
                rule.message
                or f"injected fault at {site} (hit {hit})"
            )
        if action == "torn":
            self._torn_write(rule, site, hit, ctx)
        if action == "delay":
            return ("delay", rule.delay_s)
        if action == "count":
            return None
        return action  # skip / drop / garble / kill

    def _torn_write(self, rule, site, hit, ctx):
        """Write a truncated record frame, then raise.

        The journal site passes ``file`` plus the record pieces
        (``kind``, ``payload``); the torn frame is the full encoded
        record minus the final ``torn_bytes`` bytes — the classic
        mid-record power cut.
        """
        handle = ctx.get("file")
        kind = ctx.get("kind")
        payload = ctx.get("payload")
        if handle is not None and kind is not None and payload is not None:
            frame = kind + _U32.pack(len(payload)) + payload
            cut = max(0, len(frame) - rule.torn_bytes)
            handle.write(frame[:cut])
            handle.flush()
        raise InjectedFault(
            rule.message
            or f"injected torn write at {site} (hit {hit}, "
            f"-{rule.torn_bytes} bytes)"
        )


#: The armed registry, or None.  Read by ``fire()`` on every failpoint
#: hit — keeping this a plain module global is what makes the disarmed
#: path nearly free.
_ACTIVE = None


def active():
    """The currently armed registry, or None."""
    return _ACTIVE


def fire(site, **ctx):
    """Fire the failpoint *site*.  No-op (returns None) unless armed."""
    registry = _ACTIVE
    if registry is None:
        return None
    return registry.fire(site, **ctx)


@contextmanager
def fault_scope(registry=None):
    """Arm *registry* (a fresh one when None) for the dynamic extent.

    Scopes do not nest: arming while armed raises, because two
    registries would silently split hit counts and make plans
    non-deterministic.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("failpoints are already armed; scopes do not nest")
    if registry is None:
        registry = FailpointRegistry()
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = None
