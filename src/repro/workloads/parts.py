"""Physical part-hierarchy workloads (paper 2.3, Example 1).

The Vehicle example: "We require that a vehicle part may be used for only
one vehicle at any point in time; however, vehicle parts may be re-used
for other vehicles" — independent exclusive composite references
throughout.

Also provides a generic uniform part tree (configurable depth/fan-out and
reference kind), used by the clustering, locking, and deletion benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.attribute import AttributeSpec, SetOf

#: Attribute keyword sets for each reference flavour.
REFERENCE_FLAVOURS = {
    "dependent-exclusive": {"composite": True, "exclusive": True, "dependent": True},
    "independent-exclusive": {"composite": True, "exclusive": True, "dependent": False},
    "dependent-shared": {"composite": True, "exclusive": False, "dependent": True},
    "independent-shared": {"composite": True, "exclusive": False, "dependent": False},
    "weak": {"composite": False},
}


def define_vehicle_schema(db):
    """Define the paper's Example 1 classes on *db* (idempotent)."""
    if "Vehicle" in db.lattice:
        return
    db.make_class("Company")
    db.make_class("AutoBody")
    db.make_class("AutoDrivetrain")
    db.make_class("AutoTires")
    db.make_class(
        "Vehicle",
        attributes=[
            AttributeSpec("Manufacturer", domain="Company"),
            AttributeSpec(
                "Body",
                domain="AutoBody",
                composite=True,
                exclusive=True,
                dependent=False,
            ),
            AttributeSpec(
                "Drivetrain",
                domain="AutoDrivetrain",
                composite=True,
                exclusive=True,
                dependent=False,
            ),
            AttributeSpec(
                "Tires",
                domain=SetOf("AutoTires"),
                composite=True,
                exclusive=True,
                dependent=False,
            ),
            AttributeSpec("Color", domain="string"),
        ],
    )


@dataclass
class Vehicle:
    """Handles for one generated vehicle."""

    vehicle: object
    body: object
    drivetrain: object
    tires: list


def build_vehicle(db, color="red", manufacturer=None, tire_count=4):
    """Assemble one vehicle bottom-up (components first).

    This deliberately exercises the extended model's bottom-up creation —
    the components exist before the vehicle that aggregates them.
    """
    define_vehicle_schema(db)
    body = db.make("AutoBody")
    drivetrain = db.make("AutoDrivetrain")
    tires = [db.make("AutoTires") for _ in range(tire_count)]
    vehicle = db.make(
        "Vehicle",
        values={
            "Body": body,
            "Drivetrain": drivetrain,
            "Tires": tires,
            "Color": color,
            "Manufacturer": manufacturer,
        },
    )
    return Vehicle(vehicle=vehicle, body=body, drivetrain=drivetrain, tires=tires)


def build_fleet(db, count, tire_count=4):
    """Build *count* vehicles; returns the list of :class:`Vehicle`."""
    colors = ("red", "blue", "green", "white", "black")
    return [
        build_vehicle(db, color=colors[i % len(colors)], tire_count=tire_count)
        for i in range(count)
    ]


@dataclass
class PartTree:
    """A generated uniform part hierarchy."""

    root: object
    #: All UIDs by level; level 0 is the root.
    levels: list = field(default_factory=list)

    @property
    def all_uids(self):
        return [uid for level in self.levels for uid in level]

    @property
    def size(self):
        return len(self.all_uids)


def define_part_schema(db, flavour="dependent-exclusive", class_prefix="Part"):
    """Define a two-class recursive part schema.

    ``<prefix>`` objects hold a set-of composite reference ``SubParts``
    whose domain is the class itself, so trees of any depth can be built.
    """
    name = class_prefix
    if name in db.lattice:
        return name
    keywords = REFERENCE_FLAVOURS[flavour]
    db.make_class(
        name,
        attributes=[
            AttributeSpec("Label", domain="string"),
            AttributeSpec("SubParts", domain=SetOf(name), **keywords),
        ],
    )
    return name


def define_assembly_schema(
    db, flavour="dependent-exclusive", part_class="Part", assembly_class="Assembly"
):
    """Two-class schema: ``Assembly`` roots over a recursive ``Part`` tree.

    Distinct root and component classes keep the Section 7 protocol's
    root-class intention lock (IS/IX) off the component classes.  With a
    *self-referential* schema the root class is its own component class,
    so one updater's IX meets another's IXO and concurrent updates of
    different composites serialize — a real limitation of class-granular
    composite locking that ``tests/test_lock_protocol.py`` pins down.
    """
    part = define_part_schema(db, flavour, part_class)
    if assembly_class in db.lattice:
        return assembly_class, part
    keywords = REFERENCE_FLAVOURS[flavour]
    db.make_class(
        assembly_class,
        attributes=[
            AttributeSpec("Label", domain="string"),
            AttributeSpec("SubParts", domain=SetOf(part), **keywords),
        ],
    )
    return assembly_class, part


def build_assembly(
    db,
    depth,
    fanout,
    flavour="dependent-exclusive",
    part_class="Part",
    assembly_class="Assembly",
):
    """Build an ``Assembly``-rooted part tree (see
    :func:`define_assembly_schema`)."""
    assembly, part = define_assembly_schema(db, flavour, part_class, assembly_class)
    root = db.make(assembly, values={"Label": "assembly"})
    levels = [[root]]
    for level in range(1, depth + 1):
        children = []
        for parent in levels[-1]:
            for i in range(fanout):
                child = db.make(
                    part,
                    values={"Label": f"L{level}.{i}"},
                    parents=[(parent, "SubParts")],
                )
                children.append(child)
        levels.append(children)
    return PartTree(root=root, levels=levels)


def build_part_tree(
    db,
    depth,
    fanout,
    flavour="dependent-exclusive",
    class_prefix="Part",
    top_down=True,
):
    """Build a uniform tree of ``fanout**level`` parts per level.

    *top_down* creates children with ``:parent`` (works in both the
    extended model and the KIM87b baseline); ``top_down=False`` creates
    every object first and assembles bottom-up with ``make_part_of``
    (extended model only).
    """
    name = define_part_schema(db, flavour, class_prefix)
    root = db.make(name, values={"Label": "root"})
    levels = [[root]]
    for level in range(1, depth + 1):
        children = []
        for parent in levels[-1]:
            for i in range(fanout):
                label = f"L{level}.{i}"
                if top_down:
                    child = db.make(
                        name, values={"Label": label}, parents=[(parent, "SubParts")]
                    )
                else:
                    child = db.make(name, values={"Label": label})
                    db.make_part_of(child, parent, "SubParts")
                children.append(child)
        levels.append(children)
    return PartTree(root=root, levels=levels)
