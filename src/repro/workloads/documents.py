"""Logical part-hierarchy workloads (paper 2.3, Example 2).

The electronic-document example: documents share sections and paragraphs
(dependent shared references), contain images extracted from files
(independent shared), and own private annotations (dependent exclusive).
The corpus generator controls how much sharing actually occurs, which
drives the deletion-model benchmark (B7) and the authorization benchmark
(B3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..schema.attribute import AttributeSpec, SetOf


def define_document_schema(db):
    """Define the paper's Example 2 classes on *db* (idempotent)."""
    if "Document" in db.lattice:
        return
    db.make_class("Paragraph", attributes=[AttributeSpec("Text", domain="string")])
    db.make_class("Image", attributes=[AttributeSpec("File", domain="string")])
    db.make_class(
        "Section",
        attributes=[
            AttributeSpec("Heading", domain="string"),
            AttributeSpec(
                "Content",
                domain=SetOf("Paragraph"),
                composite=True,
                exclusive=False,
                dependent=True,
            ),
        ],
    )
    db.make_class(
        "Document",
        attributes=[
            AttributeSpec("Title", domain="string"),
            AttributeSpec("Authors", domain=SetOf("string")),
            AttributeSpec(
                "Sections",
                domain=SetOf("Section"),
                composite=True,
                exclusive=False,
                dependent=True,
            ),
            AttributeSpec(
                "Figures",
                domain=SetOf("Image"),
                composite=True,
                exclusive=False,
                dependent=False,
            ),
            AttributeSpec(
                "Annotations",
                domain=SetOf("Paragraph"),
                composite=True,
                exclusive=True,
                dependent=True,
            ),
        ],
    )


@dataclass
class Corpus:
    """Handles for one generated document corpus."""

    documents: list = field(default_factory=list)
    sections: list = field(default_factory=list)
    paragraphs: list = field(default_factory=list)
    images: list = field(default_factory=list)
    #: section UIDs appearing in more than one document
    shared_sections: list = field(default_factory=list)

    @property
    def size(self):
        return (
            len(self.documents)
            + len(self.sections)
            + len(self.paragraphs)
            + len(self.images)
        )


def build_corpus(
    db,
    documents=10,
    sections_per_document=4,
    paragraphs_per_section=5,
    share_ratio=0.3,
    images_per_document=2,
    annotations_per_document=1,
    seed=1989,
):
    """Build a corpus where *share_ratio* of each document's sections are
    borrowed from previously created documents (bottom-up sharing —
    impossible under the KIM87b baseline)."""
    define_document_schema(db)
    rng = random.Random(seed)
    corpus = Corpus()
    image_pool = [
        db.make("Image", values={"File": f"/figures/fig{i}.png"})
        for i in range(max(1, images_per_document * 2))
    ]
    corpus.images = image_pool
    for doc_index in range(documents):
        section_uids = []
        shareable = [s for s in corpus.sections]
        for sec_index in range(sections_per_document):
            borrow = shareable and rng.random() < share_ratio
            if borrow:
                section = rng.choice(shareable)
                if section not in corpus.shared_sections:
                    corpus.shared_sections.append(section)
            else:
                paragraphs = [
                    db.make(
                        "Paragraph",
                        values={"Text": f"d{doc_index}s{sec_index}p{p}"},
                    )
                    for p in range(paragraphs_per_section)
                ]
                corpus.paragraphs.extend(paragraphs)
                section = db.make(
                    "Section",
                    values={
                        "Heading": f"Section {doc_index}.{sec_index}",
                        "Content": paragraphs,
                    },
                )
                corpus.sections.append(section)
            if section not in section_uids:
                section_uids.append(section)
        annotations = [
            db.make("Paragraph", values={"Text": f"note d{doc_index}.{a}"})
            for a in range(annotations_per_document)
        ]
        corpus.paragraphs.extend(annotations)
        figures = rng.sample(image_pool, min(images_per_document, len(image_pool)))
        document = db.make(
            "Document",
            values={
                "Title": f"Document {doc_index}",
                "Authors": [f"author{doc_index % 3}"],
                "Sections": section_uids,
                "Figures": figures,
                "Annotations": annotations,
            },
        )
        corpus.documents.append(document)
    return corpus
