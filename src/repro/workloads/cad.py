"""A CAD-flavoured versioned-design workload.

ORION's composite objects were motivated by "some mechanical CAD
applications" (paper Section 1); this generator builds versionable designs
whose modules are versionable too, then runs derivation chains — the
workload shape behind the Figure 1-3 scenarios and benchmark B10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.attribute import AttributeSpec, SetOf


def define_cad_schema(db):
    """Versionable Design / Module classes (idempotent)."""
    if "Design" in db.lattice:
        return
    db.make_class(
        "Module",
        versionable=True,
        attributes=[
            AttributeSpec("Name", domain="string"),
            AttributeSpec("Gates", domain="integer", init=0),
        ],
    )
    db.make_class(
        "Design",
        versionable=True,
        attributes=[
            AttributeSpec("Name", domain="string"),
            AttributeSpec(
                "Modules",
                domain=SetOf("Module"),
                composite=True,
                exclusive=True,
                dependent=False,
            ),
        ],
    )


@dataclass
class DesignBench:
    """Handles for one generated design workbench."""

    #: (generic, first version) per design
    designs: list = field(default_factory=list)
    #: (generic, first version) per module
    modules: list = field(default_factory=list)
    #: version UIDs created by derivation, per design generic
    derived: dict = field(default_factory=dict)


def build_design_bench(db, version_manager, designs=3, modules_per_design=4,
                       derivations=2):
    """Create *designs* designs, each with its own modules, then derive
    *derivations* new versions of each design.

    Each derivation exercises the Figure 1 rebinding: the design's
    independent exclusive references to module version instances are
    rebound to the modules' generic instances.
    """
    define_cad_schema(db)
    bench = DesignBench()
    for d in range(designs):
        module_versions = []
        for m in range(modules_per_design):
            generic, version = version_manager.create(
                "Module", values={"Name": f"mod{d}.{m}", "Gates": 10 * (m + 1)}
            )
            bench.modules.append((generic, version))
            module_versions.append(version)
        design_generic, design_version = version_manager.create(
            "Design", values={"Name": f"design{d}", "Modules": module_versions}
        )
        bench.designs.append((design_generic, design_version))
        chain = [design_version]
        for _ in range(derivations):
            report = version_manager.derive(chain[-1])
            chain.append(report.new_version)
        bench.derived[design_generic] = chain[1:]
    return bench
