"""Transaction mixes for the concurrency simulator (benchmark B9)."""

from __future__ import annotations

import random

from ..sim.eventsim import Step


def composite_mix(
    roots,
    transactions=20,
    steps_per_txn=3,
    read_ratio=0.7,
    instance_access_ratio=0.2,
    components_by_root=None,
    seed=42,
):
    """Scripts where each step touches one whole composite (or, with
    probability *instance_access_ratio*, a single component instance).

    *roots* is a list of composite-root UIDs; *components_by_root*
    optionally maps each root to its component UIDs (required for
    instance-level steps).  Returns a list of step lists for
    :class:`repro.sim.eventsim.ConcurrencySimulator`.
    """
    rng = random.Random(seed)
    scripts = []
    for _ in range(transactions):
        steps = []
        for _ in range(steps_per_txn):
            root = rng.choice(roots)
            read = rng.random() < read_ratio
            use_instance = (
                components_by_root is not None
                and components_by_root.get(root)
                and rng.random() < instance_access_ratio
            )
            if use_instance:
                target = rng.choice(components_by_root[root])
                action = "read_instance" if read else "update_instance"
            else:
                target = root
                action = "read_composite" if read else "update_composite"
            steps.append(Step(action=action, target=target))
        scripts.append(steps)
    return scripts


def disjoint_writers(roots, writers_per_root=1, steps_per_txn=2):
    """Every transaction updates a distinct composite object.

    The paper's headline concurrency claim: "multiple users [may] read and
    update different composite objects that share the same composite class
    hierarchy".  Under the composite protocol these scripts never block;
    under a single class lock they serialize completely.
    """
    scripts = []
    for root in roots:
        for _ in range(writers_per_root):
            scripts.append(
                [Step(action="update_composite", target=root)] * steps_per_txn
            )
    return scripts
