"""Transaction mixes: simulator scripts (B9) and a live TCP driver.

:func:`composite_mix` / :func:`disjoint_writers` build step scripts for
:class:`repro.sim.eventsim.ConcurrencySimulator`.  The TCP half —
:func:`tcp_fixture` and :func:`run_tcp_mix` — replays the *same* scripts
through a real :class:`repro.server.client.Client` connection, turning
each script into one explicit ``begin``/``commit`` transaction against a
live server (or a shard router: benchmark B18 and the cluster tests
drive exactly this workload through ``repro-router``).
"""

from __future__ import annotations

import random

from ..sim.eventsim import Step


def composite_mix(
    roots,
    transactions=20,
    steps_per_txn=3,
    read_ratio=0.7,
    instance_access_ratio=0.2,
    components_by_root=None,
    seed=42,
):
    """Scripts where each step touches one whole composite (or, with
    probability *instance_access_ratio*, a single component instance).

    *roots* is a list of composite-root UIDs; *components_by_root*
    optionally maps each root to its component UIDs (required for
    instance-level steps).  Returns a list of step lists for
    :class:`repro.sim.eventsim.ConcurrencySimulator`.
    """
    rng = random.Random(seed)
    scripts = []
    for _ in range(transactions):
        steps = []
        for _ in range(steps_per_txn):
            root = rng.choice(roots)
            read = rng.random() < read_ratio
            use_instance = (
                components_by_root is not None
                and components_by_root.get(root)
                and rng.random() < instance_access_ratio
            )
            if use_instance:
                target = rng.choice(components_by_root[root])
                action = "read_instance" if read else "update_instance"
            else:
                target = root
                action = "read_composite" if read else "update_composite"
            steps.append(Step(action=action, target=target))
        scripts.append(steps)
    return scripts


def single_root_mix(roots, transactions=20, steps_per_txn=3,
                    read_ratio=0.7, seed=42):
    """Scripts whose steps all touch *one* composite root each.

    The sharded fast path's best case: with composite-aware placement a
    whole script lands on one shard, so its commit needs no 2PC.
    Contrast with :func:`composite_mix`, whose per-step root choice
    makes most multi-step scripts span shards.
    """
    rng = random.Random(seed)
    scripts = []
    for _ in range(transactions):
        root = rng.choice(roots)
        steps = []
        for _ in range(steps_per_txn):
            read = rng.random() < read_ratio
            action = "read_composite" if read else "update_composite"
            steps.append(Step(action=action, target=root))
        scripts.append(steps)
    return scripts


def disjoint_writers(roots, writers_per_root=1, steps_per_txn=2):
    """Every transaction updates a distinct composite object.

    The paper's headline concurrency claim: "multiple users [may] read and
    update different composite objects that share the same composite class
    hierarchy".  Under the composite protocol these scripts never block;
    under a single class lock they serialize completely.
    """
    scripts = []
    for root in roots:
        for _ in range(writers_per_root):
            scripts.append(
                [Step(action="update_composite", target=root)] * steps_per_txn
            )
    return scripts


# ---------------------------------------------------------------------------
# Driving the same scripts over a live TCP connection
# ---------------------------------------------------------------------------

#: Attribute the TCP driver's update steps write (an integer stamp).
STAMP_ATTRIBUTE = "Stamp"


def tcp_fixture(client, roots=8, parts_per_root=3):
    """Create the TCP mix's schema and data through *client*.

    ``MixRoot`` composites with *parts_per_root* dependent ``MixPart``
    children each; both carry an integer :data:`STAMP_ATTRIBUTE` for
    update steps to write.  Children are created with ``parents=`` so a
    shard router co-locates each hierarchy with its root.  Returns
    ``(root_uids, components_by_root)`` in the shape
    :func:`composite_mix` expects.
    """
    client.make_class("MixPart", attributes=[
        {"name": STAMP_ATTRIBUTE, "domain": "integer"},
    ])
    client.make_class("MixRoot", attributes=[
        {"name": STAMP_ATTRIBUTE, "domain": "integer"},
        {"name": "Parts", "domain": {"$set_of": "MixPart"},
         "composite": True, "exclusive": True, "dependent": True},
    ])
    root_uids = []
    components = {}
    for _ in range(roots):
        root = client.make("MixRoot", values={STAMP_ATTRIBUTE: 0})
        root_uids.append(root)
        components[root] = [
            client.make("MixPart", values={STAMP_ATTRIBUTE: 0},
                        parents=[(root, "Parts")])
            for _ in range(parts_per_root)
        ]
    return root_uids, components


def run_tcp_mix(client, scripts, max_retries=10):
    """Execute simulator *scripts* through a live client connection.

    Each script runs as one explicit transaction: ``read_composite``
    becomes ``components_of``, ``read_instance`` becomes ``resolve``,
    and both update actions ``set_value`` the target's stamp.  A
    deadlock victim retries its whole scope (the server already rolled
    it back), up to *max_retries* times.  Returns counters::

        {"transactions": ..., "ops": ..., "deadlock_retries": ...}
    """
    from ..errors import DeadlockError

    stats = {"transactions": 0, "ops": 0, "deadlock_retries": 0}
    stamp = 0
    for steps in scripts:
        for attempt in range(max_retries + 1):
            try:
                client.begin()
                for step in steps:
                    if step.action == "read_composite":
                        client.components_of(step.target)
                    elif step.action == "read_instance":
                        client.resolve(step.target)
                    else:
                        stamp += 1
                        client.set_value(
                            step.target, STAMP_ATTRIBUTE, stamp
                        )
                    stats["ops"] += 1
                client.commit()
                break
            except DeadlockError:
                stats["deadlock_retries"] += 1
                if attempt >= max_retries:
                    raise
        stats["transactions"] += 1
    return stats
