"""Transaction mixes: simulator scripts (B9), an in-process strict-2PL
driver, and a live TCP driver.

:func:`composite_mix` / :func:`disjoint_writers` build step scripts for
:class:`repro.sim.eventsim.ConcurrencySimulator`.  The TCP half —
:func:`tcp_fixture` and :func:`run_tcp_mix` — replays the *same* scripts
through a real :class:`repro.server.client.Client` connection, turning
each script into one explicit ``begin``/``commit`` transaction against a
live server (or a shard router: benchmark B18 and the cluster tests
drive exactly this workload through ``repro-router``).  The in-process
half — :func:`memory_fixture` and :func:`run_tm_mix` — replays them
through a :class:`repro.txn.manager.TransactionManager` with genuinely
interleaved transactions (round-robin, one step per round), which is
what the isolation plane's recorder observes and its property tests
drive: strict 2PL must yield histories that check clean.

``python -m repro.workloads.txmix --port N`` drives the TCP mix against
a live server — CI pairs it with ``repro-server --record-history`` and
checks the recorded history with ``repro-check iso``.
"""

from __future__ import annotations

import random

from ..sim.eventsim import Step


def composite_mix(
    roots,
    transactions=20,
    steps_per_txn=3,
    read_ratio=0.7,
    instance_access_ratio=0.2,
    components_by_root=None,
    seed=42,
):
    """Scripts where each step touches one whole composite (or, with
    probability *instance_access_ratio*, a single component instance).

    *roots* is a list of composite-root UIDs; *components_by_root*
    optionally maps each root to its component UIDs (required for
    instance-level steps).  Returns a list of step lists for
    :class:`repro.sim.eventsim.ConcurrencySimulator`.
    """
    rng = random.Random(seed)
    scripts = []
    for _ in range(transactions):
        steps = []
        for _ in range(steps_per_txn):
            root = rng.choice(roots)
            read = rng.random() < read_ratio
            use_instance = (
                components_by_root is not None
                and components_by_root.get(root)
                and rng.random() < instance_access_ratio
            )
            if use_instance:
                target = rng.choice(components_by_root[root])
                action = "read_instance" if read else "update_instance"
            else:
                target = root
                action = "read_composite" if read else "update_composite"
            steps.append(Step(action=action, target=target))
        scripts.append(steps)
    return scripts


def single_root_mix(roots, transactions=20, steps_per_txn=3,
                    read_ratio=0.7, seed=42):
    """Scripts whose steps all touch *one* composite root each.

    The sharded fast path's best case: with composite-aware placement a
    whole script lands on one shard, so its commit needs no 2PC.
    Contrast with :func:`composite_mix`, whose per-step root choice
    makes most multi-step scripts span shards.
    """
    rng = random.Random(seed)
    scripts = []
    for _ in range(transactions):
        root = rng.choice(roots)
        steps = []
        for _ in range(steps_per_txn):
            read = rng.random() < read_ratio
            action = "read_composite" if read else "update_composite"
            steps.append(Step(action=action, target=root))
        scripts.append(steps)
    return scripts


def disjoint_writers(roots, writers_per_root=1, steps_per_txn=2):
    """Every transaction updates a distinct composite object.

    The paper's headline concurrency claim: "multiple users [may] read and
    update different composite objects that share the same composite class
    hierarchy".  Under the composite protocol these scripts never block;
    under a single class lock they serialize completely.
    """
    scripts = []
    for root in roots:
        for _ in range(writers_per_root):
            scripts.append(
                [Step(action="update_composite", target=root)] * steps_per_txn
            )
    return scripts


# ---------------------------------------------------------------------------
# Driving the same scripts over a live TCP connection
# ---------------------------------------------------------------------------

#: Attribute the TCP driver's update steps write (an integer stamp).
STAMP_ATTRIBUTE = "Stamp"


def tcp_fixture(client, roots=8, parts_per_root=3):
    """Create the TCP mix's schema and data through *client*.

    ``MixRoot`` composites with *parts_per_root* dependent ``MixPart``
    children each; both carry an integer :data:`STAMP_ATTRIBUTE` for
    update steps to write.  Children are created with ``parents=`` so a
    shard router co-locates each hierarchy with its root.  Returns
    ``(root_uids, components_by_root)`` in the shape
    :func:`composite_mix` expects.
    """
    client.make_class("MixPart", attributes=[
        {"name": STAMP_ATTRIBUTE, "domain": "integer"},
    ])
    client.make_class("MixRoot", attributes=[
        {"name": STAMP_ATTRIBUTE, "domain": "integer"},
        {"name": "Parts", "domain": {"$set_of": "MixPart"},
         "composite": True, "exclusive": True, "dependent": True},
    ])
    root_uids = []
    components = {}
    for _ in range(roots):
        root = client.make("MixRoot", values={STAMP_ATTRIBUTE: 0})
        root_uids.append(root)
        components[root] = [
            client.make("MixPart", values={STAMP_ATTRIBUTE: 0},
                        parents=[(root, "Parts")])
            for _ in range(parts_per_root)
        ]
    return root_uids, components


def run_tcp_mix(client, scripts, max_retries=10):
    """Execute simulator *scripts* through a live client connection.

    Each script runs as one explicit transaction: ``read_composite``
    becomes ``components_of``, ``read_instance`` becomes ``resolve``,
    and both update actions ``set_value`` the target's stamp.  A
    deadlock victim retries its whole scope (the server already rolled
    it back), up to *max_retries* times.  Returns counters::

        {"transactions": ..., "ops": ..., "deadlock_retries": ...}
    """
    from ..errors import DeadlockError

    stats = {"transactions": 0, "ops": 0, "deadlock_retries": 0}
    stamp = 0
    for steps in scripts:
        for attempt in range(max_retries + 1):
            try:
                client.begin()
                for step in steps:
                    if step.action == "read_composite":
                        client.components_of(step.target)
                    elif step.action == "read_instance":
                        client.resolve(step.target)
                    else:
                        stamp += 1
                        client.set_value(
                            step.target, STAMP_ATTRIBUTE, stamp
                        )
                    stats["ops"] += 1
                client.commit()
                break
            except DeadlockError:
                stats["deadlock_retries"] += 1
                if attempt >= max_retries:
                    raise
        stats["transactions"] += 1
    return stats


# ---------------------------------------------------------------------------
# Driving the same scripts through an in-process TransactionManager
# ---------------------------------------------------------------------------


def memory_fixture(db, roots=8, parts_per_root=3):
    """The TCP fixture's schema and data built directly on *db*.

    Same shape as :func:`tcp_fixture` — ``MixRoot`` composites over
    dependent ``MixPart`` children, both stamped — for in-process runs
    through :func:`run_tm_mix`.  Returns
    ``(root_uids, components_by_root)``.
    """
    from ..schema.attribute import AttributeSpec, SetOf

    db.make_class("MixPart", attributes=[
        AttributeSpec(STAMP_ATTRIBUTE, domain="integer"),
    ])
    db.make_class("MixRoot", attributes=[
        AttributeSpec(STAMP_ATTRIBUTE, domain="integer"),
        AttributeSpec("Parts", domain=SetOf("MixPart"),
                      composite=True, exclusive=True, dependent=True),
    ])
    root_uids = []
    components = {}
    for _ in range(roots):
        root = db.make("MixRoot", values={STAMP_ATTRIBUTE: 0})
        root_uids.append(root)
        components[root] = [
            db.make("MixPart", values={STAMP_ATTRIBUTE: 0},
                    parents=[(root, "Parts")])
            for _ in range(parts_per_root)
        ]
    return root_uids, components


def run_tm_mix(database, scripts, lock_table=None, max_rounds=100000,
               snapshot_readers=False):
    """Execute simulator *scripts* through a strict-2PL transaction
    manager with genuine interleaving.

    With *snapshot_readers* true, scripts containing no update step run
    as MVCC snapshot transactions (``begin(snapshot=True)``) — lock-free
    reads at a pinned commit epoch that never block behind, nor abort,
    the 2PL writers (the database needs an attached
    :class:`~repro.mvcc.manager.SnapshotManager`).  Read-only snapshot
    transactions plus strict-2PL writers stay serializable, which the
    isolation-oracle tests prove on the recorded histories
    (docs/REPLICATION.md).

    Each script is one transaction; the driver advances the active
    transactions round-robin, one step per round, so their data
    operations interleave in a single thread exactly as concurrent
    sessions would.  A lock conflict (the synchronous manager never
    waits) aborts the victim, which restarts from its first step in a
    later round — strict 2PL plus abort/retry, the discipline the
    isolation checker must find anomaly-free.  Victims back off for a
    deterministic, per-script number of rounds before restarting:
    simultaneous victims of a symmetric conflict would otherwise replay
    the identical collision round after round (livelock).

    ``read_composite`` takes the composite read plan,
    ``update_composite`` the composite write plan then stamps the root,
    ``read_instance`` / ``update_instance`` touch one instance.
    Returns counters::

        {"transactions": ..., "ops": ..., "conflict_retries": ...}
    """
    from ..errors import LockConflictError
    from ..locking.table import LockTable
    from ..txn.manager import TransactionManager

    tm = TransactionManager(
        database, lock_table if lock_table is not None else LockTable()
    )
    stats = {"transactions": 0, "ops": 0, "conflict_retries": 0,
             "snapshot_transactions": 0}
    stamp = 0
    read_actions = ("read_composite", "read_instance")
    active = [{"steps": list(steps), "pos": 0, "txn": None,
               "index": index, "retries": 0, "delay": 0,
               "snapshot": snapshot_readers and all(
                   step.action in read_actions for step in steps)}
              for index, steps in enumerate(scripts) if steps]
    rounds = 0
    while active:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(
                f"run_tm_mix made no overall progress in {max_rounds} "
                f"rounds ({len(active)} transaction(s) stuck)"
            )
        still = []
        for state in active:
            if state["delay"]:
                state["delay"] -= 1
                still.append(state)
                continue
            if state["txn"] is None:
                state["txn"] = tm.begin(snapshot=state["snapshot"])
                if state["snapshot"]:
                    stats["snapshot_transactions"] += 1
            txn = state["txn"]
            step = state["steps"][state["pos"]]
            try:
                if step.action == "read_composite":
                    tm.read_composite(txn, step.target)
                elif step.action == "read_instance":
                    tm.read(txn, step.target, STAMP_ATTRIBUTE)
                elif step.action == "update_composite":
                    tm.lock_composite_for_update(txn, step.target)
                    stamp += 1
                    tm.write(txn, step.target, STAMP_ATTRIBUTE, stamp)
                elif step.action == "update_instance":
                    stamp += 1
                    tm.write(txn, step.target, STAMP_ATTRIBUTE, stamp)
                else:
                    raise ValueError(f"unknown step action {step.action!r}")
            except LockConflictError:
                # Victim restarts: locks released, undo applied, and the
                # whole script re-runs under a fresh transaction later.
                tm.abort(txn)
                stats["conflict_retries"] += 1
                state["txn"] = None
                state["pos"] = 0
                state["retries"] += 1
                # Stagger the restart by script position and retry
                # count: victims that collided in the same round come
                # back in different rounds, so the collision cannot
                # repeat verbatim forever.
                state["delay"] = (
                    state["retries"] * (state["index"] + 1)
                ) % 97
                still.append(state)
                continue
            stats["ops"] += 1
            state["pos"] += 1
            if state["pos"] >= len(state["steps"]):
                tm.commit(txn)
                stats["transactions"] += 1
            else:
                still.append(state)
        active = still
    return stats


# ---------------------------------------------------------------------------
# CLI: the TCP mix against a live server (CI's record-history step)
# ---------------------------------------------------------------------------


def main(argv=None):
    """Drive the composite mix over TCP against a running server."""
    import argparse
    import json

    from ..server.client import Client

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.txmix",
        description="Create the mix fixture on a live server and run the "
        "B9 composite transaction mix over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--user", default="txmix")
    parser.add_argument("--roots", type=int, default=8)
    parser.add_argument("--parts-per-root", type=int, default=3)
    parser.add_argument("--transactions", type=int, default=20)
    parser.add_argument("--steps-per-txn", type=int, default=3)
    parser.add_argument("--read-ratio", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    with Client(host=args.host, port=args.port, user=args.user) as client:
        client.connect()
        roots, components = tcp_fixture(
            client, roots=args.roots, parts_per_root=args.parts_per_root
        )
        scripts = composite_mix(
            roots,
            transactions=args.transactions,
            steps_per_txn=args.steps_per_txn,
            read_ratio=args.read_ratio,
            components_by_root=components,
            seed=args.seed,
        )
        stats = run_tcp_mix(client, scripts)
    print(json.dumps(stats))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
