"""Synthetic workload generators shaped after the paper's motivating
examples: vehicle part hierarchies (2.3 Example 1), shared electronic
documents (2.3 Example 2), versioned CAD designs (Section 5), and
transaction mixes for the concurrency simulator."""

from .cad import DesignBench, build_design_bench, define_cad_schema
from .documents import Corpus, build_corpus, define_document_schema
from .figures import (
    Figure4,
    Figure5,
    Figure9,
    build_figure4,
    build_figure5,
    build_figure9,
)
from .parts import (
    PartTree,
    REFERENCE_FLAVOURS,
    Vehicle,
    build_fleet,
    build_part_tree,
    build_vehicle,
    define_part_schema,
    define_vehicle_schema,
)
from .txmix import composite_mix, disjoint_writers

__all__ = [
    "Corpus",
    "DesignBench",
    "Figure4",
    "Figure5",
    "Figure9",
    "build_figure4",
    "build_figure5",
    "build_figure9",
    "PartTree",
    "REFERENCE_FLAVOURS",
    "Vehicle",
    "build_corpus",
    "build_design_bench",
    "build_fleet",
    "build_part_tree",
    "build_vehicle",
    "composite_mix",
    "define_cad_schema",
    "define_document_schema",
    "define_part_schema",
    "define_vehicle_schema",
    "disjoint_writers",
]
