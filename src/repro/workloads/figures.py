"""Canonical builders for the paper's example figures.

The worked-object topologies the paper reasons over, as reusable
constructors (tests and benchmarks each need them):

* **Figure 4** — a strict composite tree: Instance[i] over [j, k];
  j over m; k over n; n over o (the authorization walk-through).
* **Figure 5** — two composite roots j and k sharing Instance[o'] (with
  private p under j and q under k) — the shared-component scenarios for
  authorization and the GARZ88 locking anomaly.
* **Figure 9** — the class graph of the revised locking protocol:
  class I holds exclusive references into C, class K shared references
  into C, and C exclusive references into W.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schema.attribute import AttributeSpec, SetOf


@dataclass
class Figure4:
    """Handles for the Figure 4 tree (names as printed in the paper)."""

    i: object
    j: object
    k: object
    m: object
    n: object
    o: object

    @property
    def components(self):
        return [self.j, self.k, self.m, self.n, self.o]


def build_figure4(db, class_name="Node"):
    """Build Figure 4's strict (dependent exclusive) composite tree."""
    if class_name not in db.lattice:
        db.make_class(class_name, attributes=[
            AttributeSpec("kids", domain=SetOf(class_name), composite=True,
                          exclusive=True, dependent=True),
        ])
    o = db.make(class_name)
    n = db.make(class_name, values={"kids": [o]})
    m = db.make(class_name)
    j = db.make(class_name, values={"kids": [m]})
    k = db.make(class_name, values={"kids": [n]})
    i = db.make(class_name, values={"kids": [j, k]})
    return Figure4(i=i, j=j, k=k, m=m, n=n, o=o)


@dataclass
class Figure5:
    """Handles for Figure 5: roots j and k sharing o_prime."""

    j: object
    k: object
    o_prime: object
    p: object
    q: object


def build_figure5(db, thing_class="Thing", root_class="Root"):
    """Build Figure 5's shared-component topology (independent shared)."""
    if thing_class not in db.lattice:
        db.make_class(thing_class)
    if root_class not in db.lattice:
        db.make_class(root_class, attributes=[
            AttributeSpec("kids", domain=SetOf(thing_class), composite=True,
                          exclusive=False, dependent=False),
        ])
    o_prime = db.make(thing_class)
    p = db.make(thing_class)
    q = db.make(thing_class)
    j = db.make(root_class, values={"kids": [o_prime, p]})
    k = db.make(root_class, values={"kids": [o_prime, q]})
    return Figure5(j=j, k=k, o_prime=o_prime, p=p, q=q)


@dataclass
class Figure9:
    """Handles for Figure 9's instances over the I/K/C/W class graph."""

    i1: object
    k1: object
    k2: object
    c1: object
    c2: object
    w1: object
    w2: object


def build_figure9(db):
    """Build the Figure 9 schema and instances.

    Class I --exclusive--> C --exclusive--> W;  class K --shared--> C.
    i1 roots an exclusive composite (c1, w1); k1 and k2 share c2 (and
    transitively w2).
    """
    if "W" not in db.lattice:
        db.make_class("W")
        db.make_class("C", attributes=[
            AttributeSpec("w", domain="W", composite=True, exclusive=True,
                          dependent=True),
        ])
        db.make_class("I", attributes=[
            AttributeSpec("c", domain="C", composite=True, exclusive=True,
                          dependent=True),
        ])
        db.make_class("K", attributes=[
            AttributeSpec("cs", domain=SetOf("C"), composite=True,
                          exclusive=False, dependent=False),
        ])
    w1 = db.make("W")
    c1 = db.make("C", values={"w": w1})
    i1 = db.make("I", values={"c": c1})
    w2 = db.make("W")
    c2 = db.make("C", values={"w": w2})
    k1 = db.make("K", values={"cs": [c2]})
    k2 = db.make("K", values={"cs": [c2]})
    return Figure9(i1=i1, k1=k1, k2=k2, c1=c1, c2=c2, w1=w1, w2=w2)
