"""Deterministic discrete-event concurrency simulation (benchmark B9)."""

from .eventsim import ConcurrencySimulator, SimResult, SimTxn, Step

__all__ = ["ConcurrencySimulator", "SimResult", "SimTxn", "Step"]
