"""Discrete-event concurrency simulation.

Benchmark B9 needs reproducible concurrency: real threads would make
conflict rates nondeterministic.  The simulator advances virtual time in
ticks; each simulated transaction is a list of steps, each step an
``(action, target)`` pair that must acquire locks before it executes.
Blocked transactions queue in the lock table; a deadlock check runs after
every blocking request and aborts the youngest participant, which restarts
after a back-off.

Three locking disciplines are pluggable, matching the paper's Section 7
discussion:

* ``"composite"`` — the revised composite-object protocol (one root lock +
  component-class locks);
* ``"instance"`` — per-instance granularity locking;
* ``"class"`` — a single S/X lock on the root's class (the coarse extreme:
  trivially few lock calls, no concurrency between composites).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..locking.deadlock import DeadlockDetector
from ..locking.modes import LockMode
from ..locking.protocol import CompositeLockingProtocol, InstanceLockingBaseline
from ..locking.table import LockTable
from ..txn.transaction import Transaction, TxnState


@dataclass
class Step:
    """One step of a simulated transaction.

    *action* is ``"read_composite"``, ``"update_composite"``,
    ``"read_instance"`` or ``"update_instance"``; *target* is a UID.
    *work* is the number of ticks the step takes once its locks are held.
    """

    action: str
    target: object
    work: int = 1


@dataclass
class SimTxn:
    """A scripted transaction."""

    steps: list
    txn: Transaction = field(default_factory=Transaction)
    position: int = 0
    remaining_work: int = 0
    locks_held_for: int = -1  # step index whose locks are already held
    finished_at: int = -1
    blocked: bool = False
    #: Ticks to sleep before resuming (deadlock-restart back-off).
    sleep_ticks: int = 0

    @property
    def done(self):
        return self.position >= len(self.steps)


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run."""

    discipline: str
    ticks: int = 0
    committed: int = 0
    deadlock_aborts: int = 0
    blocked_ticks: int = 0
    lock_requests: int = 0
    lock_blocks: int = 0

    @property
    def throughput(self):
        """Committed transactions per tick."""
        return self.committed / self.ticks if self.ticks else 0.0

    def row(self):
        return {
            "discipline": self.discipline,
            "ticks": self.ticks,
            "committed": self.committed,
            "throughput": round(self.throughput, 4),
            "blocked_ticks": self.blocked_ticks,
            "deadlock_aborts": self.deadlock_aborts,
            "lock_requests": self.lock_requests,
            "lock_blocks": self.lock_blocks,
        }


class _ClassLockDiscipline:
    """Coarse baseline: one S/X lock on the root's class object."""

    def __init__(self, database, table):
        self._db = database
        self.table = table

    def plan(self, uid, intent):
        instance = self._db.resolve(uid)
        mode = LockMode.S if intent == "read" else LockMode.X
        return [(("class", instance.class_name), mode)]


class _CompositeDiscipline:
    def __init__(self, database, table):
        self._protocol = CompositeLockingProtocol(database, table)
        self._db = database
        self.table = table

    def plan(self, uid, intent):
        instance = self._db.resolve(uid)
        if instance.reverse_references:
            # A component accessed directly.
            return list(self._protocol.plan_instance(uid, intent))
        return list(self._protocol.plan_composite(uid, intent))


class _InstanceDiscipline:
    def __init__(self, database, table):
        self._baseline = InstanceLockingBaseline(database, table)
        self._protocol = CompositeLockingProtocol(database, table)
        self._db = database
        self.table = table

    def plan(self, uid, intent):
        instance = self._db.resolve(uid)
        if instance.reverse_references:
            return list(self._protocol.plan_instance(uid, intent))
        return list(self._baseline.plan_composite(uid, intent))


_DISCIPLINES = {
    "composite": _CompositeDiscipline,
    "instance": _InstanceDiscipline,
    "class": _ClassLockDiscipline,
}


class ConcurrencySimulator:
    """Runs a set of scripted transactions under one locking discipline."""

    def __init__(self, database, discipline="composite"):
        if discipline not in _DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {sorted(_DISCIPLINES)}, "
                f"got {discipline!r}"
            )
        self._db = database
        self.table = LockTable()
        self._discipline = _DISCIPLINES[discipline](database, self.table)
        self._detector = DeadlockDetector(self.table)
        self.discipline_name = discipline

    def run(self, scripts, max_ticks=100_000):
        """Execute the scripted transactions to completion.

        *scripts* is a list of step lists.  Returns a :class:`SimResult`.
        """
        txns = [SimTxn(steps=list(steps)) for steps in scripts]
        result = SimResult(discipline=self.discipline_name)
        tick = 0
        while any(not t.done for t in txns):
            tick += 1
            if tick > max_ticks:
                raise RuntimeError(
                    f"simulation exceeded {max_ticks} ticks; livelock?"
                )
            for sim in txns:
                if sim.done:
                    continue
                self._advance(sim, txns, result)
                if sim.blocked:
                    result.blocked_ticks += 1
            # Promote any waiters unblocked by completed transactions.
        result.ticks = tick
        result.lock_requests = self.table.stats.requests
        result.lock_blocks = self.table.stats.blocks
        return result

    # -- internals ----------------------------------------------------------

    def _advance(self, sim, txns, result):
        if sim.sleep_ticks > 0:
            sim.sleep_ticks -= 1
            return
        step = sim.steps[sim.position]
        if sim.locks_held_for != sim.position:
            if not self._try_lock(sim, step, txns, result):
                return
            sim.locks_held_for = sim.position
            sim.remaining_work = step.work
        sim.blocked = False
        sim.remaining_work -= 1
        if sim.remaining_work <= 0:
            sim.position += 1
            if sim.done:
                sim.txn.state = TxnState.COMMITTED
                self.table.release_all(sim.txn)
                result.committed += 1

    def _try_lock(self, sim, step, txns, result):
        intent = "read" if step.action.startswith("read") else "write"
        plan = self._discipline.plan(step.target, intent)
        for resource, mode in plan:
            granted = self.table.acquire(sim.txn, resource, mode, wait=True)
            if granted:
                continue
            sim.blocked = True
            victim = self._detector.check(raise_on_deadlock=False)
            if victim is not None:
                self._abort_victim(victim, txns, result)
                if victim is sim.txn:
                    return False
                # Our request may now be grantable; retry next tick.
            return False
        sim.blocked = False
        return True

    def _abort_victim(self, victim, txns, result):
        result.deadlock_aborts += 1
        self.table.release_all(victim)
        for index, sim in enumerate(txns):
            if sim.txn is victim:
                # Restart from the beginning with a fresh (younger) txn,
                # after a deterministic, growing back-off so the survivor
                # can finish instead of re-forming the same cycle.
                restarts = sim.txn.restarts + 1
                sim.txn = Transaction()
                sim.txn.restarts = restarts
                sim.position = 0
                sim.locks_held_for = -1
                sim.remaining_work = 0
                sim.blocked = False
                sim.sleep_ticks = 3 * restarts + index % 5
                break
