"""repro — a reproduction of "Composite Objects Revisited"
(Kim, Bertino, Garza, SIGMOD 1989).

An ORION-style object-oriented database in pure Python, centred on the
paper's extended model of composite objects: five reference types
(weak; dependent/independent x exclusive/shared composite), topology
rules, a recursive Deletion Rule, schema evolution over composite
attributes, versions of composite objects, composite objects as a unit of
authorization, and composite-object locking.

Quickstart::

    from repro import Database, AttributeSpec, SetOf

    db = Database()
    db.make_class("AutoBody")
    db.make_class("Vehicle", attributes=[
        AttributeSpec("Body", domain="AutoBody",
                      composite=True, exclusive=True, dependent=False),
    ])
    body = db.make("AutoBody")
    vehicle = db.make("Vehicle", values={"Body": body})
    assert db.parents_of(body) == [vehicle]
"""

from .core import (
    Database,
    DeletionReport,
    Instance,
    LegacyDatabase,
    ReferenceKind,
    ReverseReference,
    UID,
)
from .errors import (
    AccessDenied,
    AuthorizationConflict,
    AuthorizationError,
    ConcurrencyError,
    DeadlockError,
    DomainError,
    LegacyModelError,
    LockConflictError,
    NotVersionableError,
    ReproError,
    SchemaEvolutionError,
    StateDependentChangeRejected,
    TopologyError,
    UnknownObjectError,
    VersionError,
)
from .schema import AttributeSpec, SetOf

__version__ = "1.0.0"


def __getattr__(name):
    """Lazily exposed convenience exports.

    The subsystem managers live in their packages; importing them eagerly
    here would drag every subsystem in on ``import repro``.  They resolve
    on first attribute access instead::

        from repro import VersionManager, AuthorizationEngine, Interpreter
    """
    lazy = {
        "AsyncClient": ("repro.server", "AsyncClient"),
        "AuthorizationEngine": ("repro.authorization", "AuthorizationEngine"),
        "ChangeNotifier": ("repro.versions", "ChangeNotifier"),
        "CheckoutManager": ("repro.txn", "CheckoutManager"),
        "Client": ("repro.server", "Client"),
        "DurableDatabase": ("repro.storage.durable", "DurableDatabase"),
        "Interpreter": ("repro.query", "Interpreter"),
        "ReproServer": ("repro.server", "ReproServer"),
        "ServerThread": ("repro.server", "ServerThread"),
        "RoleAuthorizationEngine": ("repro.authorization.roles",
                                    "RoleAuthorizationEngine"),
        "SchemaEvolutionManager": ("repro.schema.evolution",
                                   "SchemaEvolutionManager"),
        "TransactionManager": ("repro.txn", "TransactionManager"),
        "VersionManager": ("repro.versions", "VersionManager"),
        "copy_composite": ("repro.core.compose", "copy_composite"),
        "composites_equal": ("repro.core.compose", "composites_equal"),
    }
    if name in lazy:
        import importlib

        module_name, attribute = lazy[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AccessDenied",
    "AttributeSpec",
    "AuthorizationConflict",
    "AuthorizationError",
    "ConcurrencyError",
    "Database",
    "DeadlockError",
    "DeletionReport",
    "DomainError",
    "Instance",
    "LegacyDatabase",
    "LegacyModelError",
    "LockConflictError",
    "NotVersionableError",
    "ReferenceKind",
    "ReproError",
    "ReverseReference",
    "SchemaEvolutionError",
    "SetOf",
    "StateDependentChangeRejected",
    "TopologyError",
    "UID",
    "UnknownObjectError",
    "VersionError",
    "__version__",
]
