"""Slotted pages.

A :class:`Page` holds variable-length records in numbered slots, with free
space accounting.  Pages are the unit of buffering and of I/O counting —
the clustering experiment (B6) measures how many distinct pages a
composite-object traversal touches.
"""

from __future__ import annotations

from ..errors import PageFullError

#: Default page capacity in bytes.  4 KiB mirrors classic disk pages; small
#: enough that clustering effects are visible with modest workloads.
DEFAULT_PAGE_SIZE = 4096

#: Per-record slot overhead (slot-table entry: offset + length).
SLOT_OVERHEAD = 8


class Page:
    """One slotted page.

    Records are kept as a slot-number -> bytes map rather than a packed
    byte array; free space is accounted as if the page were packed, which
    is what the placement decisions need, while avoiding the irrelevant
    complexity of on-page compaction.
    """

    __slots__ = ("page_id", "capacity", "segment", "_records", "_used", "_next_slot")

    def __init__(self, page_id, segment, capacity=DEFAULT_PAGE_SIZE):
        self.page_id = page_id
        self.segment = segment
        self.capacity = capacity
        self._records = {}
        self._used = 0
        self._next_slot = 0

    # -- space accounting ---------------------------------------------------

    @property
    def free_space(self):
        """Bytes available for a new record (including its slot entry)."""
        return self.capacity - self._used

    def fits(self, size):
        """True when a record of *size* bytes fits on this page."""
        return size + SLOT_OVERHEAD <= self.free_space

    @property
    def record_count(self):
        return len(self._records)

    # -- record operations ----------------------------------------------------

    def insert(self, data):
        """Insert *data*, returning the slot number.

        Raises :class:`PageFullError` when the record does not fit.
        """
        if not self.fits(len(data)):
            raise PageFullError(
                f"page {self.page_id}: record of {len(data)} bytes does not "
                f"fit in {self.free_space} free bytes"
            )
        slot = self._next_slot
        self._next_slot += 1
        self._records[slot] = data
        self._used += len(data) + SLOT_OVERHEAD
        return slot

    def read(self, slot):
        """Return the record in *slot* (KeyError when absent)."""
        return self._records[slot]

    def update(self, slot, data):
        """Replace the record in *slot* with *data*.

        Raises :class:`PageFullError` when the new record would overflow
        the page; the caller then relocates the record to another page.
        """
        old = self._records[slot]
        grow = len(data) - len(old)
        if grow > 0 and grow > self.capacity - self._used:
            raise PageFullError(
                f"page {self.page_id}: updated record grows by {grow} bytes "
                f"but only {self.capacity - self._used} are free"
            )
        self._records[slot] = data
        self._used += grow

    def delete(self, slot):
        """Remove the record in *slot*, reclaiming its space."""
        data = self._records.pop(slot)
        self._used -= len(data) + SLOT_OVERHEAD

    def slots(self):
        """Occupied slot numbers (sorted)."""
        return sorted(self._records)

    def __repr__(self):
        return (
            f"<Page {self.page_id} seg={self.segment} records={len(self._records)} "
            f"free={self.free_space}>"
        )
