"""Clustering policy.

Paper 2.3: "the parent keyword in the make statement is used also for
clustering purposes. If several objects are specified, then the newly
created object is clustered with the first specified parent, that is, with
ParentObject.1. (However, clustering is only performed if the classes of
the two objects are stored in the same physical segment.)"

:class:`ClusteringPolicy` turns the parent list of a ``make`` call into a
placement decision (segment name + near-UID hint) for the object store.
"""

from __future__ import annotations


class ClusteringPolicy:
    """Decides where a new object is placed.

    ``mode`` selects the policy, so the clustering benchmark can ablate:

    * ``"parent"`` — the paper's policy (cluster with the first parent when
      segments match);
    * ``"none"`` — ignore hints entirely (scatter by class segment only).
    """

    def __init__(self, lattice, mode="parent"):
        if mode not in ("parent", "none"):
            raise ValueError(f"unknown clustering mode {mode!r}")
        self._lattice = lattice
        self.mode = mode
        #: Optional UID -> class-name resolver; installed by the database
        #: so renamed classes route correctly (UIDs embed the birth name).
        self.class_resolver = None

    def segment_for_class(self, class_name):
        """Name of the physical segment for instances of *class_name*."""
        return self._lattice.get(class_name).segment

    def placement(self, class_name, parent_uids=()):
        """Return ``(segment_name, near_uid)`` for a new instance.

        *parent_uids* is the ordered parent list of the ``make`` call; only
        the first parent matters, and only when its class shares the new
        object's segment.
        """
        segment = self.segment_for_class(class_name)
        if self.mode != "parent" or not parent_uids:
            return segment, None
        first = parent_uids[0]
        parent_class = (
            self.class_resolver(first) if self.class_resolver
            else first.class_name
        )
        parent_segment = self.segment_for_class(parent_class)
        if parent_segment == segment:
            return segment, first
        return segment, None


def shared_segment(lattice, class_names, segment_name):
    """Assign one physical segment to several classes.

    Clustering across classes (the interesting case for composite objects:
    a Vehicle next to its AutoBody) requires the classes to share a
    segment; this helper rewrites their definitions accordingly.
    """
    for name in class_names:
        lattice.get(name).segment = segment_name
    return segment_name
