"""Durability: checkpoint snapshots plus a redo journal.

ORION is a persistent database; this module supplies the disk story for
the reproduction with a classic two-file design:

* **snapshot** (``checkpoint.db``) — the schema (JSON: class definitions,
  IS-A lattice, versionable flags, segments), the UID allocator position,
  and an after-image of every live instance (the binary record format of
  :mod:`repro.storage.serializer`);
* **journal** (``journal.log``) — an append-only redo log of instance
  after-images and deletion tombstones written on every mutation.

Opening a directory loads the latest snapshot and replays the journal, so
any prefix of the journal yields a consistent database — mutations are
whole-instance images, and reverse composite references live inside the
instances, so replay needs no interpretation of operations.

Schema changes (DDL) force a checkpoint; the journal itself only carries
instance-level changes.  This is a deliberate simplification over ARIES —
there are no partial page writes to repair because images are logical.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path

from ..errors import StorageError
from .serializer import decode_instance, encode_instance

_U32 = struct.Struct(">I")
_IMAGE = b"I"
_TOMBSTONE = b"D"

SNAPSHOT_NAME = "checkpoint.db"
JOURNAL_NAME = "journal.log"
_MAGIC = b"REPRO-SNAP-1"


def _encode_uid(uid):
    return {"number": uid.number, "class": uid.class_name}


def _schema_payload(database):
    """JSON-able rendering of the class lattice."""
    classes = []
    for classdef in database.lattice:
        if classdef.name == "object":
            continue
        classes.append({
            "name": classdef.name,
            "superclasses": list(classdef.superclasses),
            "versionable": classdef.versionable,
            "segment": classdef.segment,
            "document": classdef.document,
            "attributes": [
                {
                    "name": spec.name,
                    "domain": (
                        {"set_of": spec.domain_class} if spec.is_set
                        else spec.domain_class
                    ),
                    "composite": spec.composite,
                    "exclusive": spec.exclusive,
                    "dependent": spec.dependent,
                    "init": spec.init,
                    "defined_in": spec.defined_in,
                }
                for spec in classdef.local.values()
            ],
        })
    return classes


def _restore_schema(database, classes):
    from ..schema.attribute import AttributeSpec, SetOf

    pending = list(classes)
    defined = {"object"}
    guard = 0
    while pending:
        guard += 1
        if guard > len(classes) ** 2 + 10:
            raise StorageError("cyclic or dangling superclasses in snapshot")
        entry = pending.pop(0)
        supers = entry["superclasses"] or ["object"]
        if not all(sup in defined for sup in supers):
            pending.append(entry)
            continue
        specs = []
        for attr in entry["attributes"]:
            domain = attr["domain"]
            if isinstance(domain, dict):
                domain = SetOf(domain["set_of"])
            specs.append(AttributeSpec(
                name=attr["name"],
                domain=domain,
                composite=attr["composite"],
                exclusive=attr["exclusive"],
                dependent=attr["dependent"],
                init=attr["init"],
                defined_in=attr["defined_in"],
            ))
        database.make_class(
            entry["name"],
            superclasses=[s for s in entry["superclasses"]],
            attributes=specs,
            versionable=entry["versionable"],
            segment=entry["segment"],
            document=entry["document"],
        )
        defined.add(entry["name"])


class Journal:
    """Checkpoint/journal persistence for one database."""

    def __init__(self, database, directory):
        self._db = database
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._journal_file = None
        #: Journal records written since the last checkpoint.
        self.records_since_checkpoint = 0
        #: Last journaled image per UID (dedup: link bookkeeping can
        #: persist the same state several times in one operation).
        self._last_image = {}
        database.on_update.append(self._on_update)
        database.on_persist.append(self._on_persist)
        self._open_journal()

    # -- paths --------------------------------------------------------------

    @property
    def snapshot_path(self):
        return self.directory / SNAPSHOT_NAME

    @property
    def journal_path(self):
        return self.directory / JOURNAL_NAME

    def _open_journal(self):
        self._journal_file = open(self.journal_path, "ab")

    # -- journaling ----------------------------------------------------------

    def _on_update(self, instance, _attribute):
        if instance.deleted:
            self._last_image.pop(instance.uid, None)
            self._append(_TOMBSTONE, encode_instance(instance))
        else:
            self._on_persist(instance)

    def _on_persist(self, instance):
        image = encode_instance(instance)
        if self._last_image.get(instance.uid) == image:
            return
        self._last_image[instance.uid] = image
        self._append(_IMAGE, image)

    def _append(self, kind, payload):
        self._journal_file.write(kind)
        self._journal_file.write(_U32.pack(len(payload)))
        self._journal_file.write(payload)
        self._journal_file.flush()
        os.fsync(self._journal_file.fileno())
        self.records_since_checkpoint += 1

    # -- checkpointing --------------------------------------------------------

    def checkpoint(self):
        """Write a full snapshot and truncate the journal."""
        database = self._db
        temp_path = self.snapshot_path.with_suffix(".tmp")
        with open(temp_path, "wb") as handle:
            handle.write(_MAGIC)
            schema = json.dumps({
                "classes": _schema_payload(database),
                "next_uid": database.allocator.peek(),
            }).encode("utf-8")
            handle.write(_U32.pack(len(schema)))
            handle.write(schema)
            instances = list(database.live_instances())
            handle.write(_U32.pack(len(instances)))
            for instance in instances:
                image = encode_instance(instance)
                handle.write(_U32.pack(len(image)))
                handle.write(image)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.snapshot_path)
        self._journal_file.close()
        self.journal_path.unlink(missing_ok=True)
        self._open_journal()
        self._last_image.clear()
        self.records_since_checkpoint = 0

    def close(self):
        if self._journal_file and not self._journal_file.closed:
            self._journal_file.close()

    # -- recovery ----------------------------------------------------------------

    @staticmethod
    def recover_into(database, directory):
        """Load snapshot + journal from *directory* into a fresh database.

        Returns (instances_restored, journal_records_replayed).  A
        truncated final journal record (torn write) is discarded, as a
        real redo log would after a crash.
        """
        directory = Path(directory)
        snapshot = directory / SNAPSHOT_NAME
        journal = directory / JOURNAL_NAME
        restored = replayed = 0
        max_uid = 0
        if snapshot.exists():
            with open(snapshot, "rb") as handle:
                if handle.read(len(_MAGIC)) != _MAGIC:
                    raise StorageError(f"{snapshot} is not a snapshot file")
                schema_len = _U32.unpack(handle.read(4))[0]
                meta = json.loads(handle.read(schema_len).decode("utf-8"))
                _restore_schema(database, meta["classes"])
                count = _U32.unpack(handle.read(4))[0]
                for _ in range(count):
                    size = _U32.unpack(handle.read(4))[0]
                    instance = decode_instance(handle.read(size))
                    database._objects[instance.uid] = instance
                    max_uid = max(max_uid, instance.uid.number)
                    restored += 1
                max_uid = max(max_uid, meta.get("next_uid", 1) - 1)
        if journal.exists():
            data = journal.read_bytes()
            position = 0
            while position + 5 <= len(data):
                kind = data[position:position + 1]
                size = _U32.unpack(data[position + 1:position + 5])[0]
                end = position + 5 + size
                if end > len(data):
                    break  # torn final record: discard
                payload = data[position + 5:end]
                instance = decode_instance(payload)
                if kind == _TOMBSTONE:
                    database._objects.pop(instance.uid, None)
                else:
                    instance.deleted = False
                    database._objects[instance.uid] = instance
                    max_uid = max(max_uid, instance.uid.number)
                replayed += 1
                position = end
        from ..core.identity import UIDAllocator

        database.allocator = UIDAllocator(start=max_uid + 1)
        database.rebuild_extents()
        return restored, replayed
