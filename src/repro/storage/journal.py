"""Durability: checkpoint snapshots plus a redo journal with group commit.

ORION is a persistent database; this module supplies the disk story for
the reproduction with a classic two-file design:

* **snapshot** (``checkpoint.db``) — the schema (JSON: class definitions,
  IS-A lattice, versionable flags, segments), the UID allocator position,
  and an after-image of every live instance (the binary record format of
  :mod:`repro.storage.serializer`);
* **journal** (``journal.log``) — an append-only redo log of instance
  after-images and deletion tombstones, grouped into *batches* terminated
  by commit markers.

Opening a directory loads the latest snapshot and replays the journal.
Replay applies records batch by batch: records are buffered until their
commit marker and an unterminated tail (a torn final batch) is discarded,
exactly as a torn record was discarded before batching existed.  Because
every batch boundary is an operation or transaction boundary, any journal
prefix yields a consistent database.

Sync policies (`how hard the log manager leans on fsync`):

``always``
    Every redo record is flushed as it is produced and the batch of each
    top-level operation is sealed with its own fsync — the seed behavior,
    one fsync per mutating operation.
``commit``
    Redo records are buffered in memory per transaction (per operation
    outside a transaction) and written with a single flush+fsync when the
    transaction commits.  Records of an aborted transaction never reach
    disk at all.
``group``
    Like ``commit`` but the fsync itself is deferred so several commits
    can share one: embedded callers sync every ``group_size`` sealed
    batches (or on :meth:`sync`/:meth:`close`); the asyncio server layers
    a time-window group commit on top (see ``repro.server.server``).
``none``
    Batches are written and flushed but never fsynced while running (the
    OS decides); :meth:`close` still syncs, so only a crash loses data.

Write coalescing: within one batch, only the *final* image of each UID is
written — link bookkeeping that re-images the same instance several times
inside one operation journals once.  Across batches, a digest of the last
journaled image per UID suppresses byte-identical rewrites.

Schema changes (DDL) force a checkpoint; the journal itself only carries
instance-level changes.  This is a deliberate simplification over ARIES —
there are no partial page writes to repair because images are logical.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from contextlib import contextmanager, suppress
from pathlib import Path

from ..errors import StorageError
from ..faults.registry import fire as _fire
from .serializer import decode_instance, encode_instance

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_IMAGE = b"I"
_TOMBSTONE = b"D"
#: A commit marker seals the preceding records as one batch.  Since the
#: MVCC work its payload carries the batch's *commit epoch* (u64
#: ``commit_seq``) — the snapshot token version chains and replicas are
#: stamped with (docs/REPLICATION.md).  Legacy journals with an empty
#: payload still replay (recovery infers sequential epochs).
_COMMIT = b"C"
#: Two-phase-commit markers (docs/SHARDING.md).  ``P`` seals the
#: preceding records as a *prepared* batch — durable but in doubt; its
#: payload names the global transaction (JSON ``{"gtid": ...}``).  ``R``
#: resolves a prepared batch (JSON ``{"gtid": ..., "commit": bool}``):
#: recovery applies the stashed batch on commit, discards it on abort,
#: and surfaces any still-unresolved batch as in-doubt.
_PREPARE = b"P"
_RESOLVE = b"R"

SNAPSHOT_NAME = "checkpoint.db"
JOURNAL_NAME = "journal.log"
_MAGIC = b"REPRO-SNAP-1"
#: The journal file opens with a fixed-size header carrying the
#: checkpoint *epoch* (magic + u32).  The snapshot records the same
#: epoch; recovery replays the journal only when the two agree.  This
#: closes a crash window in :meth:`Journal.checkpoint`: a crash between
#: the snapshot ``os.replace`` and the journal unlink used to leave a
#: *stale* journal next to a *newer* snapshot, and replaying it rolled
#: instances back to pre-checkpoint images.
JOURNAL_MAGIC = b"REPRO-JRNL-1"
JOURNAL_HEADER_SIZE = len(JOURNAL_MAGIC) + 4

#: The sync policies :class:`Journal` understands.
SYNC_POLICIES = ("always", "commit", "group", "none")


def _snapshot_meta(path):
    """The snapshot meta JSON at *path* ({} when no snapshot exists)."""
    path = Path(path)
    if not path.exists():
        return {}
    with open(path, "rb") as handle:
        if handle.read(len(_MAGIC)) != _MAGIC:
            raise StorageError(f"{path} is not a snapshot file")
        schema_len = _U32.unpack(handle.read(4))[0]
        return json.loads(handle.read(schema_len).decode("utf-8"))


def _snapshot_epoch(path):
    """Checkpoint epoch recorded in the snapshot at *path* (0 if none)."""
    return _snapshot_meta(path).get("epoch", 0)


def _journal_body(data, snapshot_epoch):
    """Validate a raw journal byte string against *snapshot_epoch*.

    Returns the record stream (header stripped), or None when the
    journal must not be replayed: a header torn mid-write (no record
    can follow a torn header), or an epoch mismatch (a stale journal
    left behind by a crash mid-checkpoint).  A journal without the
    magic is a legacy headerless stream, replayed only against an
    epoch-0 snapshot.
    """
    if data[:len(JOURNAL_MAGIC)] == JOURNAL_MAGIC:
        if len(data) < JOURNAL_HEADER_SIZE:
            return None  # torn header
        epoch = _U32.unpack(
            data[len(JOURNAL_MAGIC):JOURNAL_HEADER_SIZE]
        )[0]
        if epoch != snapshot_epoch:
            return None  # stale (or future) journal: do not replay
        return data[JOURNAL_HEADER_SIZE:]
    if JOURNAL_MAGIC[:len(data)] == data:
        return None  # torn header shorter than the magic
    return data if snapshot_epoch == 0 else None


def _digest(image):
    """Fixed-size fingerprint of an encoded image (dedup bookkeeping)."""
    return hashlib.blake2b(image, digest_size=16).digest()


def _encode_uid(uid):
    return {"number": uid.number, "class": uid.class_name}


def _schema_payload(database):
    """JSON-able rendering of the class lattice."""
    classes = []
    for classdef in database.lattice:
        if classdef.name == "object":
            continue
        classes.append({
            "name": classdef.name,
            "superclasses": list(classdef.superclasses),
            "versionable": classdef.versionable,
            "segment": classdef.segment,
            "document": classdef.document,
            "attributes": [
                {
                    "name": spec.name,
                    "domain": (
                        {"set_of": spec.domain_class} if spec.is_set
                        else spec.domain_class
                    ),
                    "composite": spec.composite,
                    "exclusive": spec.exclusive,
                    "dependent": spec.dependent,
                    "init": spec.init,
                    "defined_in": spec.defined_in,
                }
                for spec in classdef.local.values()
            ],
        })
    return classes


def _restore_schema(database, classes):
    from ..schema.attribute import AttributeSpec, SetOf

    pending = list(classes)
    defined = {"object"}
    guard = 0
    while pending:
        guard += 1
        if guard > len(classes) ** 2 + 10:
            raise StorageError("cyclic or dangling superclasses in snapshot")
        entry = pending.pop(0)
        supers = entry["superclasses"] or ["object"]
        if not all(sup in defined for sup in supers):
            pending.append(entry)
            continue
        specs = []
        for attr in entry["attributes"]:
            domain = attr["domain"]
            if isinstance(domain, dict):
                domain = SetOf(domain["set_of"])
            specs.append(AttributeSpec(
                name=attr["name"],
                domain=domain,
                composite=attr["composite"],
                exclusive=attr["exclusive"],
                dependent=attr["dependent"],
                init=attr["init"],
                defined_in=attr["defined_in"],
            ))
        database.make_class(
            entry["name"],
            superclasses=[s for s in entry["superclasses"]],
            attributes=specs,
            versionable=entry["versionable"],
            segment=entry["segment"],
            document=entry["document"],
        )
        defined.add(entry["name"])


class _Batch:
    """Buffered redo records of one transaction (or one operation).

    Records are keyed by UID so re-images coalesce: only the final state
    of each instance within the batch is ever written.  ``stale`` marks a
    batch whose earlier records were subsumed by a mid-transaction
    checkpoint — its abort must *write* the compensating records instead
    of dropping them, because the checkpoint persisted uncommitted state.
    """

    __slots__ = ("records", "stale")

    def __init__(self):
        self.records = {}  # uid -> (kind, payload)
        self.stale = False

    def put(self, uid, kind, payload):
        """Buffer a record; returns True when it replaced an earlier one."""
        replaced = uid in self.records
        self.records[uid] = (kind, payload)
        return replaced

    def __len__(self):
        return len(self.records)


class Journal:
    """Checkpoint/journal persistence for one database.

    Parameters
    ----------
    database:
        The :class:`repro.Database` to journal (hooks are registered on
        its ``on_update`` / ``on_persist`` / ``on_op_end`` /
        ``on_txn_commit`` / ``on_txn_abort`` lists).
    directory:
        Store directory (created when missing).
    sync_policy:
        One of :data:`SYNC_POLICIES`; see the module docstring.
    group_size:
        Under the ``group`` policy, fsync after this many sealed batches
        (embedded auto-sync; the server's time window calls :meth:`sync`
        directly).
    """

    def __init__(self, database, directory, sync_policy="always",
                 group_size=8):
        if sync_policy not in SYNC_POLICIES:
            raise StorageError(
                f"unknown sync policy {sync_policy!r}; "
                f"expected one of {', '.join(SYNC_POLICIES)}"
            )
        self._db = database
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_policy = sync_policy
        self.group_size = group_size
        self._journal_file = None
        self.closed = False
        #: Fail-stop flag: set on the first journal IO failure.  Every
        #: later append/sync/checkpoint raises StorageError instead of
        #: silently journaling onto a file in an unknown state.
        self.failed = False
        #: Checkpoint epoch (see :data:`JOURNAL_MAGIC`).
        meta = _snapshot_meta(self.directory / SNAPSHOT_NAME)
        self.epoch = meta.get("epoch", 0)
        #: Commit epoch: monotonic count of sealed batches, persisted in
        #: commit-marker payloads and across checkpoints in the snapshot
        #: meta.  This is the MVCC snapshot token (docs/REPLICATION.md).
        #: When the served database already recovered to a later epoch
        #: (recover_into replayed sealed batches), adopt its position.
        self.commit_seq = max(
            meta.get("commit_seq", 0),
            getattr(database, "commit_epoch", 0),
        )
        database.commit_epoch = self.commit_seq
        #: Journal records written since the last checkpoint.
        self.records_since_checkpoint = 0
        #: Digest of the last journaled/buffered image per UID (dedup:
        #: link bookkeeping can persist the same state several times).
        self._last_image = {}
        #: Buffered batches: one per open transaction plus the implicit
        #: auto batch of the operation outside any transaction.
        self._txn_batches = {}
        self._auto_batch = _Batch()
        #: Records written to the stream since the last commit marker
        #: (``always`` policy, which does not buffer).
        self._unsealed_records = 0
        #: True when flushed bytes await an fsync (group/none policies).
        self._dirty = False
        self._unsynced_seals = 0
        #: Prepared-but-undecided global transactions (gtid -> True):
        #: live prepares plus in-doubt batches adopted from recovery.
        #: Checkpointing refuses while any exist — a snapshot would
        #: capture (or lose) state whose outcome is not yet known.
        self._prepared = {}
        # -- durability counters (the stats op and B12c report these) --
        self.records_written = 0
        self.records_coalesced = 0
        self.records_skipped = 0
        self.records_dropped = 0
        self.batches_sealed = 0
        self.batches_dropped = 0
        self.fsyncs = 0
        self._register_hooks(database)
        self._open_journal()

    def _register_hooks(self, database):
        self._hooks = (
            (database.on_update, self._on_update),
            (database.on_persist, self._on_persist),
            (database.on_op_end, self._on_op_end),
            (database.on_txn_commit, self._on_txn_commit),
            (database.on_txn_abort, self._on_txn_abort),
        )
        for hook_list, callback in self._hooks:
            hook_list.append(callback)

    def detach(self):
        """Deregister every database hook (mutations after this are no
        longer journaled — the close path uses this so a mutation on a
        closed database degrades to in-memory instead of crashing)."""
        for hook_list, callback in self._hooks:
            if callback in hook_list:
                hook_list.remove(callback)

    # -- paths --------------------------------------------------------------

    @property
    def snapshot_path(self):
        return self.directory / SNAPSHOT_NAME

    @property
    def journal_path(self):
        return self.directory / JOURNAL_NAME

    def _open_journal(self):
        self._journal_file = open(self.journal_path, "ab")
        if self._journal_file.tell() == 0:
            self._journal_file.write(JOURNAL_MAGIC)
            self._journal_file.write(_U32.pack(self.epoch))
            self._journal_file.flush()

    def _ensure_open(self, what):
        if self.closed:
            raise StorageError(
                f"journal at {self.directory} is closed; cannot {what}"
            )
        if self.failed:
            raise StorageError(
                f"journal at {self.directory} failed earlier and is "
                f"fail-stop; cannot {what}"
            )

    @contextmanager
    def _io_guard(self, what):
        """Surface journal IO failures as fail-stop :class:`StorageError`.

        Any :class:`OSError` (a real disk error or an injected fault —
        see :mod:`repro.faults`) marks the journal ``failed`` so later
        writes refuse instead of appending after a hole, then re-raises
        wrapped.  Errors never pass silently out of a journal write
        path.
        """
        try:
            yield
        except OSError as error:
            self.failed = True
            raise StorageError(
                f"journal IO failed while trying to {what} "
                f"at {self.directory}: {error}"
            ) from error

    # -- journaling ----------------------------------------------------------

    @property
    def batching(self):
        """True when records buffer in commit-scoped batches."""
        return self.sync_policy != "always"

    @property
    def needs_sync(self):
        """True when flushed journal bytes still await an fsync."""
        return self._dirty

    def _on_update(self, instance, _attribute):
        if instance.deleted:
            self._last_image.pop(instance.uid, None)
            self._add(_TOMBSTONE, encode_instance(instance), instance.uid)
        else:
            self._on_persist(instance)

    def _on_persist(self, instance):
        image = encode_instance(instance)
        digest = _digest(image)
        if self._last_image.get(instance.uid) == digest:
            self.records_skipped += 1
            return
        self._last_image[instance.uid] = digest
        self._add(_IMAGE, image, instance.uid)

    def _add(self, kind, payload, uid):
        """Route one redo record: buffer it (batching policies) or write
        it through (``always``); seal immediately when no operation or
        transaction scope is open to seal it later."""
        self._ensure_open("append a record")
        bare = self._db.current_txn is None and self._db._op_depth == 0
        if not self.batching:
            with self._io_guard("append a record"):
                self._write_record(kind, payload)
                self._unsealed_records += 1
                if bare:
                    self._seal_stream()
            return
        batch = self._current_batch()
        if batch.put(uid, kind, payload):
            self.records_coalesced += 1
        if bare and batch is self._auto_batch:
            with self._io_guard("seal an operation batch"):
                self._seal_batch(batch)

    def _current_batch(self):
        txn = self._db.current_txn
        if txn is None:
            return self._auto_batch
        batch = self._txn_batches.get(txn)
        if batch is None:
            batch = self._txn_batches[txn] = _Batch()
        return batch

    def _write_record(self, kind, payload):
        _fire("journal.write_record", journal=self, kind=kind,
              payload=payload, file=self._journal_file)
        self._journal_file.write(kind)
        self._journal_file.write(_U32.pack(len(payload)))
        self._journal_file.write(payload)
        self.records_written += 1
        self.records_since_checkpoint += 1

    def _seal_batch(self, batch):
        """Write a buffered batch and its commit marker; fsync per policy."""
        if not batch.records:
            return
        for kind, payload in batch.records.values():
            self._write_record(kind, payload)
        batch.records.clear()
        batch.stale = False
        self._finish_seal()

    def _seal_stream(self):
        """Terminate the written-through records of one operation
        (``always`` policy) with a commit marker."""
        if not self._unsealed_records:
            return
        self._unsealed_records = 0
        self._finish_seal()

    def _finish_seal(self):
        self.commit_seq += 1
        self._db.commit_epoch = self.commit_seq
        self._journal_file.write(_COMMIT)
        self._journal_file.write(_U32.pack(_U64.size))
        self._journal_file.write(_U64.pack(self.commit_seq))
        self._journal_file.flush()
        self.batches_sealed += 1
        if self.sync_policy in ("always", "commit"):
            self._fsync()
        elif self.sync_policy == "group":
            self._dirty = True
            self._unsynced_seals += 1
            if self.group_size and self._unsynced_seals >= self.group_size:
                self.sync()
        else:  # none: flushed, never fsynced while running
            self._dirty = True

    def _fsync(self):
        # A "skip" directive is the lying-fsync fault: counters advance
        # exactly as on success, but nothing actually reached the disk
        # — the crash simulator's durable watermark ("journal.fsynced",
        # observer-only) does not move.
        if _fire("journal.fsync", journal=self) != "skip":
            os.fsync(self._journal_file.fileno())
            _fire("journal.fsynced", journal=self)
        self.fsyncs += 1
        self._dirty = False
        self._unsynced_seals = 0

    def sync(self):
        """Flush and fsync the journal now (the group-commit flush)."""
        self._ensure_open("sync")
        with self._io_guard("sync"):
            self._journal_file.flush()
            self._fsync()

    # -- two-phase commit ----------------------------------------------------

    def prepare_txn(self, txn, gtid):
        """Seal *txn*'s buffered batch as a *prepared* batch (2PC phase 1).

        Writes the batch records followed by a ``P`` marker naming
        *gtid*, then fsyncs unconditionally — a prepare is a promise to
        commit on demand, so it is durable under every batching policy.
        The transaction stays open (locks held, undo log intact) until
        :meth:`resolve_prepared` delivers the coordinator's decision.

        Returns True when a prepared batch was written, False when the
        transaction buffered nothing here (a read-only participant: the
        caller should vote "ro" and needs no decision record).
        """
        self._ensure_open("prepare a transaction")
        if not self.batching:
            raise StorageError(
                "2PC prepare requires a batching sync policy "
                "(commit/group/none); 'always' writes through per-op "
                "and cannot hold a batch back for the decision"
            )
        batch = self._txn_batches.get(txn)
        if batch is not None and batch.stale:
            # A checkpoint ran mid-transaction and persisted this
            # transaction's uncommitted state; the snapshot carries no
            # in-doubt marker, so a prepared outcome could not be
            # resolved at recovery.  Refuse — the coordinator aborts.
            raise StorageError(
                "cannot prepare a transaction that spans a checkpoint"
            )
        if batch is None or not batch.records:
            self._txn_batches.pop(txn, None)
            return False
        del self._txn_batches[txn]
        payload = json.dumps({"gtid": gtid}).encode("utf-8")
        with self._io_guard("prepare a transaction"):
            for kind, record in batch.records.values():
                self._write_record(kind, record)
            batch.records.clear()
            self._write_record(_PREPARE, payload)
            self._journal_file.flush()
            self._fsync()
        self.batches_sealed += 1
        self._prepared[gtid] = True
        return True

    def resolve_prepared(self, gtid, commit):
        """Journal the coordinator's decision for *gtid* (2PC phase 2).

        Appends an ``R`` record; a commit decision fsyncs so the shard's
        own log proves the outcome without the coordinator log.  An
        abort decision merely flushes — losing it re-opens the in-doubt
        window, and presumed-abort resolution closes it again.
        """
        self._ensure_open("resolve a prepared transaction")
        fields = {"gtid": gtid, "commit": bool(commit)}
        if commit:
            # A commit decision makes the prepared batch visible: it
            # gets the next commit epoch, carried in the R payload so
            # recovery and replicas stamp the same token.
            self.commit_seq += 1
            self._db.commit_epoch = self.commit_seq
            fields["commit_seq"] = self.commit_seq
        payload = json.dumps(fields).encode("utf-8")
        with self._io_guard("resolve a prepared transaction"):
            self._write_record(_RESOLVE, payload)
            self._journal_file.flush()
            if commit or self.sync_policy in ("always", "commit"):
                self._fsync()
            else:
                self._dirty = True
        self._prepared.pop(gtid, None)

    def adopt_in_doubt(self, gtids):
        """Register recovered in-doubt transactions (checkpoint guard).

        Called by the shard worker after :meth:`recover_into` surfaced
        unresolved prepared batches: until each is resolved through
        :meth:`resolve_prepared`, checkpointing must refuse.
        """
        for gtid in gtids:
            self._prepared[gtid] = True

    @property
    def prepared_gtids(self):
        """Gtids of prepared-but-undecided transactions, sorted."""
        return sorted(self._prepared)

    # -- transaction hooks ---------------------------------------------------

    def _on_op_end(self):
        if self.closed:
            return
        if self.failed:
            # This hook runs in the operation's ``finally`` — the write
            # that failed already surfaced StorageError to the caller,
            # and recovery discards the unterminated batch, which is
            # exactly the failed operation's abort semantics.  Drop the
            # bookkeeping instead of raising again mid-unwind.
            self._unsealed_records = 0
            self._drop_batch(self._auto_batch)
            return
        if not self.batching:
            with self._io_guard("seal an operation"):
                self._seal_stream()
        elif self._db.current_txn is None:
            with self._io_guard("seal an operation batch"):
                self._seal_batch(self._auto_batch)

    def _on_txn_commit(self, txn):
        if self.closed:
            return
        batch = self._txn_batches.pop(txn, None)
        if self.failed:
            if batch is not None and batch.records:
                raise StorageError(
                    f"journal at {self.directory} failed earlier; "
                    f"{len(batch.records)} buffered record(s) of the "
                    f"committing transaction cannot be made durable"
                )
            return
        if batch is not None:
            with self._io_guard("seal a transaction batch"):
                self._seal_batch(batch)

    def _on_txn_abort(self, txn):
        """Drop the aborted transaction's batched records.

        Nothing of the transaction reached disk, so discarding the batch
        leaves the journal exactly at the pre-transaction state — no
        compensating records needed.  A ``stale`` batch (a checkpoint ran
        mid-transaction and persisted uncommitted state) must instead
        *write* its records: they are the compensating images produced by
        the undo pass.
        """
        if self.closed:
            return
        batch = self._txn_batches.pop(txn, None)
        if batch is None:
            return
        if batch.stale:
            # Compensating records MUST reach the journal (a checkpoint
            # persisted the uncommitted state they undo) — on a failed
            # journal that is impossible, and staying silent would leave
            # dirty state durable.  Raise instead.
            if self.failed:
                if batch.records:
                    raise StorageError(
                        f"journal at {self.directory} failed earlier; "
                        f"{len(batch.records)} compensating record(s) of "
                        f"the aborting transaction cannot be journaled"
                    )
                return
            with self._io_guard("seal an abort's compensating batch"):
                self._seal_batch(batch)
            return
        # Dropping is correct even after a failure: nothing of the
        # batch reached disk, and an abort discards it by design.
        self._drop_batch(batch)

    def _drop_batch(self, batch):
        """Discard a buffered batch and its dedup bookkeeping."""
        if not batch.records:
            return
        self.records_dropped += len(batch.records)
        self.batches_dropped += 1
        for uid in batch.records:
            self._last_image.pop(uid, None)
        batch.records.clear()

    def image_digest(self, uid):
        """The 16-byte digest of *uid*'s last journaled image, or None.

        This is the dedup fingerprint ``_on_persist`` maintains — the
        server's image cache keys encoded wire snapshots on it, so the
        entry is exactly as fresh as the journal's view of the object
        (updated on every recorded change, dropped on abort/tombstone,
        cleared by checkpoints)."""
        return self._last_image.get(uid)

    # -- stats ---------------------------------------------------------------

    def stats_row(self):
        """Durability counters (the server's ``stats`` op and B12c)."""
        return {
            "policy": self.sync_policy,
            "records_written": self.records_written,
            "records_coalesced": self.records_coalesced,
            "records_skipped": self.records_skipped,
            "records_dropped": self.records_dropped,
            "batches_sealed": self.batches_sealed,
            "batches_dropped": self.batches_dropped,
            "fsyncs": self.fsyncs,
            "records_per_fsync": (
                self.records_written / self.fsyncs if self.fsyncs else None
            ),
            "pending_sync": self._dirty,
            "failed": self.failed,
            "epoch": self.epoch,
            "commit_seq": self.commit_seq,
            "in_doubt": len(self._prepared),
        }

    # -- checkpointing --------------------------------------------------------

    def checkpoint(self):
        """Write a full snapshot and truncate the journal.

        The snapshot captures the *current* in-memory state — including
        any buffered (not yet sealed) batch records, which are therefore
        cleared.  Open transactions' batches are marked stale so their
        abort writes compensating records instead of dropping them.
        """
        self._ensure_open("checkpoint")
        if self._prepared:
            raise StorageError(
                "cannot checkpoint with prepared (in-doubt) "
                f"transaction(s) pending: {', '.join(sorted(self._prepared))}"
            )
        _fire("journal.checkpoint", journal=self)
        database = self._db
        temp_path = self.snapshot_path.with_suffix(".tmp")
        with self._io_guard("checkpoint"):
            with open(temp_path, "wb") as handle:
                handle.write(_MAGIC)
                schema = json.dumps({
                    "classes": _schema_payload(database),
                    "next_uid": database.allocator.peek(),
                    "epoch": self.epoch + 1,
                    "commit_seq": self.commit_seq,
                }).encode("utf-8")
                handle.write(_U32.pack(len(schema)))
                handle.write(schema)
                instances = list(database.live_instances())
                handle.write(_U32.pack(len(instances)))
                for instance in instances:
                    image = encode_instance(instance)
                    handle.write(_U32.pack(len(image)))
                    handle.write(image)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.snapshot_path)
            self._journal_file.close()
            self.journal_path.unlink(missing_ok=True)
            # The new snapshot carries epoch+1, so from here on only a
            # journal stamped with the same epoch is replayed over it —
            # a crash before the unlink leaves a stale journal behind,
            # and recovery now ignores it instead of replaying
            # pre-checkpoint images over the fresher snapshot.
            self.epoch += 1
            self._open_journal()
        self._last_image.clear()
        self._auto_batch = _Batch()
        for batch in self._txn_batches.values():
            batch.records.clear()
            batch.stale = True
        self.records_since_checkpoint = 0
        self._unsealed_records = 0
        self._dirty = False
        self._unsynced_seals = 0
        _fire("journal.checkpointed", journal=self)

    def close(self):
        """Seal every pending batch, fsync, close, and deregister hooks.

        Idempotent.  Any journal method used after close raises
        :class:`~repro.errors.StorageError`; mutations on the database
        itself keep working in-memory (the hooks are gone).

        A failure while sealing or fsyncing here raises
        :class:`~repro.errors.StorageError` — the caller must learn
        that the shutdown did *not* persist everything — but the file
        handle is still closed and the hooks deregistered, so close
        stays idempotent and the database remains usable in-memory.
        On a journal that already failed earlier, close is a quiet
        cleanup: every lost record surfaced a StorageError at its own
        write, and re-raising here would mask the original fault.
        """
        if self.closed:
            return
        try:
            if (self._journal_file and not self._journal_file.closed
                    and not self.failed):
                # A clean shutdown persists everything written through
                # the hooks — including batches of still-open
                # transactions, which matches the write-through
                # semantics of the always policy.
                with self._io_guard("close"):
                    self._seal_stream()
                    self._seal_batch(self._auto_batch)
                    for batch in self._txn_batches.values():
                        self._seal_batch(batch)
                    self._txn_batches.clear()
                    self._journal_file.flush()
                    os.fsync(self._journal_file.fileno())
        finally:
            if self._journal_file and not self._journal_file.closed:
                with suppress(OSError):
                    self._journal_file.close()
            self.detach()
            self.closed = True

    def abandon(self):
        """Drop the journal without sealing or fsyncing anything.

        The crash simulator's ``kill -9``: buffered batches and pending
        syncs are thrown away exactly as a dead process would leave
        them, the file handle is closed (flushing nothing beyond what
        the OS already had), and the hooks are deregistered.  Never
        call this to shut down a database you care about — that is
        :meth:`close`.
        """
        if self.closed:
            return
        if self._journal_file and not self._journal_file.closed:
            with suppress(OSError):
                self._journal_file.close()
        self.detach()
        self.closed = True

    # -- recovery ----------------------------------------------------------------

    @staticmethod
    def recover_into(database, directory):
        """Load snapshot + journal from *directory* into a fresh database.

        Returns (instances_restored, journal_records_replayed).  Records
        apply batch-at-a-time: a batch's records take effect only once
        its commit marker is seen, so a truncated final batch (torn
        write) is discarded in full, as a real redo log would after a
        crash.

        A batch sealed by a ``P`` (prepare) marker is *not* applied;
        it is stashed under its gtid and applied/discarded when a later
        ``R`` (resolution) record decides it.  Batches still undecided
        at the end of the stream are exposed as ``database.in_doubt``
        (gtid -> record list) for the shard worker to resolve against
        the coordinator log (see ``repro.shard.twopc``); the attribute
        is always set, so non-sharded callers simply see ``{}``.
        """
        directory = Path(directory)
        snapshot = directory / SNAPSHOT_NAME
        journal = directory / JOURNAL_NAME
        restored = replayed = 0
        max_uid = 0
        snapshot_epoch = 0
        commit_seq = 0
        if snapshot.exists():
            with open(snapshot, "rb") as handle:
                if handle.read(len(_MAGIC)) != _MAGIC:
                    raise StorageError(f"{snapshot} is not a snapshot file")
                schema_len = _U32.unpack(handle.read(4))[0]
                meta = json.loads(handle.read(schema_len).decode("utf-8"))
                snapshot_epoch = meta.get("epoch", 0)
                commit_seq = meta.get("commit_seq", 0)
                _restore_schema(database, meta["classes"])
                count = _U32.unpack(handle.read(4))[0]
                for _ in range(count):
                    size = _U32.unpack(handle.read(4))[0]
                    instance = decode_instance(handle.read(size))
                    database._objects[instance.uid] = instance
                    max_uid = max(max_uid, instance.uid.number)
                    restored += 1
                max_uid = max(max_uid, meta.get("next_uid", 1) - 1)
        in_doubt = {}

        def apply_records(records):
            nonlocal replayed, max_uid
            for record_kind, payload in records:
                instance = decode_instance(payload)
                if record_kind == _TOMBSTONE:
                    database._objects.pop(instance.uid, None)
                else:
                    instance.deleted = False
                    database._objects[instance.uid] = instance
                    max_uid = max(max_uid, instance.uid.number)
                replayed += 1

        def bump_seq(payload):
            # Commit epoch from the marker payload; a legacy empty
            # payload means sequential epochs, so count the batch.
            nonlocal commit_seq
            if len(payload) == _U64.size:
                commit_seq = max(commit_seq, _U64.unpack(payload)[0])
            else:
                commit_seq += 1

        if journal.exists():
            # A torn header or an epoch mismatch (stale journal left by
            # a crash mid-checkpoint) yields None: replay nothing.
            data = _journal_body(journal.read_bytes(), snapshot_epoch)
            if data is None:
                data = b""
            position = 0
            pending = []
            while position + 5 <= len(data):
                kind = data[position:position + 1]
                size = _U32.unpack(data[position + 1:position + 5])[0]
                end = position + 5 + size
                if end > len(data):
                    break  # torn final record: discard the whole batch
                if kind == _COMMIT:
                    # Batch complete: apply its buffered records.
                    apply_records(pending)
                    pending.clear()
                    bump_seq(data[position + 5:end])
                elif kind == _PREPARE:
                    # Prepared batch: durable but undecided.  Stash it;
                    # burn its UID numbers either way so the allocator
                    # can never re-issue them after an abort.
                    meta = json.loads(data[position + 5:end].decode("utf-8"))
                    for _kind, payload in pending:
                        instance = decode_instance(payload)
                        max_uid = max(max_uid, instance.uid.number)
                    in_doubt[meta["gtid"]] = list(pending)
                    pending.clear()
                elif kind == _RESOLVE:
                    meta = json.loads(data[position + 5:end].decode("utf-8"))
                    stashed = in_doubt.pop(meta["gtid"], None)
                    if stashed is not None and meta["commit"]:
                        apply_records(stashed)
                    if meta["commit"]:
                        commit_seq = max(
                            commit_seq, meta.get("commit_seq", commit_seq + 1)
                        )
                elif kind in (_IMAGE, _TOMBSTONE):
                    pending.append((kind, data[position + 5:end]))
                else:
                    break  # corrupt stream: stop at the last good batch
                position = end
            # Records after the last commit marker belong to an
            # unterminated batch — discarded, like a torn record.
        from ..core.identity import UIDAllocator

        database.allocator = UIDAllocator(start=max_uid + 1)
        database.rebuild_extents()
        database.in_doubt = in_doubt
        database.commit_epoch = commit_seq
        return restored, replayed

    @staticmethod
    def apply_in_doubt(database, records):
        """Apply one in-doubt batch's records to *database* (a commit
        decision reached after recovery).  The caller journals the
        matching ``R`` record via :meth:`resolve_prepared` and rebuilds
        extents afterwards (see ``repro.shard.twopc.resolve_in_doubt``).
        """
        for record_kind, payload in records:
            instance = decode_instance(payload)
            if record_kind == _TOMBSTONE:
                database._objects.pop(instance.uid, None)
            else:
                instance.deleted = False
                database._objects[instance.uid] = instance
