"""Physical segments.

ORION stores each class's instances in a physical segment; the ``:parent``
keyword of ``make`` doubles as a clustering hint, honoured "only if the
classes of the two objects are stored in the same physical segment"
(paper 2.3).  A :class:`Segment` tracks the pages belonging to it and
implements the placement policy: *near a hint page if possible, else the
first segment page with room, else a new page*.
"""

from __future__ import annotations

from .page import DEFAULT_PAGE_SIZE


class Segment:
    """One physical segment: an ordered collection of page ids."""

    def __init__(self, name, buffer_pool, page_size=DEFAULT_PAGE_SIZE):
        self.name = name
        self.page_size = page_size
        self._pool = buffer_pool
        self._page_ids = []

    @property
    def page_ids(self):
        return list(self._page_ids)

    def __len__(self):
        return len(self._page_ids)

    def place(self, data, near_page_id=None, fresh_on_full=False):
        """Store *data*, returning ``(page_id, slot)``.

        Placement order:

        1. the hint page, when given, belonging to this segment and roomy —
           this is the paper's "clustered with the first specified parent";
        2. with *fresh_on_full* (a clustered placement whose hint page
           overflowed): a freshly allocated page, so the caller can extend
           the cluster chain contiguously instead of scattering to the
           segment tail;
        3. the last page of the segment with room (append locality);
        4. a freshly allocated page.

        Records larger than the page size get a dedicated oversized page.
        """
        if near_page_id is not None and near_page_id in self._page_ids:
            page = self._pool.pin(near_page_id)
            if page.fits(len(data)):
                slot = page.insert(data)
                self._pool.mark_dirty(page.page_id)
                return page.page_id, slot
            if fresh_on_full:
                capacity = max(self.page_size, len(data) + 64)
                page = self._pool.new_page(self.name, capacity)
                self._page_ids.append(page.page_id)
                slot = page.insert(data)
                self._pool.mark_dirty(page.page_id)
                return page.page_id, slot
        if self._page_ids:
            page = self._pool.pin(self._page_ids[-1])
            if page.fits(len(data)):
                slot = page.insert(data)
                self._pool.mark_dirty(page.page_id)
                return page.page_id, slot
        capacity = max(self.page_size, len(data) + 64)
        page = self._pool.new_page(self.name, capacity)
        self._page_ids.append(page.page_id)
        slot = page.insert(data)
        self._pool.mark_dirty(page.page_id)
        return page.page_id, slot
