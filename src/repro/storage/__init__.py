"""Storage substrate: serializer, slotted pages, segments, buffer pool,
object store, and the first-parent clustering policy (paper 2.3)."""

from .buffer import BufferPool, PageFile
from .journal import Journal
from .clustering import ClusteringPolicy, shared_segment
from .page import DEFAULT_PAGE_SIZE, Page
from .segment import Segment
from .serializer import decode_instance, encode_instance
from .stats import IOStats, IOStatsSnapshot
from .store import ObjectStore


def __getattr__(name):
    # DurableDatabase depends on repro.core.database, which imports this
    # package; resolve it lazily to avoid the cycle.
    if name == "DurableDatabase":
        from .durable import DurableDatabase

        return DurableDatabase
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BufferPool",
    "DurableDatabase",
    "Journal",
    "ClusteringPolicy",
    "DEFAULT_PAGE_SIZE",
    "IOStats",
    "IOStatsSnapshot",
    "ObjectStore",
    "Page",
    "PageFile",
    "Segment",
    "decode_instance",
    "encode_instance",
    "shared_segment",
]
