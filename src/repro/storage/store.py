"""The object store: UID-addressed persistent records over pages.

:class:`ObjectStore` maps UIDs to (page, slot) locations, serializes
instances through :mod:`repro.storage.serializer`, routes them to their
class's segment, and honours clustering hints.  All page traffic flows
through one :class:`BufferPool`, so experiments can meter exactly what a
disk-backed ORION would read and write.

The in-memory :class:`repro.Database` uses the store in *write-through*
mode when constructed with ``paged=True``; the clustering benchmark (B6)
also drives the store directly.
"""

from __future__ import annotations

from ..errors import PageFullError, StorageError, UnknownObjectError
from ..faults.registry import fire as _fire
from .buffer import BufferPool, PageFile
from .page import DEFAULT_PAGE_SIZE
from .segment import Segment
from .serializer import decode_instance, encode_instance
from .stats import IOStats


class ObjectStore:
    """Page-backed storage of serialized instances."""

    def __init__(self, buffer_capacity=64, page_size=DEFAULT_PAGE_SIZE):
        self.stats = IOStats()
        self._file = PageFile()
        self.pool = BufferPool(self._file, capacity=buffer_capacity, stats=self.stats)
        self.page_size = page_size
        self._segments = {}
        #: UID -> (page_id, slot)
        self._directory = {}
        #: Cluster chains: anchor UID -> page currently receiving objects
        #: clustered with that anchor.  When the anchor's own page fills,
        #: the chain moves to a fresh page so siblings stay contiguous
        #: instead of scattering to the segment tail.
        self._cluster_tail = {}

    # -- segments ---------------------------------------------------------

    def segment(self, name):
        """Return (creating on demand) the segment named *name*."""
        seg = self._segments.get(name)
        if seg is None:
            seg = Segment(name, self.pool, self.page_size)
            self._segments[name] = seg
        return seg

    def segment_of(self, uid):
        """Name of the segment currently holding *uid* (None when absent)."""
        location = self._directory.get(uid)
        if location is None:
            return None
        return self.pool.pin(location[0]).segment

    def page_of(self, uid):
        """Page id currently holding *uid* (None when absent)."""
        location = self._directory.get(uid)
        return location[0] if location else None

    # -- record operations --------------------------------------------------

    def write(self, instance, segment_name, near_uid=None):
        """Serialize and store *instance* in *segment_name*.

        *near_uid* is the clustering hint: when the hinted object lives in
        the same segment, placement tries its page first (paper 2.3).
        Rewrites of an existing UID update in place when the record still
        fits, otherwise relocate.
        """
        try:
            _fire("store.write", store=self, uid=instance.uid)
        except OSError as error:
            raise StorageError(
                f"store write failed for {instance.uid}: {error}"
            ) from error
        data = encode_instance(instance)
        uid = instance.uid
        existing = self._directory.get(uid)
        if existing is not None:
            page_id, slot = existing
            page = self.pool.pin(page_id)
            try:
                page.update(slot, data)
                self.pool.mark_dirty(page_id)
                self.stats.records_written += 1
                return page_id, slot
            except PageFullError:
                page.delete(slot)
                self.pool.mark_dirty(page_id)
                del self._directory[uid]
        near_page = None
        if near_uid is not None:
            near_page = self._cluster_tail.get(near_uid)
            if near_page is None:
                near_location = self._directory.get(near_uid)
                if near_location is not None:
                    near_page = near_location[0]
        seg = self.segment(segment_name)
        page_id, slot = seg.place(
            data, near_page_id=near_page, fresh_on_full=near_uid is not None
        )
        self._directory[uid] = (page_id, slot)
        if near_uid is not None:
            self._cluster_tail[near_uid] = page_id
        self.stats.records_written += 1
        return page_id, slot

    def read(self, uid):
        """Load and deserialize the record of *uid*.

        Raises :class:`UnknownObjectError` when the UID was never written
        or has been deleted.
        """
        try:
            _fire("store.read", store=self, uid=uid)
        except OSError as error:
            raise StorageError(
                f"store read failed for {uid}: {error}"
            ) from error
        location = self._directory.get(uid)
        if location is None:
            raise UnknownObjectError(uid)
        page_id, slot = location
        page = self.pool.pin(page_id)
        self.stats.records_read += 1
        return decode_instance(page.read(slot))

    def delete(self, uid):
        """Remove the record of *uid* (idempotent)."""
        location = self._directory.pop(uid, None)
        if location is None:
            return False
        page_id, slot = location
        page = self.pool.pin(page_id)
        page.delete(slot)
        self.pool.mark_dirty(page_id)
        return True

    def __contains__(self, uid):
        return uid in self._directory

    def __len__(self):
        return len(self._directory)

    def uids(self):
        return list(self._directory)

    def flush(self):
        """Write back all dirty pages."""
        self.pool.flush()

    def drop_cache(self):
        """Empty the buffer pool (simulate a restart / cold cache)."""
        self.pool.clear()
