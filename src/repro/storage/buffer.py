"""Buffer pool with LRU replacement.

The pool sits between the object store and the "disk" (the
:class:`PageFile`).  Every page access goes through :meth:`BufferPool.pin`;
a miss counts a page fault and may evict the least-recently-used frame,
counting a page write when the victim is dirty.  Counters live in
:class:`repro.storage.stats.IOStats` so experiments can snapshot and diff
them.
"""

from __future__ import annotations

from collections import OrderedDict

from .page import Page
from .stats import IOStats


class PageFile:
    """The backing store ("disk"): page_id -> Page.

    Held in memory, but only ever accessed through the buffer pool, so the
    fault counters faithfully model a disk-backed system's access pattern.
    """

    def __init__(self):
        self._pages = {}
        self._next_id = 0

    def allocate(self, segment, capacity):
        """Create a new page in *segment* and return it."""
        page = Page(self._next_id, segment, capacity)
        self._next_id += 1
        self._pages[page.page_id] = page
        return page

    def read(self, page_id):
        """Fetch a page from disk (KeyError when unknown)."""
        return self._pages[page_id]

    def __contains__(self, page_id):
        return page_id in self._pages

    def __len__(self):
        return len(self._pages)

    def page_ids(self):
        return list(self._pages)


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    ``capacity`` is the number of page frames.  A capacity of 0 disables
    caching entirely (every access is a fault), which gives the worst-case
    bound for the clustering experiment.
    """

    def __init__(self, page_file, capacity=64, stats=None):
        self._file = page_file
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        #: page_id -> Page, in LRU order (oldest first).
        self._frames = OrderedDict()
        #: page_ids with unflushed modifications.
        self._dirty = set()

    # -- core protocol ----------------------------------------------------

    def pin(self, page_id):
        """Return the page, counting a hit or a fault."""
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self.stats.buffer_hits += 1
            return self._frames[page_id]
        page = self._file.read(page_id)
        self.stats.page_faults += 1
        self._admit(page)
        return page

    def mark_dirty(self, page_id):
        """Record that the page was modified while resident."""
        self._dirty.add(page_id)

    def new_page(self, segment, capacity):
        """Allocate a fresh page; it enters the pool dirty (no fault)."""
        page = self._file.allocate(segment, capacity)
        self.stats.pages_allocated += 1
        self._admit(page)
        self._dirty.add(page.page_id)
        return page

    def flush(self):
        """Write back every dirty resident page (counts page writes)."""
        for _page_id in sorted(self._dirty):
            self.stats.page_writes += 1
        self._dirty.clear()

    def clear(self):
        """Drop every frame (without counting writes) — a "cold cache"."""
        self._frames.clear()
        self._dirty.clear()

    def resident(self, page_id):
        """True when the page currently occupies a frame."""
        return page_id in self._frames

    def __len__(self):
        return len(self._frames)

    # -- internals ------------------------------------------------------------

    def _admit(self, page):
        if self.capacity <= 0:
            # Degenerate pool: nothing stays resident.
            if page.page_id in self._dirty:
                self.stats.page_writes += 1
                self._dirty.discard(page.page_id)
            return
        while len(self._frames) >= self.capacity:
            victim_id, _victim = self._frames.popitem(last=False)
            if victim_id in self._dirty:
                self.stats.page_writes += 1
                self._dirty.discard(victim_id)
        self._frames[page.page_id] = page
