"""A durable database: :class:`repro.Database` + checkpoint/journal.

Usage::

    db = DurableDatabase("/path/to/dir")     # empty or recovered
    db.make_class(...)                        # DDL checkpoints
    db.make(...)                              # DML journals
    db.close()

    db2 = DurableDatabase.open("/path/to/dir")  # same state, crash or not
"""

from __future__ import annotations

from ..core.database import Database
from .journal import Journal


class DurableDatabase(Database):
    """A database whose state survives process death.

    Instance-level mutations are redo-journaled as they happen; schema
    changes (``make_class``, and anything done through a
    :class:`~repro.schema.evolution.SchemaEvolutionManager`, which should
    call :meth:`checkpoint` after DDL) trigger a checkpoint.
    """

    def __init__(self, directory, recover=True, **kwargs):
        super().__init__(**kwargs)
        if recover:
            Journal.recover_into(self, directory)
        self.journal = Journal(self, directory)

    @classmethod
    def open(cls, directory, **kwargs):
        """Open (recovering) the database stored in *directory*."""
        return cls(directory, recover=True, **kwargs)

    def make_class(self, *args, **kwargs):
        classdef = super().make_class(*args, **kwargs)
        if getattr(self, "journal", None) is not None:
            self.journal.checkpoint()
        return classdef

    def checkpoint(self):
        """Force a snapshot (call after external schema evolution)."""
        self.journal.checkpoint()

    def close(self):
        """Flush and close the journal (the state is already durable)."""
        self.journal.close()
