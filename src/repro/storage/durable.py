"""A durable database: :class:`repro.Database` + checkpoint/journal.

Usage::

    db = DurableDatabase("/path/to/dir")     # empty or recovered
    db.make_class(...)                        # DDL checkpoints
    db.make(...)                              # DML journals
    db.close()

    db2 = DurableDatabase.open("/path/to/dir")  # same state, crash or not

The write-path cost is governed by the journal's *sync policy*
(``always`` | ``commit`` | ``group`` | ``none``; see
:mod:`repro.storage.journal` and docs/DURABILITY.md)::

    db = DurableDatabase("/path", sync_policy="commit")  # fsync per commit
"""

from __future__ import annotations

from ..core.database import Database
from .journal import Journal


class DurableDatabase(Database):
    """A database whose state survives process death.

    Instance-level mutations are redo-journaled as they happen; schema
    changes (``make_class``, and anything done through a
    :class:`~repro.schema.evolution.SchemaEvolutionManager`, which should
    call :meth:`checkpoint` after DDL) trigger a checkpoint.

    ``sync_policy`` and ``group_size`` configure the journal's group
    commit pipeline (default ``always``: one fsync per mutating
    operation, the most conservative policy).
    """

    def __init__(self, directory, recover=True, sync_policy="always",
                 group_size=8, **kwargs):
        super().__init__(**kwargs)
        if recover:
            Journal.recover_into(self, directory)
        self.journal = Journal(
            self, directory, sync_policy=sync_policy, group_size=group_size
        )
        # Recovered in-doubt (prepared, undecided) 2PC batches block
        # checkpointing until resolved (repro.shard.twopc).
        in_doubt = getattr(self, "in_doubt", None)
        if in_doubt:
            self.journal.adopt_in_doubt(in_doubt)

    @classmethod
    def open(cls, directory, **kwargs):
        """Open (recovering) the database stored in *directory*."""
        return cls(directory, recover=True, **kwargs)

    def make_class(self, *args, **kwargs):
        classdef = super().make_class(*args, **kwargs)
        journal = getattr(self, "journal", None)
        if journal is not None and not journal.closed:
            journal.checkpoint()
        return classdef

    def checkpoint(self):
        """Force a snapshot (call after external schema evolution)."""
        self.journal.checkpoint()

    def close(self):
        """Seal pending batches, fsync, close the journal, and deregister
        its hooks — mutations after close work in-memory only instead of
        crashing into a closed file.  Idempotent."""
        self.journal.close()
