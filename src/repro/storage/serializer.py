"""Binary serialization of instances.

A compact, self-describing, dependency-free format (we deliberately avoid
``pickle``: records must be stable bytes whose size the clustering layer
can reason about, and decoding must never execute code).

Format: every value is a one-byte type tag followed by a fixed or
length-prefixed payload.  An instance record is::

    'O' | class_name | uid | change_count | values map | reverse refs list

Strings are UTF-8 with a u32 length prefix; integers are signed 64-bit;
UIDs are (number, class_name) pairs.
"""

from __future__ import annotations

import struct
from collections import OrderedDict

from ..core.identity import UID
from ..core.instance import Instance
from ..core.references import ReverseReference
from ..errors import SerializationError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_UID = b"U"
_TAG_LIST = b"L"
_TAG_INSTANCE = b"O"

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


def _encode_str(out, text):
    data = text.encode("utf-8")
    out.append(_U32.pack(len(data)))
    out.append(data)


def encode_value(value, out):
    """Append the encoding of one value to the byte-chunk list *out*."""
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out.append(_I64.pack(value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        out.append(_TAG_STR)
        _encode_str(out, value)
    elif isinstance(value, UID):
        out.append(_TAG_UID)
        out.append(_I64.pack(value.number))
        _encode_str(out, value.class_name)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out.append(_U32.pack(len(value)))
        for item in value:
            encode_value(item, out)
    else:
        raise SerializationError(
            f"cannot serialize value of type {type(value).__name__}: {value!r}"
        )


class _Reader:
    """Sequential reader over a bytes buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, n):
        if self.pos + n > len(self.data):
            raise SerializationError("truncated record")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def read_u32(self):
        return _U32.unpack(self.take(4))[0]

    def read_i64(self):
        return _I64.unpack(self.take(8))[0]

    def read_f64(self):
        return _F64.unpack(self.take(8))[0]

    def read_str(self):
        return self.take(self.read_u32()).decode("utf-8")


def decode_value(reader):
    """Decode one value from *reader*."""
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return reader.read_i64()
    if tag == _TAG_FLOAT:
        return reader.read_f64()
    if tag == _TAG_STR:
        return reader.read_str()
    if tag == _TAG_UID:
        number = reader.read_i64()
        return UID(number, reader.read_str())
    if tag == _TAG_LIST:
        count = reader.read_u32()
        return [decode_value(reader) for _ in range(count)]
    raise SerializationError(f"unknown type tag {tag!r}")


def encode_instance(instance):
    """Serialize *instance* to bytes."""
    out = [_TAG_INSTANCE]
    _encode_str(out, instance.class_name)
    out.append(_I64.pack(instance.uid.number))
    out.append(_I64.pack(instance.change_count))
    out.append(_U32.pack(len(instance.values)))
    for name, value in instance.values.items():
        _encode_str(out, name)
        encode_value(value, out)
    out.append(_U32.pack(len(instance.reverse_references)))
    for ref in instance.reverse_references:
        encode_value(ref.parent, out)
        out.append(_TAG_TRUE if ref.dependent else _TAG_FALSE)
        out.append(_TAG_TRUE if ref.exclusive else _TAG_FALSE)
        _encode_str(out, ref.attribute)
    return b"".join(out)


class ImageCache:
    """Bounded LRU of encoded object images keyed by content digest.

    The server's wire-protocol hot path uses this to encode an unchanged
    object's snapshot once: the journal already fingerprints every
    persisted image with a 16-byte BLAKE2b digest (``journal._digest``)
    for write dedup, so ``(digest, schema shape)`` names the encoded
    bytes exactly — a mutation changes the digest, a schema change
    changes the shape, and either way the stale entry simply never gets
    looked up again until LRU eviction reclaims it.
    """

    def __init__(self, capacity=1024):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """The cached payload for *key*, or None (counts hit/miss)."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key, payload):
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self):
        self._entries.clear()

    def stats_row(self):
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def decode_instance(data):
    """Deserialize bytes produced by :func:`encode_instance`."""
    reader = _Reader(data)
    if reader.take(1) != _TAG_INSTANCE:
        raise SerializationError("not an instance record")
    class_name = reader.read_str()
    uid = UID(reader.read_i64(), class_name)
    change_count = reader.read_i64()
    values = {}
    for _ in range(reader.read_u32()):
        name = reader.read_str()
        values[name] = decode_value(reader)
    instance = Instance(uid, class_name, values, change_count=change_count)
    for _ in range(reader.read_u32()):
        parent = decode_value(reader)
        dependent = reader.take(1) == _TAG_TRUE
        exclusive = reader.take(1) == _TAG_TRUE
        attribute = reader.read_str()
        instance.reverse_references.append(
            ReverseReference(parent, dependent, exclusive, attribute)
        )
    return instance
