"""I/O and buffer-pool statistics.

All storage experiments (clustering benchmark B6 in particular) report
*counts* — page faults, page writes, buffer hits — rather than raw device
times, because the paper's prose claims are about access shape, not about
1989 disk hardware.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Mutable counters for one page store / buffer pool."""

    #: Logical page requests that were satisfied from the buffer pool.
    buffer_hits: int = 0
    #: Logical page requests that required reading from the backing store.
    page_faults: int = 0
    #: Dirty pages written back (on eviction or flush).
    page_writes: int = 0
    #: Pages freshly allocated.
    pages_allocated: int = 0
    #: Records written (object store level).
    records_written: int = 0
    #: Records read (object store level).
    records_read: int = 0

    def reset(self):
        """Zero every counter (between benchmark phases)."""
        self.buffer_hits = 0
        self.page_faults = 0
        self.page_writes = 0
        self.pages_allocated = 0
        self.records_written = 0
        self.records_read = 0

    @property
    def logical_reads(self):
        """Total page requests (hits + faults)."""
        return self.buffer_hits + self.page_faults

    @property
    def hit_ratio(self):
        """Buffer hit ratio in [0, 1]; 0 when no requests were made."""
        total = self.logical_reads
        return self.buffer_hits / total if total else 0.0

    def snapshot(self):
        """Return an immutable copy of the current counters."""
        return IOStatsSnapshot(
            buffer_hits=self.buffer_hits,
            page_faults=self.page_faults,
            page_writes=self.page_writes,
            pages_allocated=self.pages_allocated,
            records_written=self.records_written,
            records_read=self.records_read,
        )

    def __str__(self):
        return (
            f"IOStats(hits={self.buffer_hits}, faults={self.page_faults}, "
            f"writes={self.page_writes}, hit_ratio={self.hit_ratio:.3f})"
        )


@dataclass(frozen=True)
class IOStatsSnapshot:
    """Frozen copy of :class:`IOStats` for before/after comparisons."""

    buffer_hits: int
    page_faults: int
    page_writes: int
    pages_allocated: int
    records_written: int
    records_read: int

    def delta(self, later):
        """Counters accumulated between this snapshot and *later*."""
        return IOStatsSnapshot(
            buffer_hits=later.buffer_hits - self.buffer_hits,
            page_faults=later.page_faults - self.page_faults,
            page_writes=later.page_writes - self.page_writes,
            pages_allocated=later.pages_allocated - self.pages_allocated,
            records_written=later.records_written - self.records_written,
            records_read=later.records_read - self.records_read,
        )
