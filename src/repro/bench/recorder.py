"""Recording benchmark findings.

Each benchmark asserts its qualitative "shape" claims (who wins, where
crossovers fall) and records the measured rows here; the harness keeps
everything from one run so EXPERIMENTS.md can be regenerated from a single
``pytest benchmarks/`` session if desired.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ExperimentRecord:
    """Rows and conclusions of one experiment."""

    experiment_id: str
    description: str
    rows: list = field(default_factory=list)
    conclusions: list = field(default_factory=list)


class Recorder:
    """Collects experiment records; optionally persists them as JSON."""

    def __init__(self):
        self._records = {}

    def record(self, experiment_id, description, rows=(), conclusions=()):
        entry = ExperimentRecord(
            experiment_id=experiment_id,
            description=description,
            rows=list(rows),
            conclusions=list(conclusions),
        )
        self._records[experiment_id] = entry
        return entry

    def get(self, experiment_id):
        return self._records.get(experiment_id)

    def all_records(self):
        return [self._records[key] for key in sorted(self._records)]

    def dump(self, path):
        """Write all records to *path* as JSON."""
        payload = [
            {
                "experiment_id": record.experiment_id,
                "description": record.description,
                "rows": [
                    {key: _jsonable(value) for key, value in row.items()}
                    for row in record.rows
                ],
                "conclusions": record.conclusions,
            }
            for record in self.all_records()
        ]
        Path(path).write_text(json.dumps(payload, indent=2))
        return path


def _jsonable(value):
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


#: Process-wide recorder the benchmark modules share.
GLOBAL_RECORDER = Recorder()
