"""Plain-text table rendering for benchmark output.

Benchmarks print the same "rows and series" a paper table would carry;
this keeps the formatting in one place and dependency-free.
"""

from __future__ import annotations


def format_table(rows, columns=None, title=""):
    """Render dict rows as a fixed-width table.

    *rows* is a list of dicts; *columns* fixes the column order (default:
    keys of the first row).  Numbers are right-aligned; floats get four
    significant decimals.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0])

    def cell(value):
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(
        f"{col:>{w}}" for col, w in zip(columns, widths, strict=True)
    )
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(
            f"{value:>{w}}" for value, w in zip(row, widths, strict=True)
        )
        for row in rendered
    ]
    lines = ([title, ""] if title else []) + [header, rule] + body
    return "\n".join(lines)


def print_table(rows, columns=None, title=""):
    """Print :func:`format_table` output (convenience for benchmarks)."""
    print()
    print(format_table(rows, columns=columns, title=title))
    print()
