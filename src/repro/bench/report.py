"""Render recorded benchmark results as a markdown report.

The benchmark session dumps every experiment's rows and conclusions to
``benchmarks/bench_results.json``; this module turns that file into a
markdown document, so a fresh EXPERIMENTS-style report can be regenerated
from any run::

    python -m repro.bench.report benchmarks/bench_results.json > report.md
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _markdown_table(rows):
    if not rows:
        return "_(no rows)_"
    columns = list(rows[0])
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)

    def cell(value):
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(cell(row.get(col, "")) for col in columns) + " |"
        )
    return "\n".join(lines)


def render_report(records, title="Benchmark report"):
    """Render a list of record dicts (the JSON dump format) to markdown."""
    lines = [f"# {title}", ""]
    for record in records:
        lines.append(f"## {record['experiment_id']} — {record['description']}")
        lines.append("")
        rows = record.get("rows", [])
        # Large matrices (the figure dumps) are summarized, not inlined.
        if len(rows) > 24:
            lines.append(f"_{len(rows)} rows (see bench_results.json)._")
        else:
            lines.append(_markdown_table(rows))
        lines.append("")
        for conclusion in record.get("conclusions", []):
            lines.append(f"* {conclusion}")
        if record.get("conclusions"):
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_report_file(path, title="Benchmark report"):
    """Load a bench_results.json file and render it."""
    records = json.loads(Path(path).read_text())
    return render_report(records, title=title)


def main(argv=None):
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print("usage: python -m repro.bench.report <bench_results.json>",
              file=sys.stderr)
        return 1
    sys.stdout.write(render_report_file(argv[0]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
