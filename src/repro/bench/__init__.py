"""Benchmark harness utilities: table rendering and result recording."""

from .recorder import GLOBAL_RECORDER, ExperimentRecord, Recorder
from .report import render_report, render_report_file
from .tables import format_table, print_table

__all__ = [
    "ExperimentRecord",
    "GLOBAL_RECORDER",
    "Recorder",
    "format_table",
    "print_table",
    "render_report",
    "render_report_file",
]
