"""Exception hierarchy for the composite-object database.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the paper's
subsystems: the composite-object model itself (topology and make-component
violations), schema evolution, versioning, authorization, locking, and the
storage substrate.

Every class carries a stable, wire-serializable ``code`` string.  The
network protocol (:mod:`repro.server.protocol`) marshals exceptions as
``{code, message, data}`` frames and rebuilds the matching class on the
client from :func:`error_registry` — no string matching on messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: Stable wire identifier for this error class.  Subclasses override;
    #: the protocol layer maps codes back to classes via
    #: :func:`error_registry`.
    code = "REPRO"

    #: Extra attribute names the wire protocol may reattach when this
    #: error is rebuilt client-side, *beyond* the class's ``__init__``
    #: parameters.  Declare attributes set after construction here (see
    #: ``ShardUnavailableError.shard``); anything undeclared in a
    #: payload is dropped by ``repro.server.protocol.build_error``.
    wire_fields: tuple = ()


# ---------------------------------------------------------------------------
# Object model errors (Section 2 of the paper)
# ---------------------------------------------------------------------------


class ObjectModelError(ReproError):
    """Base class for errors in the core composite-object model."""

    code = "OBJECT_MODEL"


class UnknownObjectError(ObjectModelError, KeyError):
    """An operation referenced a UID that does not name a live object."""

    code = "UNKNOWN_OBJECT"

    def __init__(self, uid):
        super().__init__(uid)
        self.uid = uid

    def __str__(self):
        return f"no live object with UID {self.uid!r}"


class UnknownClassError(ObjectModelError, KeyError):
    """An operation referenced a class name that has not been defined."""

    code = "UNKNOWN_CLASS"
    wire_fields = ("class_name",)

    def __init__(self, name):
        super().__init__(name)
        self.class_name = name

    def __str__(self):
        return f"no class named {self.class_name!r}"


class UnknownAttributeError(ObjectModelError, AttributeError):
    """An operation referenced an attribute a class does not define."""

    code = "UNKNOWN_ATTRIBUTE"

    def __init__(self, class_name, attribute):
        super().__init__(f"class {class_name!r} has no attribute {attribute!r}")
        self.class_name = class_name
        self.attribute = attribute


class TopologyError(ObjectModelError):
    """A reference insertion would violate Topology Rules 1-3 (paper 2.2).

    Raised by the Make-Component Rule checks: an exclusive composite
    reference may only be added to an object with no composite reference,
    and a shared composite reference only to an object with no exclusive
    composite reference.
    """

    code = "TOPOLOGY"

    def __init__(self, message, rule=None):
        super().__init__(message)
        #: Which topology rule was violated (1, 2 or 3), when known.
        self.rule = rule


class DomainError(ObjectModelError, TypeError):
    """An attribute value does not belong to the attribute's domain class."""

    code = "DOMAIN"


class DanglingReferenceError(ObjectModelError):
    """A composite reference points at an object that no longer exists."""

    code = "DANGLING_REFERENCE"


class LegacyModelError(ObjectModelError):
    """An operation is not expressible in the KIM87b baseline model.

    The baseline restricts composite objects to dependent exclusive
    references created top-down; bottom-up assembly and sharing raise this.
    """

    code = "LEGACY_MODEL"


# ---------------------------------------------------------------------------
# Schema errors (Section 4)
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """Base class for schema definition and evolution errors."""

    code = "SCHEMA"


class ClassDefinitionError(SchemaError):
    """A make-class call was malformed (bad superclass, duplicate name...)."""

    code = "CLASS_DEFINITION"


class SchemaEvolutionError(SchemaError):
    """A schema-change operation could not be applied."""

    code = "SCHEMA_EVOLUTION"


class StateDependentChangeRejected(SchemaEvolutionError):
    """A state-dependent attribute-type change (D1-D3) failed verification.

    Paper 4.2: changes that *add* a constraint must verify the X flags of
    the reverse composite references of every affected instance; if the
    flags are inconsistent with the new constraint the change is rejected.
    """

    code = "STATE_DEPENDENT_REJECTED"

    def __init__(self, change, offending_uid, message=""):
        detail = message or f"instance {offending_uid!r} violates {change}"
        super().__init__(detail)
        self.change = change
        self.offending_uid = offending_uid


# ---------------------------------------------------------------------------
# Version errors (Section 5)
# ---------------------------------------------------------------------------


class VersionError(ReproError):
    """Base class for version-model errors."""

    code = "VERSION"


class NotVersionableError(VersionError):
    """A version operation targeted an instance of a non-versionable class."""

    code = "NOT_VERSIONABLE"


class VersionTopologyError(VersionError):
    """A version-composite reference violates rules CV-1X..CV-4X."""

    code = "VERSION_TOPOLOGY"


# ---------------------------------------------------------------------------
# Authorization errors (Section 6)
# ---------------------------------------------------------------------------


class AuthorizationError(ReproError):
    """Base class for authorization-subsystem errors."""

    code = "AUTHORIZATION"


class AuthorizationConflict(AuthorizationError):
    """A new grant conflicts with an existing explicit or implied one.

    Paper Section 6: "if a new authorization issued conflicts with an
    existing authorization, the new authorization is rejected."
    """

    code = "AUTHORIZATION_CONFLICT"

    def __init__(self, message, existing=None, requested=None):
        super().__init__(message)
        self.existing = existing
        self.requested = requested


class AccessDenied(AuthorizationError):
    """An access check failed (negative authorization or no authorization)."""

    code = "ACCESS_DENIED"


# ---------------------------------------------------------------------------
# Locking / transaction errors (Section 7)
# ---------------------------------------------------------------------------


class ConcurrencyError(ReproError):
    """Base class for locking and transaction errors."""

    code = "CONCURRENCY"


class LockConflictError(ConcurrencyError):
    """A lock request is incompatible with currently granted locks.

    Raised in no-wait mode; in wait mode requests queue instead.
    """

    code = "LOCK_CONFLICT"

    def __init__(self, message, resource=None, requested=None, holders=()):
        super().__init__(message)
        self.resource = resource
        self.requested = requested
        self.holders = tuple(holders)


class DeadlockError(ConcurrencyError):
    """The wait-for graph contains a cycle involving this transaction."""

    code = "DEADLOCK"

    def __init__(self, message, victim=None, cycle=()):
        super().__init__(message)
        self.victim = victim
        self.cycle = tuple(cycle)


class TransactionStateError(ConcurrencyError):
    """An operation was issued on a transaction in the wrong state."""

    code = "TRANSACTION_STATE"


class SnapshotConflictError(ConcurrencyError):
    """A snapshot transaction's write lost a first-updater-wins race.

    Under snapshot isolation a transaction reading at epoch E may only
    write objects whose newest committed version is still at or below E;
    a version installed above E means a concurrent transaction committed
    first, and blindly overwriting it would be a lost update.  The loser
    aborts and retries at a fresh snapshot.
    """

    code = "SNAPSHOT_CONFLICT"

    def __init__(self, message, uid=None, snapshot_epoch=None,
                 committed_epoch=None):
        super().__init__(message)
        self.uid = uid
        self.snapshot_epoch = snapshot_epoch
        self.committed_epoch = committed_epoch


class SnapshotTooOldError(ConcurrencyError):
    """A snapshot read targeted an epoch below the retained GC floor.

    Version chains are bounded (docs/REPLICATION.md): once the chain
    for an object has been pruned past epoch E, reads at E can no
    longer be served consistently and must retry at a newer epoch.
    """

    code = "SNAPSHOT_TOO_OLD"
    wire_fields = ("epoch", "floor")

    def __init__(self, message, epoch=None, floor=None):
        super().__init__(message)
        self.epoch = epoch
        self.floor = floor


class ReplicaLagError(ConcurrencyError):
    """A replica read required an epoch the replica has not replayed yet.

    Raised when a stale-bounded read asks for ``min_epoch`` above the
    replica's applied epoch; the client can retry, wait, or fall back
    to the primary.
    """

    code = "REPLICA_LAG"
    wire_fields = ("applied_epoch", "min_epoch")

    def __init__(self, message, applied_epoch=None, min_epoch=None):
        super().__init__(message)
        self.applied_epoch = applied_epoch
        self.min_epoch = min_epoch


# ---------------------------------------------------------------------------
# Storage errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for page-store / buffer-pool errors."""

    code = "STORAGE"


class PageFullError(StorageError):
    """A record does not fit in the remaining free space of a page."""

    code = "PAGE_FULL"


class SerializationError(StorageError):
    """A value could not be encoded to or decoded from storage bytes."""

    code = "SERIALIZATION"


class ReadOnlyError(StorageError):
    """A mutating operation reached a server degraded to read-only mode.

    When the journal fails persistently (disk full, dead device) the
    server stops accepting mutations instead of crashing or — worse —
    acknowledging writes it cannot make durable.  Reads keep working
    from the in-memory state; clients see this typed error and can fail
    over or retry elsewhere.
    """

    code = "READ_ONLY"


# ---------------------------------------------------------------------------
# Sharding errors (router / placement layer)
# ---------------------------------------------------------------------------


class ShardError(ReproError):
    """Base class for shard-router and placement errors.

    Raised when a request cannot be mapped onto the shard layout — e.g.
    a single operation referencing objects that live on different shards
    (composite co-location violated), or an operation the router cannot
    distribute.
    """

    code = "SHARD"


class ShardUnavailableError(ShardError):
    """A shard worker is down or unreachable and the request needs it.

    The router raises this after its reconnect-and-retry budget for the
    target worker is exhausted; clients can back off and retry, by which
    time the worker runner may have restarted the worker.
    """

    code = "SHARD_UNAVAILABLE"
    #: Set by the router after construction, not an ``__init__`` param.
    wire_fields = ("shard",)


# ---------------------------------------------------------------------------
# Wire registry
# ---------------------------------------------------------------------------


def error_registry():
    """Map every known ``code`` to its most-derived exception class.

    Walks the live subclass tree of :class:`ReproError`, so errors defined
    outside this module (e.g. the query layer's) are included as long as
    their module has been imported.  When several classes share a code the
    most-derived one wins, keeping inherited codes from shadowing leaves.
    """
    registry = {}

    def visit(cls):
        declared = "code" in vars(cls)
        if declared or cls.code not in registry:
            registry[cls.code] = cls
        for sub in cls.__subclasses__():
            visit(sub)

    visit(ReproError)
    return registry
