"""The transaction manager: strict two-phase locking over the composite
protocol, with undo-based abort.

Every data operation acquires its locks through the Section 7 protocol
(class intention lock + instance lock; whole-composite operations take the
composite plan) and logs an inverse operation.  Locks are held to commit
or abort (strict 2PL).  Lock conflicts raise immediately
(:class:`repro.errors.LockConflictError`) — the synchronous API never
blocks; the discrete-event simulator (:mod:`repro.sim.eventsim`) drives
the lock table's queues directly for waiting semantics.
"""

from __future__ import annotations

from ..errors import TransactionStateError
from ..locking.protocol import CompositeLockingProtocol
from ..locking.table import LockTable
from ..storage.serializer import decode_instance, encode_instance
from .transaction import Transaction, TxnState


class TransactionManager:
    """Transactions over one database."""

    def __init__(self, database, lock_table=None):
        self._db = database
        self.table = lock_table if lock_table is not None else LockTable()
        self.protocol = CompositeLockingProtocol(database, self.table)
        #: Commit / abort counters.
        self.commits = 0
        self.aborts = 0

    # -- lifecycle ----------------------------------------------------------

    def begin(self, snapshot=False, epoch=None):
        """Start a transaction.

        With ``snapshot=True`` the transaction reads at a fixed commit
        epoch (*epoch*, defaulting to the current one) through the
        database's :class:`~repro.mvcc.manager.SnapshotManager` —
        lock-free, consistent, never blocking behind writers.  Its own
        writes still take X-locks and are additionally validated under
        first-updater-wins (snapshot isolation); a read-only snapshot
        transaction is fully serializable (docs/REPLICATION.md).
        """
        txn = Transaction()
        if snapshot:
            manager = self._db.snapshot_manager
            if manager is None:
                raise TransactionStateError(
                    "snapshot transactions need an attached "
                    "SnapshotManager (repro.mvcc)"
                )
            txn.snapshot_epoch = (
                manager.current_epoch if epoch is None else int(epoch)
            )
        return txn

    def commit(self, txn):
        """Commit: make the redo batch durable, discard the undo log,
        release all locks.

        ``on_txn_commit`` listeners (the durability journal) run *before*
        locks release, so a transaction's changes are on disk before any
        conflicting transaction can read them.  Locks release even when
        a listener raises (a journal IO failure surfaces as
        :class:`~repro.errors.StorageError`) — a transaction that cannot
        become durable must not also wedge every lock it holds.
        """
        txn.ensure_active()
        txn.state = TxnState.COMMITTED
        txn.undo_log.clear()
        self.commits += 1
        try:
            for callback in self._db.on_txn_commit:
                callback(txn)
        finally:
            released = self.table.release_all(txn)
        return released

    def abort(self, txn):
        """Abort: apply the undo log in reverse, release all locks.

        The undo pass runs inside the transaction's journal context, so
        under a batching sync policy the compensating records land in the
        same (never-written) batch and the whole batch is dropped by the
        ``on_txn_abort`` listeners — an aborted transaction leaves no
        trace in the journal.
        """
        if txn.state in (TxnState.COMMITTED, TxnState.ABORTED):
            raise TransactionStateError(
                f"transaction {txn.txn_id} is {txn.state.value}"
            )
        try:
            txn.undoing = True
            try:
                with self._db.txn_context(txn):
                    for record in reversed(txn.undo_log):
                        self._undo(record)
            finally:
                txn.undoing = False
            txn.undo_log.clear()
            txn.state = TxnState.ABORTED
            self.aborts += 1
            for callback in self._db.on_txn_abort:
                callback(txn)
        finally:
            # Locks release even when undo or a listener raises — an
            # abort that fails (journal IO) must not wedge the lock
            # table for every other transaction.
            released = self.table.release_all(txn)
        return released

    # -- data operations --------------------------------------------------------

    def read(self, txn, uid, attribute):
        """Read one attribute.

        Strict-2PL transactions take an S instance lock; *snapshot*
        transactions (``begin(snapshot=True)``) read lock-free from the
        version chain at their snapshot epoch — except objects the
        transaction itself wrote, which it re-reads from the live,
        already-X-locked object (read-your-writes).

        The read runs inside ``txn_context`` so passive observers (the
        isolation-history recorder) attribute it to this transaction;
        the journal only reacts to writes, so this costs nothing.
        """
        txn.ensure_active()
        if txn.snapshot_epoch is not None and uid not in txn.written_uids:
            manager = self._db.snapshot_manager
            if manager is not None:
                with self._db.txn_context(txn):
                    return manager.read_at(uid, attribute, txn.snapshot_epoch)
        self.protocol.lock_instance(txn, uid, "read", wait=False)
        with self._db.txn_context(txn):
            return self._db.value(uid, attribute)

    def _check_snapshot_write(self, txn, uid):
        """First-updater-wins validation for snapshot transactions
        (runs *after* the X lock is granted, so the chain tail is
        stable while we compare epochs)."""
        if txn.snapshot_epoch is None:
            return
        manager = self._db.snapshot_manager
        if manager is not None:
            manager.check_write(txn, uid)

    def write(self, txn, uid, attribute, value):
        """Write one attribute under an X instance lock."""
        txn.ensure_active()
        self.protocol.lock_instance(txn, uid, "write", wait=False)
        self._check_snapshot_write(txn, uid)
        with self._db.txn_context(txn):
            old = self._db.value(uid, attribute)
            txn.log("set", uid=uid, attribute=attribute, payload=old)
            self._db.set_value(uid, attribute, value)
        txn.written_uids.add(uid)

    def insert(self, txn, uid, attribute, member):
        """Insert into a set-of attribute under an X instance lock."""
        txn.ensure_active()
        self.protocol.lock_instance(txn, uid, "write", wait=False)
        self._check_snapshot_write(txn, uid)
        with self._db.txn_context(txn):
            inserted = self._db.insert_into(uid, attribute, member)
        if inserted:
            txn.log("insert", uid=uid, attribute=attribute, payload=member)
            txn.written_uids.add(uid)
            return True
        return False

    def remove(self, txn, uid, attribute, member):
        """Remove from a set-of attribute under an X instance lock."""
        txn.ensure_active()
        self.protocol.lock_instance(txn, uid, "write", wait=False)
        self._check_snapshot_write(txn, uid)
        with self._db.txn_context(txn):
            removed = self._db.remove_from(uid, attribute, member)
        if removed:
            txn.log("remove", uid=uid, attribute=attribute, payload=member)
            txn.written_uids.add(uid)
            return True
        return False

    def make(self, txn, class_name, values=None, parents=(), **kw_values):
        """Create an instance; its parents are X-locked first."""
        txn.ensure_active()
        for parent_uid, _attribute in parents:
            self.protocol.lock_instance(txn, parent_uid, "write", wait=False)
        for parent_uid, _attribute in parents:
            self._check_snapshot_write(txn, parent_uid)
        with self._db.txn_context(txn):
            uid = self._db.make(
                class_name, values=values, parents=parents, **kw_values
            )
        txn.log("make", uid=uid)
        txn.written_uids.add(uid)
        for parent_uid, _attribute in parents:
            txn.written_uids.add(parent_uid)
        return uid

    def delete(self, txn, uid):
        """Delete a composite object under the composite write plan.

        The entire cascade is snapshotted for undo.
        """
        txn.ensure_active()
        self.protocol.lock_composite(txn, uid, "write", wait=False)
        self._check_snapshot_write(txn, uid)
        victims = []
        # Snapshot before the engine runs: predict the cascade, image it.
        from ..core.deletion import would_delete

        for victim_uid in would_delete(self._db, uid):
            instance = self._db.peek(victim_uid)
            if instance is not None:
                victims.append(encode_instance(instance))
        with self._db.txn_context(txn):
            report = self._db.delete(uid)
        txn.log("delete", uid=uid, payload=victims)
        txn.written_uids.add(uid)
        return report

    def read_composite(self, txn, root_uid):
        """Lock a whole composite object for reading; return components.

        A snapshot transaction walks the version chains at its epoch
        instead — no composite read plan, no locks."""
        txn.ensure_active()
        if txn.snapshot_epoch is not None \
                and root_uid not in txn.written_uids:
            manager = self._db.snapshot_manager
            if manager is not None:
                with self._db.txn_context(txn):
                    return manager.components_at(
                        root_uid, txn.snapshot_epoch
                    )
        self.protocol.lock_composite(txn, root_uid, "read", wait=False)
        with self._db.txn_context(txn):
            return self._db.components_of(root_uid)

    def lock_composite_for_update(self, txn, root_uid):
        """Take the composite write plan (subsequent writes need no new
        instance locks for components of this composite's classes)."""
        txn.ensure_active()
        return self.protocol.lock_composite(txn, root_uid, "write", wait=False)

    # -- undo ----------------------------------------------------------------

    def _undo(self, record):
        db = self._db
        if record.kind == "set":
            if db.exists(record.uid):
                db.set_value(record.uid, record.attribute, record.payload)
        elif record.kind == "insert":
            if db.exists(record.uid):
                db.remove_from(record.uid, record.attribute, record.payload)
        elif record.kind == "remove":
            if db.exists(record.uid):
                db.insert_into(record.uid, record.attribute, record.payload)
        elif record.kind == "make":
            if db.exists(record.uid):
                db.delete(record.uid)
        elif record.kind == "delete":
            self._resurrect(record.payload)
        else:  # pragma: no cover
            raise TransactionStateError(f"unknown undo record {record.kind!r}")

    def _resurrect(self, images):
        """Re-insert deleted instances from their serialized images."""
        db = self._db
        for image in images:
            instance = decode_instance(image)
            instance.deleted = False
            db._objects[instance.uid] = instance
            db._extents.setdefault(instance.class_name, set()).add(instance.uid)
            db.persist(instance)
