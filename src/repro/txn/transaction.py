"""Transactions.

A :class:`Transaction` is a unit of atomicity and isolation: it carries an
id (ids double as age for deadlock victim selection — higher id = younger),
a state, and an undo log of inverse operations applied on abort.

The undo log records *images*: deleted instances are snapshotted with the
storage serializer before they leave the object table, so an abort can
resurrect an entire deletion cascade byte-for-byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import TransactionStateError


class TxnState(enum.Enum):
    ACTIVE = "active"
    BLOCKED = "blocked"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class UndoRecord:
    """One inverse operation.

    ``kind`` is one of:

    * ``"set"`` — restore *uid.attribute* to ``payload`` (the old value);
    * ``"insert"`` — a member was inserted; undo removes ``payload``;
    * ``"remove"`` — a member was removed; undo re-inserts ``payload``;
    * ``"make"`` — an instance was created; undo deletes it;
    * ``"delete"`` — instances were deleted; ``payload`` is the list of
      serialized images to resurrect (cascade order).
    """

    kind: str
    uid: object = None
    attribute: str = ""
    payload: object = None


class Transaction:
    """One transaction."""

    _next_id = 1

    def __init__(self, txn_id=None):
        if txn_id is None:
            txn_id = Transaction._next_id
            Transaction._next_id += 1
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self.undo_log = []
        #: Number of restarts after deadlock aborts (simulator metric).
        self.restarts = 0
        #: True while the manager replays this transaction's undo log.
        #: Passive observers (the isolation-history recorder) must not
        #: mistake compensating writes for new data operations.
        self.undoing = False
        #: Snapshot epoch this transaction reads at (None = strict-2PL
        #: locked reads).  Set by ``TransactionManager.begin(snapshot=)``;
        #: writes of a snapshot transaction are validated under
        #: first-updater-wins (docs/REPLICATION.md).
        self.snapshot_epoch = None
        #: UIDs this transaction wrote (read-your-writes routing: a
        #: snapshot transaction reads its own writes from the live,
        #: X-locked object instead of the version chain).
        self.written_uids = set()

    # -- state ------------------------------------------------------------

    @property
    def active(self):
        return self.state in (TxnState.ACTIVE, TxnState.BLOCKED)

    def ensure_active(self):
        if not self.active:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    # -- undo logging -------------------------------------------------------

    def log(self, kind, uid=None, attribute="", payload=None):
        self.ensure_active()
        self.undo_log.append(
            UndoRecord(kind=kind, uid=uid, attribute=attribute, payload=payload)
        )

    def __repr__(self):
        return f"<Txn {self.txn_id} {self.state.value} undo={len(self.undo_log)}>"

    def __hash__(self):
        return hash(self.txn_id)

    def __eq__(self, other):
        return isinstance(other, Transaction) and other.txn_id == self.txn_id

    def __lt__(self, other):
        return self.txn_id < other.txn_id
