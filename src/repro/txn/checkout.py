"""Check-out / check-in for long-duration design transactions.

The paper closes Section 7: "Both the original protocol of [KIM87b] and
the extended protocol ... may not be suitable for long-duration
transactions ... An appropriate locking protocol for long-duration
transactions is still a research issue."  The approach design systems
(including later ORION work) converged on is the *check-out model*: copy
the composite object into a private workspace, hold a persistent lock on
the public original, edit the copy without any locking, and merge back on
check-in.

:class:`CheckoutManager` implements that model on this substrate:

* ``checkout`` takes the Section 7 composite lock plan (persistent — it
  outlives any short transaction) and builds a private working copy via
  :func:`repro.core.compose.copy_composite`, remembering the
  original-to-copy correspondence;
* workspace edits are ordinary database operations on the copy;
* ``checkin`` merges the workspace back through the correspondence:
  scalar and weak values are written back; exclusive components added in
  the workspace move to the original; components removed in the workspace
  are detached from the original (and deleted when the reference was
  dependent — the workspace edit stands for an in-place edit); shared
  memberships are synchronized.  The workspace is then destroyed and the
  lock released;
* ``abandon`` destroys the workspace and releases the lock, leaving the
  original untouched — a long transaction's rollback without any undo
  log.

Concurrent behaviour follows the composite lock: a write checkout blocks
other checkouts of the same composite (and direct writers of its
component classes) but not checkouts of disjoint composites.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.compose import copy_composite
from ..errors import ConcurrencyError
from ..locking.protocol import CompositeLockingProtocol
from ..locking.table import LockTable


@dataclass
class Checkout:
    """One live checkout."""

    handle: int
    user: str
    intent: str
    original_root: object
    working_root: object
    #: original UID -> workspace UID, for every copied object.
    mapping: dict = field(default_factory=dict)
    #: Every object belonging to the workspace: the copies plus anything
    #: created and linked under them afterwards.  Destroyed on abandon
    #: (and on checkin, minus adopted objects).
    workspace_objects: set = field(default_factory=set)
    active: bool = True

    def workspace_of(self, original_uid):
        """The workspace counterpart of an original object."""
        return self.mapping.get(original_uid)


class CheckoutManager:
    """Long-duration design transactions over one database."""

    _handles = itertools.count(1)

    def __init__(self, database, lock_table=None):
        self._db = database
        self.table = lock_table if lock_table is not None else LockTable()
        self.protocol = CompositeLockingProtocol(database, self.table)
        self._checkouts = {}
        # Objects linked under a workspace join that workspace (so abandon
        # can destroy pins created-then-detached inside it).
        database.on_link.append(self._note_link)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def checkout(self, user, root_uid, intent="write"):
        """Copy the composite at *root_uid* into a private workspace.

        Raises :class:`repro.errors.LockConflictError` when another
        checkout (or short transaction) holds an incompatible composite
        lock.
        """
        handle = next(self._handles)
        token = ("checkout", handle)
        self.protocol.lock_composite(token, root_uid, intent, wait=False)
        working_root, mapping = copy_composite(
            self._db, root_uid, with_mapping=True
        )
        checkout = Checkout(
            handle=handle,
            user=user,
            intent=intent,
            original_root=root_uid,
            working_root=working_root,
            mapping=mapping,
            workspace_objects=set(mapping.values()),
        )
        self._checkouts[handle] = (checkout, token)
        return checkout

    def _note_link(self, parent, _spec, child):
        for checkout, _token in self._checkouts.values():
            if parent.uid in checkout.workspace_objects:
                checkout.workspace_objects.add(child.uid)

    def checkin(self, checkout):
        """Merge the workspace back into the original and release."""
        self._ensure_active(checkout)
        if checkout.intent != "write":
            raise ConcurrencyError(
                "read checkouts cannot be checked in; use abandon()"
            )
        reverse = {copy: orig for orig, copy in checkout.mapping.items()}
        for original_uid, working_uid in list(checkout.mapping.items()):
            if self._db.exists(original_uid) and self._db.exists(working_uid):
                self._merge_object(checkout, reverse, original_uid, working_uid)
        # Components deleted in the workspace: their originals follow.
        for original_uid, working_uid in list(checkout.mapping.items()):
            if not self._db.exists(working_uid) and self._db.exists(original_uid):
                if original_uid != checkout.original_root:
                    self._db.delete(original_uid)
        self._destroy_workspace(checkout)
        self._release(checkout)
        return checkout.original_root

    def abandon(self, checkout):
        """Discard the workspace; the original is untouched."""
        self._ensure_active(checkout)
        self._destroy_workspace(checkout)
        self._release(checkout)

    def active_checkouts(self):
        return [entry[0] for entry in self._checkouts.values()]

    # ------------------------------------------------------------------
    # Merge internals
    # ------------------------------------------------------------------

    def _merge_object(self, checkout, reverse, original_uid, working_uid):
        original = self._db.resolve(original_uid)
        working = self._db.resolve(working_uid)
        classdef = self._db.lattice.get(original.class_name)
        for spec in classdef.attributes():
            if spec.is_composite and spec.exclusive:
                self._merge_exclusive(
                    checkout, reverse, original_uid, working, spec
                )
            elif spec.is_set:
                self._sync_set(original_uid, working.get(spec.name) or [],
                               spec.name)
            else:
                value = working.get(spec.name)
                if original.get(spec.name) != value:
                    self._db.set_value(original_uid, spec.name, value)

    def _merge_exclusive(self, checkout, reverse, original_uid, working, spec):
        """Reconcile one exclusive composite attribute via the mapping."""
        db = self._db
        working_members = working.get(spec.name)
        if not spec.is_set:
            working_members = [] if working_members is None else [working_members]
        # Desired membership, expressed in original-object terms.
        desired = []
        for member in working_members:
            original_member = reverse.get(member)
            if original_member is not None and db.exists(original_member):
                desired.append(original_member)
            elif db.exists(member):
                desired.append(member)  # created in the workspace: adopt it
        original = db.resolve(original_uid)
        current = original.get(spec.name)
        if not spec.is_set:
            current = [] if current is None else [current]
        for gone in [m for m in current if m not in desired]:
            db.remove_part_of(gone, original_uid, spec.name)
            if spec.dependent and db.exists(gone):
                db.delete(gone)
        for added in [m for m in desired if m not in current]:
            holder = db.peek(added)
            if holder is not None and holder.reverse_references:
                # An object adopted from the workspace: detach it from its
                # workspace parents first (an exclusive reference allows
                # one parent).
                for ref in list(holder.reverse_references):
                    db.remove_part_of(added, ref.parent, ref.attribute)
            # It is no longer part of the workspace to destroy.
            checkout.workspace_objects.discard(added)
            for orig, copy in list(checkout.mapping.items()):
                if copy == added:
                    del checkout.mapping[orig]
            db.make_part_of(added, original_uid, spec.name)

    def _sync_set(self, original_uid, working_members, attribute):
        """Synchronize a shared-composite or weak set attribute."""
        db = self._db
        from ..core.identity import UID

        current = db.value(original_uid, attribute)
        for gone in [m for m in current if m not in working_members]:
            db.remove_from(original_uid, attribute, gone)
        for added in [m for m in working_members if m not in current]:
            if not isinstance(added, UID) or db.exists(added):
                db.insert_into(original_uid, attribute, added)

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------

    def _destroy_workspace(self, checkout):
        root = checkout.working_root
        if self._db.exists(root):
            self._db.delete(root)
        for working_uid in checkout.workspace_objects:
            if self._db.exists(working_uid):
                self._db.delete(working_uid)

    def _release(self, checkout):
        checkout.active = False
        entry = self._checkouts.pop(checkout.handle, None)
        if entry is not None:
            self.table.release_all(entry[1])

    def _ensure_active(self, checkout):
        if not checkout.active or checkout.handle not in self._checkouts:
            raise ConcurrencyError(
                f"checkout {checkout.handle} is no longer active"
            )
