"""Transaction subsystem: strict 2PL over the composite locking protocol,
undo-log-based abort (deletion cascades are image-logged and resurrected)."""

from .checkout import Checkout, CheckoutManager
from .manager import TransactionManager
from .transaction import Transaction, TxnState, UndoRecord

__all__ = [
    "Checkout",
    "CheckoutManager",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "UndoRecord",
]
