"""Static analysis and integrity checking for the composite-object DB.

Three planes over one findings model (:mod:`repro.analysis.findings`):

* Plane 1 — :class:`SchemaAnalyzer` (static schema/topology analysis and
  schema-evolution pre-flight) and :func:`check_query` (static query
  validation), both schema-only: no instance is touched.
* Plane 2 — :func:`fsck_database`, the offline integrity checker that
  walks a whole database and verifies every invariant end-to-end.
* Plane 3 — the concurrency pass: :class:`LockOrderRecorder` (lockdep-
  style latent-deadlock detection from runs that never deadlocked),
  :func:`analyze_templates` (the same lock-order analysis predicted
  statically from transaction templates), and :func:`lint_package`
  (AST linter enforcing the codebase's concurrency/durability
  discipline on ``src/repro`` itself).

The ``repro-check`` console script (:mod:`repro.analysis.cli`) and the
server's ``check`` op expose all three planes.
"""

from .codelint import lint_package, lint_source
from .findings import Finding, Report, Severity
from .fsck import fsck_database
from .lockdep import LockOrderGraph, LockOrderRecorder
from .locklint import TransactionTemplate, analyze_templates
from .query_check import check_query
from .schema_check import EVOLUTION_CHANGES, SchemaAnalyzer

__all__ = [
    "EVOLUTION_CHANGES",
    "Finding",
    "LockOrderGraph",
    "LockOrderRecorder",
    "Report",
    "SchemaAnalyzer",
    "Severity",
    "TransactionTemplate",
    "analyze_templates",
    "check_query",
    "fsck_database",
    "lint_package",
    "lint_source",
]
