"""Static analysis and integrity checking for the composite-object DB.

Four planes over one findings model (:mod:`repro.analysis.findings`):

* Plane 1 — :class:`SchemaAnalyzer` (static schema/topology analysis and
  schema-evolution pre-flight) and :func:`check_query` (static query
  validation), both schema-only: no instance is touched.
* Plane 2 — :func:`fsck_database`, the offline integrity checker that
  walks a whole database and verifies every invariant end-to-end.
* Plane 3 — the concurrency pass: :class:`LockOrderRecorder` (lockdep-
  style latent-deadlock detection from runs that never deadlocked),
  :func:`analyze_templates` (the same lock-order analysis predicted
  statically from transaction templates), and :func:`lint_package`
  (AST linter enforcing the codebase's concurrency/durability
  discipline on ``src/repro`` itself).
* Plane 4 — the protocol pass: :func:`check_protocol` (exhaustive
  explicit-state model checking of the 2PC coordinator/worker state
  machines, crash-at-failpoint-site and recovery included),
  :func:`conform_trace` (recorded durable traces must be
  linearizations the model allows), and the drift lints
  :func:`lint_protocol_sites` / :func:`lint_wire_ops` that keep the
  model honest against the implementation.

The ``repro-check`` console script (:mod:`repro.analysis.cli`) and the
server's ``check`` op expose all four planes.
"""

from .codelint import lint_package, lint_source
from .findings import Finding, Report, Severity
from .fsck import fsck_database
from .lockdep import LockOrderGraph, LockOrderRecorder
from .locklint import TransactionTemplate, analyze_templates
from .proto_model import Scope
from .protocheck import (
    check_protocol,
    conform_trace,
    conform_traces,
    explore,
    extract_trace,
    lint_protocol_sites,
    lint_wire_ops,
)
from .query_check import check_query
from .schema_check import EVOLUTION_CHANGES, SchemaAnalyzer

__all__ = [
    "EVOLUTION_CHANGES",
    "Finding",
    "LockOrderGraph",
    "LockOrderRecorder",
    "Report",
    "SchemaAnalyzer",
    "Scope",
    "Severity",
    "TransactionTemplate",
    "analyze_templates",
    "check_protocol",
    "check_query",
    "conform_trace",
    "conform_traces",
    "explore",
    "extract_trace",
    "fsck_database",
    "lint_package",
    "lint_protocol_sites",
    "lint_source",
    "lint_wire_ops",
]
