"""Static analysis and integrity checking for the composite-object DB.

Five planes over one findings model (:mod:`repro.analysis.findings`):

* Plane 1 — :class:`SchemaAnalyzer` (static schema/topology analysis and
  schema-evolution pre-flight) and :func:`check_query` (static query
  validation), both schema-only: no instance is touched.
* Plane 2 — :func:`fsck_database`, the offline integrity checker that
  walks a whole database and verifies every invariant end-to-end.
* Plane 3 — the concurrency pass: :class:`LockOrderRecorder` (lockdep-
  style latent-deadlock detection from runs that never deadlocked),
  :func:`analyze_templates` (the same lock-order analysis predicted
  statically from transaction templates), and :func:`lint_package`
  (AST linter enforcing the codebase's concurrency/durability
  discipline on ``src/repro`` itself).
* Plane 4 — the protocol pass: :func:`check_protocol` (exhaustive
  explicit-state model checking of the 2PC coordinator/worker state
  machines, crash-at-failpoint-site and recovery included),
  :func:`conform_trace` (recorded durable traces must be
  linearizations the model allows), and the drift lints
  :func:`lint_protocol_sites` / :func:`lint_wire_ops` that keep the
  model honest against the implementation.
* Plane 5 — the isolation pass: :class:`HistoryRecorder` (a passive
  observer that captures every transaction's read/write/delete
  footprint into a serializable :class:`History`),
  :func:`check_history` (Adya-style Direct Serialization Graph
  analysis reporting G0/G1/G2 anomalies with minimal witness cycles,
  plus lost-update / write-skew classifiers), and
  :func:`predict_isolation` (the same anomalies predicted from
  transaction templates alone: what breaks if reads stop locking).

The ``repro-check`` console script (:mod:`repro.analysis.cli`) and the
server's ``check`` op expose all five planes; the
:data:`~repro.analysis.findings.PLANES` registry keeps the three
surfaces from drifting apart.
"""

from .codelint import lint_package, lint_source
from .findings import Finding, PlaneSpec, PLANES, Report, Severity
from .fsck import fsck_database
from .history import Event, History, HistoryRecorder
from .isocheck import check_history, predict_isolation
from .lockdep import LockOrderGraph, LockOrderRecorder
from .locklint import TransactionTemplate, analyze_templates
from .proto_model import Scope
from .protocheck import (
    check_protocol,
    conform_trace,
    conform_traces,
    explore,
    extract_trace,
    lint_protocol_sites,
    lint_wire_ops,
)
from .query_check import check_query
from .schema_check import EVOLUTION_CHANGES, SchemaAnalyzer

__all__ = [
    "EVOLUTION_CHANGES",
    "Event",
    "Finding",
    "History",
    "HistoryRecorder",
    "LockOrderGraph",
    "LockOrderRecorder",
    "PLANES",
    "PlaneSpec",
    "Report",
    "SchemaAnalyzer",
    "Scope",
    "Severity",
    "TransactionTemplate",
    "analyze_templates",
    "check_history",
    "check_protocol",
    "check_query",
    "conform_trace",
    "conform_traces",
    "explore",
    "extract_trace",
    "fsck_database",
    "lint_package",
    "lint_protocol_sites",
    "lint_source",
    "lint_wire_ops",
    "predict_isolation",
]
