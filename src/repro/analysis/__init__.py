"""Static analysis and integrity checking for the composite-object DB.

Two planes over one findings model (:mod:`repro.analysis.findings`):

* Plane 1 — :class:`SchemaAnalyzer` (static schema/topology analysis and
  schema-evolution pre-flight) and :func:`check_query` (static query
  validation), both schema-only: no instance is touched.
* Plane 2 — :func:`fsck_database`, the offline integrity checker that
  walks a whole database and verifies every invariant end-to-end.

The ``repro-check`` console script (:mod:`repro.analysis.cli`) and the
server's ``check`` op expose both planes.
"""

from .findings import Finding, Report, Severity
from .fsck import fsck_database
from .query_check import check_query
from .schema_check import EVOLUTION_CHANGES, SchemaAnalyzer

__all__ = [
    "EVOLUTION_CHANGES",
    "Finding",
    "Report",
    "SchemaAnalyzer",
    "Severity",
    "check_query",
    "fsck_database",
]
