"""The shared findings model of every analysis plane.

Every check in :mod:`repro.analysis` — the static schema analyzer and the
offline integrity checker (fsck) — reports problems the same way: as a
:class:`Finding` with a severity, a stable machine-readable rule id, a
location (a class, ``Class.attribute``, or an object UID), and a
human-readable message.  A :class:`Report` collects the findings of one
run and renders them for terminals (one line per finding) and machines
(JSON), so CI gates, the ``repro-check`` CLI, and the server's ``check``
op all speak the same schema.

Rule-id convention: ``<PLANE>-<NAME>`` where the plane prefix is ``SCH``
(schema analyzer), ``EVO`` (schema-evolution pre-flight), ``QRY`` (static
query validation), ``FSCK`` (database integrity), ``LOCKDEP`` (runtime
lock-order recording), ``LOCK`` (static lock-order prediction),
``CODE`` (AST discipline lint), ``PROTO`` (2PC protocol model
checking, trace refinement, and the site/op drift lints), or ``ISO``
(transaction-history isolation checking and template-mode anomaly
prediction).  Ids are stable wire contract — tests, CI diffs, and
remote clients match on them, never on messages.

The :data:`PLANES` registry below is the single source of truth for how
the planes surface: which rule prefixes each owns, which ``repro-check``
subcommands expose it, and which server ``check``-op plane names run it.
The drift test (``tests/test_isocheck.py``) asserts the CLI and the
server dispatch stay consistent with this table.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


class Severity(enum.IntEnum):
    """How bad a finding is.

    * ``INFO`` — worth knowing, not wrong (e.g. a dangling weak reference,
      which the Deletion Rule legitimately leaves behind).
    * ``WARNING`` — a suspect design or risky change: legal today, likely
      to violate a topology rule or strand objects later.
    * ``ERROR`` — an invariant of the paper is violated, or an operation
      can never succeed.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Finding:
    """One problem reported by an analysis plane."""

    #: How severe the problem is.
    severity: Severity
    #: Stable machine-readable rule identifier (e.g. ``FSCK-RULE1``).
    rule: str
    #: Where: a class name, ``Class.attribute``, or an object UID string.
    location: str
    #: Human-readable description, actionable without a second query.
    message: str
    #: Extra machine-readable context (UIDs stringified for JSON).
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering (the wire/CLI schema)."""
        return {
            "severity": self.severity.label,
            "rule": self.rule,
            "location": self.location,
            "message": self.message,
            "detail": {key: _jsonable(value) for key, value in self.detail.items()},
        }

    def __str__(self) -> str:
        return f"{self.severity.label:7s} {self.rule:22s} {self.location}: {self.message}"


class Report:
    """The findings of one analysis run."""

    def __init__(
        self, plane: str = "", findings: Optional[list[Finding]] = None
    ) -> None:
        #: Which plane produced the report (``schema``, ``fsck``, ...).
        self.plane = plane
        self.findings: list[Finding] = list(findings or [])
        #: Objects / classes / forms examined (coverage metric).
        self.checked = 0

    # -- recording ---------------------------------------------------------

    def add(
        self,
        severity: Severity,
        rule: str,
        location: Any,
        message: str,
        **detail: Any,
    ) -> Finding:
        """Append one finding (location is stringified)."""
        finding = Finding(
            severity=severity,
            rule=rule,
            location=str(location),
            message=message,
            detail=detail,
        )
        self.findings.append(finding)
        return finding

    def extend(self, other: "Report") -> "Report":
        """Fold *other*'s findings and coverage into this report."""
        self.findings.extend(other.findings)
        self.checked += other.checked
        return self

    # -- queries ------------------------------------------------------------

    def by_severity(self, severity: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def rules(self) -> set[str]:
        """The distinct rule ids present in this report."""
        return {f.rule for f in self.findings}

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Finding]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when nothing at WARNING level or above was found."""
        return not self.errors and not self.warnings

    @property
    def clean(self) -> bool:
        """True when nothing at all was found (INFO included)."""
        return not self.findings

    # -- rendering -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "plane": self.plane,
            "checked": self.checked,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        return (
            f"{self.plane or 'analysis'}: checked {self.checked}, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )

    def render(self) -> str:
        """Terminal rendering: one line per finding plus the summary."""
        lines = [str(f) for f in sorted(
            self.findings, key=lambda f: (-f.severity, f.rule, f.location)
        )]
        lines.append(self.summary())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __repr__(self) -> str:
        return f"<Report {self.plane!r} {self.summary()!r}>"


@dataclass(frozen=True, slots=True)
class PlaneSpec:
    """How one analysis plane surfaces across the toolchain."""

    #: Registry key (also the usual ``Report.plane`` value).
    name: str
    #: Rule-id prefixes this plane owns (``ISO`` matches ``ISO-G2``).
    prefixes: tuple[str, ...]
    #: ``repro-check`` subcommands that run (part of) this plane.
    cli: tuple[str, ...]
    #: Server ``check``-op plane names that run (part of) this plane.
    server: tuple[str, ...]
    #: One-line description (``repro-check --help`` epilogues).
    description: str


#: The five analysis planes (see the module docstring).
PLANES: tuple[PlaneSpec, ...] = (
    PlaneSpec(
        name="schema",
        prefixes=("SCH", "EVO", "QRY"),
        cli=("schema", "query"),
        server=("schema", "query"),
        description="static schema/topology analysis, evolution "
                    "pre-flight, and query validation",
    ),
    PlaneSpec(
        name="fsck",
        prefixes=("FSCK",),
        cli=("fsck",),
        server=("fsck", "placement"),
        description="offline integrity checking of a whole database "
                    "(placement-aware on shard workers)",
    ),
    PlaneSpec(
        name="concurrency",
        prefixes=("LOCKDEP", "LOCK", "CODE"),
        cli=("lockdep", "locklint", "code"),
        server=("lockdep", "code"),
        description="lock-order recording/prediction and the AST "
                    "discipline lint",
    ),
    PlaneSpec(
        name="proto",
        prefixes=("PROTO",),
        cli=("proto",),
        server=("proto",),
        description="2PC model checking, trace refinement, and drift "
                    "lints",
    ),
    PlaneSpec(
        name="iso",
        prefixes=("ISO",),
        cli=("iso",),
        server=("iso",),
        description="transaction-history isolation checking (Adya DSG) "
                    "and template-mode anomaly prediction",
    ),
)


def plane_for_rule(rule: str) -> Optional[PlaneSpec]:
    """The plane owning *rule* by prefix (longest prefix wins, so
    ``LOCKDEP-`` beats ``LOCK-``)."""
    best: Optional[PlaneSpec] = None
    best_len = -1
    for spec in PLANES:
        for prefix in spec.prefixes:
            if rule.startswith(prefix + "-") and len(prefix) > best_len:
                best, best_len = spec, len(prefix)
    return best


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return str(value)
