"""Static validation of s-expression queries against a schema.

Checks ORION messages *before* the interpreter runs them: unknown
messages, unknown classes, unknown attributes, and domain mismatches are
all decidable from the class lattice alone, so a client (or CI) can vet a
query corpus without touching any instance.  The checker is deliberately
conservative: anything it cannot decide statically (values of variables,
UID-typed arguments) passes silently — a finding here means the
interpreter *will* fail or the predicate can never be satisfied.

Rule ids
--------
``QRY-SYNTAX``            error    the text does not parse
``QRY-UNKNOWN-MESSAGE``   error    the head symbol is not an ORION message
``QRY-UNKNOWN-CLASS``     error    a class designator names no class
``QRY-UNKNOWN-ATTRIBUTE`` error    a predicate names an attribute the
                                   class does not have
``QRY-DOMAIN-MISMATCH``   error    a literal compared against a primitive
                                   attribute can never be in its domain
``QRY-NOT-SET``           error    ``contains`` applied to a single-valued
                                   attribute
``QRY-UNORDERED-COMPARE`` warning  ``<``/``>`` comparison on a
                                   non-primitive (UID-valued) attribute
"""

from __future__ import annotations

from typing import Any

from ..query.sexpr import (
    Keyword,
    QUOTE,
    QuerySyntaxError,
    Symbol,
    parse_all,
)
from .findings import Report, Severity

#: Messages the interpreter understands (mirrors Interpreter._handlers;
#: test_analysis pins the two lists against each other).
KNOWN_MESSAGES = frozenset({
    "make-class", "make", "setq", "get", "set", "insert", "remove",
    "delete", "make-part-of", "remove-part-of", "components-of",
    "children-of", "parents-of", "ancestors-of", "component-of",
    "child-of", "exclusive-component-of", "shared-component-of",
    "compositep", "exclusive-compositep", "shared-compositep",
    "dependent-compositep", "select", "create-index", "instances-of",
    "describe", "make-shared", "make-exclusive", "make-independent",
    "make-dependent", "make-noncomposite", "make-exclusive-composite",
    "make-shared-composite", "drop-attribute", "rename-attribute",
    "rename-class", "drop-class", "quote",
})

#: Messages whose first positional argument is a class designator.
_CLASS_HEADED = frozenset({
    "make", "select", "instances-of", "describe", "create-index",
    "compositep", "exclusive-compositep", "shared-compositep",
    "dependent-compositep", "make-shared", "make-exclusive",
    "make-independent", "make-dependent", "make-noncomposite",
    "make-exclusive-composite", "make-shared-composite",
    "drop-attribute", "rename-attribute", "drop-class",
})

#: Messages taking (Class Attribute ...) whose attribute must exist.
_CLASS_ATTRIBUTE = frozenset({
    "create-index", "make-shared", "make-exclusive", "make-independent",
    "make-dependent", "make-noncomposite", "drop-attribute",
    "rename-attribute",
})

_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")
_ORDERED = ("<", "<=", ">", ">=")


def check_query(lattice: Any, text: str) -> Report:
    """Statically validate every form in *text*; returns a :class:`Report`."""
    report = Report(plane="query")
    try:
        forms = parse_all(text)
    except QuerySyntaxError as error:
        report.add(Severity.ERROR, "QRY-SYNTAX", "<input>", str(error))
        return report
    checker = _QueryChecker(lattice, report)
    for form in forms:
        checker.check_form(form)
    report.checked = len(forms)
    return report


class _QueryChecker:
    """Walks parsed forms, accumulating findings."""

    def __init__(self, lattice: Any, report: Report) -> None:
        self.lattice = lattice
        self.report = report
        #: setq-bound variable names seen so far (their values are opaque).
        self.bound = set()

    # -- helpers -----------------------------------------------------------

    def _unquote(self, form: Any) -> Any:
        if isinstance(form, list) and form and form[0] == QUOTE:
            return form[1]
        return form

    def _class_designator(self, form: Any) -> Any:
        """The class name a form designates, or None when not static."""
        form = self._unquote(form)
        if isinstance(form, Symbol):
            return form.name
        if isinstance(form, str):
            return form
        return None

    def _resolve_class(self, form: Any, context: str) -> Any:
        """Look a class designator up in the lattice, reporting misses."""
        name = self._class_designator(form)
        if name is None or name in self.bound:
            return None
        if name not in self.lattice:
            self.report.add(
                Severity.ERROR,
                "QRY-UNKNOWN-CLASS",
                context,
                f"unknown class {name!r}",
                class_name=name,
            )
            return None
        return self.lattice.get(name)

    # -- form dispatch ------------------------------------------------------

    def check_form(self, form: Any) -> None:
        if not isinstance(form, list) or not form:
            return
        head = form[0]
        if not isinstance(head, Symbol):
            return
        name = head.name
        if name == "quote":
            return
        if name not in KNOWN_MESSAGES:
            self.report.add(
                Severity.ERROR,
                "QRY-UNKNOWN-MESSAGE",
                name,
                f"unknown message {name!r}",
            )
            return
        args = form[1:]
        if name == "setq":
            if len(args) == 2 and isinstance(args[0], Symbol):
                self.bound.add(args[0].name)
                self.check_form(args[1])
            return
        classdef = None
        if name in _CLASS_HEADED and args:
            classdef = self._resolve_class(args[0], name)
        if name in _CLASS_ATTRIBUTE and classdef is not None and len(args) > 1:
            attr = self._attribute_name(args[1])
            if attr is not None and not classdef.has_attribute(attr):
                self.report.add(
                    Severity.ERROR,
                    "QRY-UNKNOWN-ATTRIBUTE",
                    f"{classdef.name}.{attr}",
                    f"class {classdef.name!r} has no attribute {attr!r}",
                    class_name=classdef.name,
                    attribute=attr,
                )
        if name == "select" and classdef is not None and len(args) > 1:
            self._check_predicate(classdef, args[1])
        if name == "make" and classdef is not None:
            self._check_make(classdef, args[1:])
        # Nested forms evaluate too (e.g. (delete (make ...))).
        for arg in args:
            if isinstance(arg, list) and arg and isinstance(arg[0], Symbol) \
                    and arg[0].name in KNOWN_MESSAGES and name != "make":
                self.check_form(arg)

    @staticmethod
    def _attribute_name(form: Any) -> Any:
        if isinstance(form, Symbol):
            return form.name
        if isinstance(form, str):
            return form
        return None

    # -- make ---------------------------------------------------------------

    def _check_make(self, classdef: Any, args: Any) -> None:
        """Keyword values of ``make`` must name effective attributes."""
        index = 0
        while index < len(args):
            item = args[index]
            if isinstance(item, Keyword):
                if item.name not in ("parent",) and not classdef.has_attribute(
                    item.name
                ):
                    self.report.add(
                        Severity.ERROR,
                        "QRY-UNKNOWN-ATTRIBUTE",
                        f"{classdef.name}.{item.name}",
                        f"make: class {classdef.name!r} has no attribute "
                        f"{item.name!r}",
                        class_name=classdef.name,
                        attribute=item.name,
                    )
                index += 2
            else:
                index += 1

    # -- select predicates ---------------------------------------------------

    def _check_predicate(self, classdef: Any, predicate: Any) -> None:
        if not isinstance(predicate, list) or not predicate:
            return
        op = predicate[0]
        if not isinstance(op, Symbol):
            return
        name = op.name
        if name in ("and", "or"):
            for sub in predicate[1:]:
                self._check_predicate(classdef, sub)
            return
        if name == "not":
            if len(predicate) > 1:
                self._check_predicate(classdef, predicate[1])
            return
        if name in ("part-of", "has-part"):
            return  # target is a runtime UID; nothing static to check
        if name == "contains":
            spec = self._predicate_spec(classdef, predicate)
            if spec is not None and not spec.is_set:
                self.report.add(
                    Severity.ERROR,
                    "QRY-NOT-SET",
                    f"{classdef.name}.{spec.name}",
                    f"contains: {classdef.name}.{spec.name} is "
                    f"single-valued",
                    attribute=spec.name,
                )
            return
        if name in _COMPARISONS:
            spec = self._predicate_spec(classdef, predicate)
            if spec is None or len(predicate) < 3:
                return
            literal = self._unquote(predicate[2])
            if isinstance(literal, Symbol):
                return  # a variable — value unknown statically
            if spec.is_primitive and literal is not None \
                    and not spec.accepts_primitive(literal):
                self.report.add(
                    Severity.ERROR,
                    "QRY-DOMAIN-MISMATCH",
                    f"{classdef.name}.{spec.name}",
                    f"{name}: literal {literal!r} can never be in domain "
                    f"{spec.domain_class!r} of {classdef.name}.{spec.name}",
                    attribute=spec.name,
                    domain=spec.domain_class,
                )
            if name in _ORDERED and not spec.is_primitive:
                self.report.add(
                    Severity.WARNING,
                    "QRY-UNORDERED-COMPARE",
                    f"{classdef.name}.{spec.name}",
                    f"{name}: {classdef.name}.{spec.name} holds object "
                    f"references; ordered comparison is never satisfied",
                    attribute=spec.name,
                )
            return
        self.report.add(
            Severity.ERROR,
            "QRY-UNKNOWN-MESSAGE",
            name,
            f"unknown predicate {name!r}",
        )

    def _predicate_spec(self, classdef: Any, predicate: Any) -> Any:
        """The AttributeSpec a predicate's attribute names, or None."""
        if len(predicate) < 2:
            return None
        attr = self._attribute_name(predicate[1])
        if attr is None:
            return None
        if not classdef.has_attribute(attr):
            self.report.add(
                Severity.ERROR,
                "QRY-UNKNOWN-ATTRIBUTE",
                f"{classdef.name}.{attr}",
                f"class {classdef.name!r} has no attribute {attr!r}",
                class_name=classdef.name,
                attribute=attr,
            )
            return None
        return classdef.attribute(attr)
