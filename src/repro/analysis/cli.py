"""``repro-check`` — the command-line front end of :mod:`repro.analysis`.

Four commands, all reporting through the shared findings model:

``repro-check schema DIR``
    Recover the class lattice of a durable store (read-only) and run the
    static schema analyzer over it.

``repro-check fsck DIR``
    Recover a durable store (read-only) and audit every invariant: the
    offline integrity checker.

``repro-check query DIR FILE...``
    Statically validate s-expression query files against a store's
    schema, without executing anything.

``repro-check self-test`` (also reachable as ``repro-check --self-test``)
    Build every seed workload and figure scenario in memory, run the
    schema analyzer over each lattice (no errors allowed) and fsck over
    each database (no findings allowed).  CI runs this so schema
    regressions fail the build.

Exit codes: 0 — no errors (``--strict``: no warnings either); 1 —
findings at the gating severity; 2 — usage or I/O problems.
"""

from __future__ import annotations

import argparse
import sys

from .findings import Report
from .fsck import fsck_database
from .query_check import check_query
from .schema_check import SchemaAnalyzer


def _open_store(directory):
    """Recover a durable store read-only (no journal is created/appended)."""
    from pathlib import Path

    from ..core.database import Database
    from ..storage.journal import Journal

    if not Path(directory).is_dir():
        raise OSError(f"no store directory at {directory}")
    db = Database()
    Journal.recover_into(db, directory)
    return db


def _emit(report, options):
    if options.json:
        print(report.to_json())
    elif options.quiet:
        print(report.summary())
    else:
        print(report.render())


def _exit_code(report, options):
    if report.errors:
        return 1
    if options.strict and report.warnings:
        return 1
    return 0


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def _cmd_schema(options):
    db = _open_store(options.directory)
    report = SchemaAnalyzer(db.lattice).analyze()
    _emit(report, options)
    return _exit_code(report, options)


def _cmd_fsck(options):
    db = _open_store(options.directory)
    report = fsck_database(db)
    _emit(report, options)
    return _exit_code(report, options)


def _cmd_query(options):
    db = _open_store(options.directory)
    report = Report(plane="query")
    for path in options.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"repro-check: cannot read {path}: {error}", file=sys.stderr)
            return 2
        partial = check_query(db.lattice, text)
        for finding in partial:
            report.findings.append(finding)
        report.checked += partial.checked
    _emit(report, options)
    return _exit_code(report, options)


# ----------------------------------------------------------------------
# Self-test: the seed workloads and figures, analyzed and fsck'd
# ----------------------------------------------------------------------

def _seed_scenarios():
    """Yield ``(name, database, managers)`` for every seed scenario.

    Each scenario is built through the public API, so the analyzer must
    find no schema errors and fsck must find nothing at all.
    """
    from ..core.database import Database
    from ..versions.manager import VersionManager
    from ..workloads.cad import build_design_bench
    from ..workloads.documents import build_corpus, define_document_schema
    from ..workloads.figures import build_figure4, build_figure5, build_figure9
    from ..workloads.parts import (
        build_assembly,
        build_fleet,
        build_part_tree,
        define_vehicle_schema,
    )

    db = Database()
    define_vehicle_schema(db)
    build_fleet(db, 5)
    yield "vehicle-fleet", db

    db = Database()
    build_part_tree(db, depth=3, fanout=3)
    yield "part-tree", db

    db = Database()
    build_assembly(db, depth=2, fanout=3)
    yield "assembly", db

    for name, builder in (
        ("figure4", build_figure4),
        ("figure5", build_figure5),
        ("figure9", build_figure9),
    ):
        db = Database()
        builder(db)
        yield name, db

    db = Database()
    define_document_schema(db)
    build_corpus(db, documents=4)
    yield "documents", db

    db = Database()
    versions = VersionManager(db)
    build_design_bench(db, versions)
    yield "cad-versions", db


def _cmd_self_test(options):
    failed = 0
    for name, db in _seed_scenarios():
        schema_report = SchemaAnalyzer(db.lattice).analyze()
        fsck_report = fsck_database(db)
        problems = []
        if schema_report.errors:
            problems.append(f"{len(schema_report.errors)} schema error(s)")
        if not fsck_report.clean:
            problems.append(f"{len(fsck_report)} fsck finding(s)")
        status = "FAIL" if problems else "ok"
        if problems:
            failed += 1
        if not options.quiet or problems:
            print(
                f"{status:4s} {name}: "
                f"schema [{schema_report.summary()}], "
                f"fsck [{fsck_report.summary()}]"
            )
        if problems and not options.json:
            for finding in schema_report.errors:
                print(f"     {finding}")
            for finding in fsck_report:
                print(f"     {finding}")
    print(
        "self-test: all seed scenarios pass"
        if not failed
        else f"self-test: {failed} scenario(s) FAILED"
    )
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def _add_output_flags(parser, subcommand=False):
    """The output/gating flags, accepted both before and after the
    subcommand.  The subcommand copies default to SUPPRESS so an
    absent flag never clobbers one given before the subcommand."""
    extra = {"default": argparse.SUPPRESS} if subcommand else {}
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON", **extra
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true", help="summaries only", **extra
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings, not just errors",
        **extra,
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Static schema analyzer and database integrity checker "
        "for the composite-object database.",
    )
    _add_output_flags(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    schema = commands.add_parser(
        "schema", help="static schema/topology analysis of a durable store"
    )
    schema.add_argument("directory", help="durable store directory")
    _add_output_flags(schema, subcommand=True)
    schema.set_defaults(run=_cmd_schema)

    fsck = commands.add_parser(
        "fsck", help="offline integrity check of a durable store"
    )
    fsck.add_argument("directory", help="durable store directory")
    _add_output_flags(fsck, subcommand=True)
    fsck.set_defaults(run=_cmd_fsck)

    query = commands.add_parser(
        "query", help="statically validate s-expression query files"
    )
    query.add_argument("directory", help="durable store directory")
    query.add_argument("files", nargs="+", help="query files to validate")
    _add_output_flags(query, subcommand=True)
    query.set_defaults(run=_cmd_query)

    self_test = commands.add_parser(
        "self-test",
        help="analyze and fsck every seed workload/figure scenario",
    )
    _add_output_flags(self_test, subcommand=True)
    self_test.set_defaults(run=_cmd_self_test)

    return parser


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``repro-check --self-test`` is the documented CI spelling.
    argv = ["self-test" if arg == "--self-test" else arg for arg in argv]
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        return options.run(options)
    except OSError as error:
        print(f"repro-check: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
