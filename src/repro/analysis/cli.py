"""``repro-check`` — the command-line front end of :mod:`repro.analysis`.

Nine commands, all reporting through the shared findings model:

``repro-check schema DIR``
    Recover the class lattice of a durable store (read-only) and run the
    static schema analyzer over it.

``repro-check fsck DIR``
    Recover a durable store (read-only) and audit every invariant: the
    offline integrity checker.

``repro-check query DIR FILE...``
    Statically validate s-expression query files against a store's
    schema, without executing anything.

``repro-check lockdep [--self-test]``
    Run the seeded concurrency workload under the discrete-event
    simulator with the lock-order recorder attached and report latent
    deadlocks (lock-order inversions that never happened to collide).
    ``--self-test`` instead verifies the detector itself: a seeded
    opposite-order pair that runs without ever blocking *must* be
    reported, and a uniform-order workload must come back clean — CI
    runs this form.

``repro-check locklint DIR FILE...``
    Statically predict lock-order hazards of declarative transaction
    templates (JSON) against a durable store, using the pure Section 7
    lock planners: nothing executes, no lock is taken.

``repro-check code [PATH]``
    AST-lint the ``repro`` package itself (or a source tree at PATH) for
    the codebase's concurrency/durability discipline: ``_operation()``
    bracketing, ``txn_context`` wrapping, lock-table encapsulation,
    journal-hook hygiene, no bare ``except``.  CI requires this clean.

``repro-check proto [--self-test]``
    Exhaustively model-check the 2PC coordinator/worker state machines
    (message delivery, crash-at-failpoint-site, restart/recovery) for a
    small scope and report invariant violations as minimal
    counterexample traces; then run the implementation-conformance
    lints (``PROTO-SITE-DRIFT``, ``PROTO-OP-DRIFT``).  ``--replay`` and
    ``--impl-traces`` additionally check recorded/live durable traces
    as refinements of the model.  ``--self-test`` verifies the checker
    itself: a seeded presumed-*commit* bug must yield a shortest
    counterexample, the clean model must explore violation-free, and
    the DFS sleep-set reduction must agree with plain BFS — CI runs
    this form.

``repro-check iso [HISTORY...] [--templates FILE... --store DIR]``
    Check recorded transaction histories (JSONL files written by
    ``repro-server --record-history``, the crash sweep's
    ``--record-histories``, or shard workers) for isolation anomalies:
    Adya's Direct Serialization Graph with typed G0/G1/G2 findings,
    each cycle carrying a minimal witness.  With ``--templates`` the
    same anomalies are *predicted* statically from transaction-template
    lock plans — what breaks the day reads stop taking shared locks.
    ``--self-test`` verifies the checker itself: seeded non-serializable
    interleavings (lost update, write skew, dirty read) must be
    detected with minimal witnesses, a strict-2PL transaction mix and a
    50-plan CrashSim history sweep must check clean, and the JSONL
    round-trip must tolerate a torn final line — CI runs this form.

``repro-check self-test`` (also reachable as ``repro-check --self-test``)
    Build every seed workload and figure scenario in memory, run the
    schema analyzer over each lattice (no errors allowed) and fsck over
    each database (no findings allowed).  CI runs this so schema
    regressions fail the build.

Exit codes: 0 — no errors (``--strict``: no warnings either); 1 —
findings at the gating severity; 2 — usage or I/O problems.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Iterator, Optional, Sequence

from .codelint import lint_package
from .findings import Report
from .fsck import fsck_database
from .query_check import check_query
from .schema_check import SchemaAnalyzer

#: Every subcommand the parser accepts.  The drift test keeps this set
#: consistent with the :data:`repro.analysis.findings.PLANES` registry.
SUBCOMMANDS = frozenset({
    "schema", "fsck", "query", "lockdep", "locklint", "code", "proto",
    "iso", "self-test",
})


def _open_store(directory: str) -> Any:
    """Recover a durable store read-only (no journal is created/appended)."""
    from pathlib import Path

    from ..core.database import Database
    from ..storage.journal import Journal

    if not Path(directory).is_dir():
        raise OSError(f"no store directory at {directory}")
    db = Database()
    Journal.recover_into(db, directory)
    return db


def _emit(report: Report, options: argparse.Namespace) -> None:
    if options.json:
        print(report.to_json())
    elif options.quiet:
        print(report.summary())
    else:
        print(report.render())


def _exit_code(report: Report, options: argparse.Namespace) -> int:
    if report.errors:
        return 1
    if options.strict and report.warnings:
        return 1
    return 0


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def _cmd_schema(options: argparse.Namespace) -> int:
    db = _open_store(options.directory)
    report = SchemaAnalyzer(db.lattice).analyze()
    _emit(report, options)
    return _exit_code(report, options)


def _cmd_fsck(options: argparse.Namespace) -> int:
    db = _open_store(options.directory)
    report = fsck_database(db)
    _emit(report, options)
    return _exit_code(report, options)


def _cmd_query(options: argparse.Namespace) -> int:
    db = _open_store(options.directory)
    report = Report(plane="query")
    for path in options.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"repro-check: cannot read {path}: {error}", file=sys.stderr)
            return 2
        partial = check_query(db.lattice, text)
        for finding in partial:
            report.findings.append(finding)
        report.checked += partial.checked
    _emit(report, options)
    return _exit_code(report, options)


# ----------------------------------------------------------------------
# Concurrency plane: lockdep / locklint / code
# ----------------------------------------------------------------------

def _concurrency_scenario() -> tuple[Any, list[Any]]:
    """An in-memory part-assembly database plus its composite roots."""
    from ..core.database import Database
    from ..workloads.parts import build_assembly

    db = Database()
    roots = [build_assembly(db, depth=2, fanout=2).root for _ in range(4)]
    return db, roots


def _record_inversion_seed(db: Any, roots: list[Any]) -> tuple[Any, Any]:
    """Two serialized opposite-order composite writers.

    Each transaction runs to completion before the next starts —
    ``wait=False`` proves no request ever even blocks, let alone
    deadlocks — yet the recorder's order graph contains the latent
    inversion.  This is the lockdep premise in one function.
    """
    from ..locking.protocol import CompositeLockingProtocol
    from ..locking.table import LockTable
    from ..txn.transaction import Transaction
    from .lockdep import LockOrderRecorder

    table = LockTable()
    recorder = LockOrderRecorder(table)
    protocol = CompositeLockingProtocol(db, table)
    for ordering in ((roots[0], roots[1]), (roots[1], roots[0])):
        txn = Transaction()
        for root in ordering:
            for resource, mode in protocol.plan_composite(root, "write"):
                table.acquire(txn, resource, mode, wait=False)
        table.release_all(txn)
    return recorder, table.stats


def _record_simulation(db: Any, scripts: list[Any]) -> tuple[Any, Any]:
    """Run *scripts* in the event simulator with a recorder attached."""
    from ..sim.eventsim import ConcurrencySimulator
    from .lockdep import LockOrderRecorder

    simulator = ConcurrencySimulator(db, discipline="composite")
    recorder = LockOrderRecorder(simulator.table)
    result = simulator.run(scripts)
    return recorder, result


def _cmd_lockdep(options: argparse.Namespace) -> int:
    from ..workloads.txmix import composite_mix

    db, roots = _concurrency_scenario()
    if options.self_test:
        return _lockdep_self_test(db, roots, options)
    recorder, result = _record_simulation(
        db,
        composite_mix(roots, transactions=options.transactions, seed=42),
    )
    report = recorder.analyze()
    _emit(report, options)
    if not options.quiet and not options.json:
        print(
            f"simulated {result.committed} commit(s), "
            f"{result.deadlock_aborts} runtime deadlock abort(s); "
            f"{recorder.transactions_recorded} trace(s) recorded"
        )
    return _exit_code(report, options)


def _lockdep_self_test(
    db: Any, roots: list[Any], options: argparse.Namespace
) -> int:
    """CI gate: the detector must fire on a seed and stay quiet on order.

    Two checks, both required:

    1. the serialized opposite-order seed (which never blocks) is
       reported as ``LOCKDEP-INVERSION`` with both witness stacks;
    2. a uniform-order workload (every transaction takes composites in
       the same global order) runs deadlock-free *and* analyzes clean.
    """
    from ..sim.eventsim import Step

    failures = []

    recorder, stats = _record_inversion_seed(db, roots)
    report = recorder.analyze()
    inversions = [
        finding for finding in report.errors
        if finding.rule == "LOCKDEP-INVERSION"
    ]
    if stats.blocks or stats.denials:
        failures.append(
            f"seed run was supposed to never block "
            f"(blocks={stats.blocks}, denials={stats.denials})"
        )
    if not inversions:
        failures.append(
            "seeded opposite-order writers were NOT reported as an "
            "inversion"
        )
    elif not (
        inversions[0].detail["witness_forward"]["acquire_stack"]
        and inversions[0].detail["witness_reverse"]["acquire_stack"]
    ):
        failures.append("inversion finding is missing witness stacks")
    if not options.quiet:
        status = "ok  " if not failures else "FAIL"
        print(
            f"{status} seeded inversion: {len(inversions)} reported, "
            f"0 runtime blocks [{report.summary()}]"
        )

    uniform = [
        [
            Step(action=action, target=roots[0]),
            Step(action=action, target=roots[1]),
        ]
        for action in (
            "update_composite", "update_composite", "read_composite"
        )
    ]
    recorder, result = _record_simulation(db, uniform)
    clean_report = recorder.analyze()
    ordered_failures = []
    if result.deadlock_aborts:
        ordered_failures.append(
            f"uniform-order workload hit {result.deadlock_aborts} "
            f"runtime deadlock(s)"
        )
    if not clean_report.clean:
        ordered_failures.append(
            f"uniform-order workload analyzed dirty "
            f"[{clean_report.summary()}]"
        )
    if not options.quiet:
        status = "ok  " if not ordered_failures else "FAIL"
        print(
            f"{status} uniform order: {result.committed} commit(s), "
            f"[{clean_report.summary()}]"
        )
    failures.extend(ordered_failures)

    for failure in failures:
        print(f"lockdep self-test: {failure}", file=sys.stderr)
    print(
        "lockdep self-test: pass"
        if not failures
        else f"lockdep self-test: {len(failures)} check(s) FAILED"
    )
    return 1 if failures else 0


def _cmd_locklint(options: argparse.Namespace) -> int:
    import json

    from .locklint import analyze_templates, coerce_template

    db = _open_store(options.directory)
    templates = []
    for path in options.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            print(f"repro-check: cannot read {path}: {error}", file=sys.stderr)
            return 2
        except ValueError as error:
            print(f"repro-check: {path}: {error}", file=sys.stderr)
            return 2
        if isinstance(payload, dict):
            payload = payload.get("templates", [payload])
        for item in payload:
            templates.append(coerce_template(item, len(templates)))
    report = analyze_templates(db, templates, discipline=options.discipline)
    _emit(report, options)
    return _exit_code(report, options)


def _cmd_code(options: argparse.Namespace) -> int:
    report = lint_package(options.path)
    _emit(report, options)
    return _exit_code(report, options)


# ----------------------------------------------------------------------
# Protocol plane: the 2PC model checker + conformance lints
# ----------------------------------------------------------------------

def _cmd_proto(options: argparse.Namespace) -> int:
    from . import protocheck
    from .proto_model import Scope

    if options.self_test:
        return _proto_self_test(options)
    scope = Scope(
        workers=options.workers,
        txns=options.txns,
        max_crashes=options.max_crashes,
    )
    report, result = protocheck.check_protocol(
        scope, strategy=options.strategy, spontaneous=options.spontaneous
    )
    notes = [result.summary()]
    if options.replay:
        before = len(report.findings)
        report, replayed = protocheck.conform_traces(options.replay, report)
        notes.append(
            f"replayed {replayed} recorded trace(s), "
            f"{len(report.findings) - before} finding(s)"
        )
    if options.impl_traces:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="proto-impl-") as scratch:
            traces = protocheck.gather_impl_traces(
                scratch, runs=options.impl_traces
            )
            for trace in traces:
                protocheck.conform_trace(trace, report)
        notes.append(f"refined {len(traces)} live implementation trace(s)")
    protocheck.lint_protocol_sites(report=report)
    protocheck.lint_wire_ops(report)
    _emit(report, options)
    if not options.quiet and not options.json:
        for note in notes:
            print(note)
    return _exit_code(report, options)


def _proto_self_test(options: argparse.Namespace) -> int:
    """CI gate: the model checker must find a seeded protocol bug and
    stay quiet on the faithful model.

    Four checks, all required:

    1. the seeded presumed-*commit* bug (an in-doubt participant that
       commits instead of aborting when the coordinator log is silent)
       is reported as ``PROTO-CONSISTENCY`` with a shortest (4-step)
       BFS counterexample trace;
    2. the faithful model explores violation-free at two scopes;
    3. the seeded guard-drop bug (``presume-eager``: presuming abort
       while the coordinator could still decide commit) is caught once
       spontaneous crashes are enabled — and the faithful model stays
       clean under the same spontaneous-crash schedule, which is what
       justifies the grace-period guard in ``shard/worker.py``;
    4. DFS with the sleep-set reduction visits exactly the states plain
       BFS does (reduction soundness, checked empirically).
    """
    from . import protocheck
    from .proto_model import Scope

    failures: list[str] = []

    def note(ok: bool, text: str) -> None:
        if not options.quiet:
            print(f"{'ok  ' if ok else 'FAIL'} {text}")

    tiny = Scope(workers=1, txns=1, max_crashes=1)
    small = Scope(workers=2, txns=1, max_crashes=1)

    seeded, result = protocheck.check_protocol(
        tiny, bug="presumed-commit", strategy="bfs"
    )
    witnesses = [
        example for example in result.counterexamples
        if example.rule == "PROTO-CONSISTENCY"
    ]
    if not witnesses:
        failures.append(
            "seeded presumed-commit bug was NOT reported as "
            "PROTO-CONSISTENCY"
        )
    elif len(witnesses[0].trace) != 4:
        failures.append(
            f"presumed-commit counterexample is not minimal: "
            f"{len(witnesses[0].trace)} steps, expected 4 "
            f"({' -> '.join(witnesses[0].trace)})"
        )
    note(
        not failures,
        f"seeded presumed-commit: {len(witnesses)} counterexample(s), "
        f"shortest {len(witnesses[0].trace) if witnesses else 0} step(s) "
        f"[{result.summary()}]",
    )

    for scope in (tiny, small):
        _, clean = protocheck.check_protocol(scope, strategy="bfs")
        ok = clean.ok
        if not ok:
            failures.append(
                f"faithful model has violation(s) at {clean.summary()}"
            )
        note(ok, f"clean model: {clean.summary()}")

    eager = protocheck.explore(
        small, bug="presume-eager", strategy="bfs", spontaneous=True
    )
    guarded = protocheck.explore(small, strategy="bfs", spontaneous=True)
    if eager.ok:
        failures.append(
            "dropping the presume-abort grace guard was NOT caught "
            "under spontaneous crashes"
        )
    if not guarded.ok:
        failures.append(
            f"guarded model is dirty under spontaneous crashes: "
            f"{guarded.summary()}"
        )
    note(
        not eager.ok and guarded.ok,
        f"grace guard: eager={len(eager.counterexamples)} violation(s), "
        f"guarded={len(guarded.counterexamples)}",
    )

    bfs = protocheck.explore(small, strategy="bfs")
    dfs = protocheck.explore(small, strategy="dfs")
    if bfs.states != dfs.states:
        failures.append(
            f"sleep-set DFS visited {dfs.states} state(s), plain BFS "
            f"{bfs.states} — the reduction is unsound or stale"
        )
    note(
        bfs.states == dfs.states,
        f"reduction soundness: bfs={bfs.states} dfs={dfs.states} "
        f"({dfs.sleep_skips} transition(s) sleep-pruned)",
    )

    for failure in failures:
        print(f"proto self-test: {failure}", file=sys.stderr)
    print(
        "proto self-test: pass"
        if not failures
        else f"proto self-test: {len(failures)} check(s) FAILED"
    )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Isolation plane: history checking + template-mode prediction
# ----------------------------------------------------------------------

def _cmd_iso(options: argparse.Namespace) -> int:
    import json

    from .history import History
    from .isocheck import check_history, predict_isolation
    from .locklint import coerce_template

    if options.self_test:
        return _iso_self_test(options)
    if not options.histories and not options.templates:
        print(
            "repro-check iso: nothing to check — give history files, "
            "--templates FILE (with --store DIR), or --self-test",
            file=sys.stderr,
        )
        return 2
    report = Report(plane="iso")
    for path in options.histories:
        try:
            history = History.load(path)
        except OSError as error:
            print(f"repro-check: cannot read {path}: {error}",
                  file=sys.stderr)
            return 2
        except ValueError as error:
            print(f"repro-check: {path}: {error}", file=sys.stderr)
            return 2
        check_history(history, report)
    if options.templates:
        if not options.store:
            print(
                "repro-check iso: --templates needs --store DIR to "
                "resolve template targets against",
                file=sys.stderr,
            )
            return 2
        db = _open_store(options.store)
        templates = []
        for path in options.templates:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except OSError as error:
                print(f"repro-check: cannot read {path}: {error}",
                      file=sys.stderr)
                return 2
            except ValueError as error:
                print(f"repro-check: {path}: {error}", file=sys.stderr)
                return 2
            if isinstance(payload, dict):
                payload = payload.get("templates", [payload])
            for item in payload:
                templates.append(coerce_template(item, len(templates)))
        report.extend(
            predict_isolation(db, templates, discipline=options.discipline)
        )
    _emit(report, options)
    return _exit_code(report, options)


def _iso_seed_db() -> tuple[Any, Any, Any]:
    """A two-account database for the seeded anomaly interleavings."""
    from ..core.database import Database
    from ..schema.attribute import AttributeSpec

    db = Database()
    db.make_class("Account", attributes=[
        AttributeSpec("Balance", domain="integer"),
    ])
    x = db.make("Account", values={"Balance": 100})
    y = db.make("Account", values={"Balance": 100})
    return db, x, y


def _iso_broken_pair(db: Any) -> tuple[Any, Any]:
    """Two transaction managers with *private* lock tables over one
    database: every operation still runs the real manager paths (undo
    logging, hooks, txn attribution), but neither manager sees the
    other's locks — the no-discipline baseline the seeded anomalies
    need."""
    from ..locking.table import LockTable
    from ..txn.manager import TransactionManager

    return (
        TransactionManager(db, LockTable()),
        TransactionManager(db, LockTable()),
    )


def _iso_self_test(options: argparse.Namespace) -> int:
    """CI gate: the isolation checker must detect seeded anomalies with
    minimal witnesses and stay quiet on disciplined executions.

    Six checks, all required:

    1. the seeded lost-update interleaving (both read, both write, both
       commit — under private lock tables) is reported as ``ISO-G2``
       with the minimal 2-transaction witness cycle *and* classified
       ``ISO-LOST-UPDATE``;
    2. the seeded write-skew interleaving (each reads what the other
       writes) is reported as ``ISO-WRITE-SKEW``;
    3. the seeded dirty read (read from a transaction that later
       aborts) is reported as ``ISO-G1A`` at ERROR severity;
    4. the B9 composite mix run through a *shared* strict-2PL
       transaction manager records a history with no findings at all;
    5. a 50-plan CrashSim sweep with history recording reports no
       isolation errors (single-threaded strict execution — any error
       is a recorder/undo bug) and every history round-trips through
       JSONL, torn final line included;
    6. template mode: a read-modify-write template is predicted as
       ``ISO-TEMPLATE-LOST-UPDATE``, a mutual read/write pair as
       ``ISO-TEMPLATE-SKEW``, and read-only templates come back clean.
    """
    import tempfile

    from ..core.database import Database
    from ..faults.crashsim import CrashSim
    from ..faults.plan import random_plan
    from ..workloads.txmix import composite_mix, memory_fixture, run_tm_mix
    from .history import History, HistoryRecorder
    from .isocheck import check_history, predict_isolation
    from .locklint import TransactionTemplate

    failures: list[str] = []

    def note(ok: bool, text: str) -> None:
        if not options.quiet:
            print(f"{'ok  ' if ok else 'FAIL'} {text}")

    # 1. Lost update: minimal G2 cycle + classifier.
    db, x, _y = _iso_seed_db()
    tm1, tm2 = _iso_broken_pair(db)
    with HistoryRecorder(db) as recorder:
        t1, t2 = tm1.begin(), tm2.begin()
        stale_1 = tm1.read(t1, x, "Balance")
        stale_2 = tm2.read(t2, x, "Balance")
        tm1.write(t1, x, "Balance", stale_1 + 10)
        tm2.write(t2, x, "Balance", stale_2 + 25)
        tm1.commit(t1)
        tm2.commit(t2)
    lost_history = recorder.history
    report = check_history(lost_history)
    cycles = report.by_rule("ISO-G2")
    lost = report.by_rule("ISO-LOST-UPDATE")
    expected = {f"t{t1.txn_id}", f"t{t2.txn_id}"}
    witness_ok = bool(cycles) and (
        len(cycles[0].detail["cycle"]) == 2
        and set(cycles[0].detail["cycle"]) == expected
    )
    if not cycles:
        failures.append(
            "seeded lost-update interleaving was NOT reported as ISO-G2"
        )
    elif not witness_ok:
        failures.append(
            f"ISO-G2 witness is not the minimal 2-transaction cycle: "
            f"{cycles[0].detail['cycle']}"
        )
    if not lost:
        failures.append(
            "seeded lost update was NOT classified as ISO-LOST-UPDATE"
        )
    note(
        bool(cycles) and witness_ok and bool(lost),
        f"seeded lost update: {len(cycles)} G2 cycle(s), "
        f"{len(lost)} classifier(s) [{report.summary()}]",
    )

    # 2. Write skew: each transaction reads what the other writes.
    db, x, y = _iso_seed_db()
    tm1, tm2 = _iso_broken_pair(db)
    with HistoryRecorder(db) as recorder:
        t1, t2 = tm1.begin(), tm2.begin()
        tm1.read(t1, y, "Balance")
        tm2.read(t2, x, "Balance")
        tm1.write(t1, x, "Balance", 0)
        tm2.write(t2, y, "Balance", 0)
        tm1.commit(t1)
        tm2.commit(t2)
    report = check_history(recorder.history)
    skew = report.by_rule("ISO-WRITE-SKEW")
    if not skew:
        failures.append(
            "seeded write-skew interleaving was NOT reported as "
            "ISO-WRITE-SKEW"
        )
    note(bool(skew),
         f"seeded write skew: {len(skew)} finding(s) [{report.summary()}]")

    # 3. Dirty read: a read from a transaction that goes on to abort.
    db, x, _y = _iso_seed_db()
    tm1, tm2 = _iso_broken_pair(db)
    with HistoryRecorder(db) as recorder:
        t1, t2 = tm1.begin(), tm2.begin()
        tm1.write(t1, x, "Balance", -1)
        tm2.read(t2, x, "Balance")
        tm1.abort(t1)
        tm2.commit(t2)
    report = check_history(recorder.history)
    dirty = [f for f in report.errors if f.rule == "ISO-G1A"]
    if not dirty:
        failures.append(
            "seeded dirty read of an aborted transaction was NOT "
            "reported as an ISO-G1A error"
        )
    note(bool(dirty),
         f"seeded dirty read: {len(dirty)} G1A error(s) "
         f"[{report.summary()}]")

    # 4. Strict 2PL must check clean: the B9 mix through one shared
    # manager/lock table, genuinely interleaved round-robin.
    db = Database()
    roots, components = memory_fixture(db, roots=4, parts_per_root=2)
    with HistoryRecorder(db) as recorder:
        stats = run_tm_mix(db, composite_mix(
            roots, transactions=12, steps_per_txn=3,
            components_by_root=components, seed=9,
        ))
    clean_report = check_history(recorder.history)
    if not clean_report.clean:
        failures.append(
            f"strict-2PL transaction mix analyzed dirty "
            f"[{clean_report.summary()}]"
        )
    note(
        clean_report.clean,
        f"strict-2PL mix: {stats['transactions']} txn(s), "
        f"{stats['conflict_retries']} retry(s), "
        f"[{clean_report.summary()}]",
    )

    # 5. CrashSim sweep: 50 seeded fault plans, each recording its
    # history; no isolation errors allowed, and every history must
    # survive the JSONL round-trip (torn tail included).
    sweep_problems: list[str] = []
    events_checked = 0
    for index in range(50):
        plan = random_plan(20260807 + index * 7919)
        with tempfile.TemporaryDirectory(prefix="iso-crashsim-") as scratch:
            crash = CrashSim(plan, scratch, record_history=True).run()
        iso_problems = [
            problem for problem in crash.problems
            if problem.startswith("isolation:")
        ]
        if iso_problems:
            sweep_problems.append(
                f"plan {plan.describe()}: {'; '.join(iso_problems)}"
            )
        if crash.history is not None:
            events_checked += len(crash.history)
            text = crash.history.dumps()
            reloaded = History.loads(text + '{"k":"wri')
            if reloaded.events != crash.history.events:
                sweep_problems.append(
                    f"plan {plan.describe()}: JSONL round-trip with a "
                    f"torn tail did not reproduce the history"
                )
    failures.extend(sweep_problems)
    note(
        not sweep_problems,
        f"CrashSim sweep: 50 plans, {events_checked} event(s) recorded, "
        f"{len(sweep_problems)} problem(s)",
    )

    # 6. Template mode: predicted anomalies and a clean baseline.
    db, troots = _concurrency_scenario()
    racy = TransactionTemplate("increment", [
        ("read_instance", troots[0]), ("update_instance", troots[0]),
    ])
    left = TransactionTemplate("left", [
        ("read_instance", troots[0]), ("update_instance", troots[1]),
    ])
    right = TransactionTemplate("right", [
        ("read_instance", troots[1]), ("update_instance", troots[0]),
    ])
    audit = TransactionTemplate("audit", [
        ("read_composite", troots[0]), ("read_composite", troots[1]),
    ])
    predicted = predict_isolation(db, [racy])
    if not predicted.by_rule("ISO-TEMPLATE-LOST-UPDATE"):
        failures.append(
            "read-modify-write template was NOT predicted as "
            "ISO-TEMPLATE-LOST-UPDATE"
        )
    skew_predicted = predict_isolation(db, [left, right])
    if not skew_predicted.by_rule("ISO-TEMPLATE-SKEW"):
        failures.append(
            "mutual read/write template pair was NOT predicted as "
            "ISO-TEMPLATE-SKEW"
        )
    audit_report = predict_isolation(db, [audit])
    if not audit_report.clean:
        failures.append(
            f"read-only templates predicted dirty "
            f"[{audit_report.summary()}]"
        )
    note(
        bool(predicted.by_rule("ISO-TEMPLATE-LOST-UPDATE"))
        and bool(skew_predicted.by_rule("ISO-TEMPLATE-SKEW"))
        and audit_report.clean,
        f"template mode: {len(predicted)} + {len(skew_predicted)} "
        f"prediction(s), read-only clean={audit_report.clean}",
    )

    for failure in failures:
        print(f"iso self-test: {failure}", file=sys.stderr)
    print(
        "iso self-test: pass"
        if not failures
        else f"iso self-test: {len(failures)} check(s) FAILED"
    )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Self-test: the seed workloads and figures, analyzed and fsck'd
# ----------------------------------------------------------------------

def _seed_scenarios() -> Iterator[tuple[str, Any]]:
    """Yield ``(name, database, managers)`` for every seed scenario.

    Each scenario is built through the public API, so the analyzer must
    find no schema errors and fsck must find nothing at all.
    """
    from ..core.database import Database
    from ..versions.manager import VersionManager
    from ..workloads.cad import build_design_bench
    from ..workloads.documents import build_corpus, define_document_schema
    from ..workloads.figures import build_figure4, build_figure5, build_figure9
    from ..workloads.parts import (
        build_assembly,
        build_fleet,
        build_part_tree,
        define_vehicle_schema,
    )

    db = Database()
    define_vehicle_schema(db)
    build_fleet(db, 5)
    yield "vehicle-fleet", db

    db = Database()
    build_part_tree(db, depth=3, fanout=3)
    yield "part-tree", db

    db = Database()
    build_assembly(db, depth=2, fanout=3)
    yield "assembly", db

    for name, builder in (
        ("figure4", build_figure4),
        ("figure5", build_figure5),
        ("figure9", build_figure9),
    ):
        db = Database()
        builder(db)
        yield name, db

    db = Database()
    define_document_schema(db)
    build_corpus(db, documents=4)
    yield "documents", db

    db = Database()
    versions = VersionManager(db)
    build_design_bench(db, versions)
    yield "cad-versions", db


def _cmd_self_test(options: argparse.Namespace) -> int:
    failed = 0
    for name, db in _seed_scenarios():
        schema_report = SchemaAnalyzer(db.lattice).analyze()
        fsck_report = fsck_database(db)
        problems = []
        if schema_report.errors:
            problems.append(f"{len(schema_report.errors)} schema error(s)")
        if not fsck_report.clean:
            problems.append(f"{len(fsck_report)} fsck finding(s)")
        status = "FAIL" if problems else "ok"
        if problems:
            failed += 1
        if not options.quiet or problems:
            print(
                f"{status:4s} {name}: "
                f"schema [{schema_report.summary()}], "
                f"fsck [{fsck_report.summary()}]"
            )
        if problems and not options.json:
            for finding in schema_report.errors:
                print(f"     {finding}")
            for finding in fsck_report:
                print(f"     {finding}")
    print(
        "self-test: all seed scenarios pass"
        if not failed
        else f"self-test: {failed} scenario(s) FAILED"
    )
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def _add_output_flags(
    parser: argparse.ArgumentParser, subcommand: bool = False
) -> None:
    """The output/gating flags, accepted both before and after the
    subcommand.  The subcommand copies default to SUPPRESS so an
    absent flag never clobbers one given before the subcommand."""
    extra = {"default": argparse.SUPPRESS} if subcommand else {}
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON", **extra
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true", help="summaries only", **extra
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings, not just errors",
        **extra,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Static schema analyzer and database integrity checker "
        "for the composite-object database.",
    )
    _add_output_flags(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    schema = commands.add_parser(
        "schema", help="static schema/topology analysis of a durable store"
    )
    schema.add_argument("directory", help="durable store directory")
    _add_output_flags(schema, subcommand=True)
    schema.set_defaults(run=_cmd_schema)

    fsck = commands.add_parser(
        "fsck", help="offline integrity check of a durable store"
    )
    fsck.add_argument("directory", help="durable store directory")
    _add_output_flags(fsck, subcommand=True)
    fsck.set_defaults(run=_cmd_fsck)

    query = commands.add_parser(
        "query", help="statically validate s-expression query files"
    )
    query.add_argument("directory", help="durable store directory")
    query.add_argument("files", nargs="+", help="query files to validate")
    _add_output_flags(query, subcommand=True)
    query.set_defaults(run=_cmd_query)

    lockdep = commands.add_parser(
        "lockdep",
        help="record a seeded concurrent workload and report latent "
        "deadlocks (lock-order inversions)",
    )
    lockdep.add_argument(
        "--self-test",
        action="store_true",
        help="verify the detector: seeded inversion must be reported, "
        "uniform order must be clean (CI gate)",
    )
    lockdep.add_argument(
        "--transactions",
        type=int,
        default=20,
        help="simulated transactions in the recorded mix (default 20)",
    )
    _add_output_flags(lockdep, subcommand=True)
    lockdep.set_defaults(run=_cmd_lockdep)

    locklint = commands.add_parser(
        "locklint",
        help="statically predict lock-order hazards of transaction "
        "template files against a durable store",
    )
    locklint.add_argument("directory", help="durable store directory")
    locklint.add_argument(
        "files", nargs="+", help="JSON transaction-template files"
    )
    locklint.add_argument(
        "--discipline",
        default="composite",
        choices=("composite", "instance", "class"),
        help="locking discipline to plan under (default composite)",
    )
    _add_output_flags(locklint, subcommand=True)
    locklint.set_defaults(run=_cmd_locklint)

    code = commands.add_parser(
        "code",
        help="AST-lint the repro package for concurrency/durability "
        "discipline (CI requires this clean)",
    )
    code.add_argument(
        "path",
        nargs="?",
        default=None,
        help="package root to lint (default: the installed repro package)",
    )
    _add_output_flags(code, subcommand=True)
    code.set_defaults(run=_cmd_code)

    proto = commands.add_parser(
        "proto",
        help="exhaustively model-check the 2PC protocol and lint the "
        "implementation for drift against the model",
    )
    proto.add_argument(
        "--self-test",
        action="store_true",
        help="verify the checker: seeded presumed-commit bug must yield "
        "a minimal counterexample, the faithful model must be clean, "
        "DFS reduction must agree with BFS (CI gate)",
    )
    proto.add_argument(
        "--workers", type=int, default=2,
        help="participant shards in the model scope (default 2)",
    )
    proto.add_argument(
        "--txns", type=int, default=2,
        help="concurrent cross-shard transactions (default 2)",
    )
    proto.add_argument(
        "--max-crashes", type=int, default=1,
        help="crash budget per schedule (default 1)",
    )
    proto.add_argument(
        "--strategy", default="dfs", choices=("dfs", "bfs"),
        help="dfs: sleep-set reduced sweep (default); bfs: shortest "
        "counterexamples",
    )
    proto.add_argument(
        "--spontaneous",
        action="store_true",
        help="also crash between protocol steps, not only at failpoint "
        "sites (larger state space)",
    )
    proto.add_argument(
        "--replay",
        nargs="+",
        metavar="TRACE",
        help="recorded trace files (or directories of *.json) to check "
        "as refinements of the model",
    )
    proto.add_argument(
        "--impl-traces",
        type=int,
        default=0,
        metavar="N",
        help="drive N seeded 2PC rounds through the real journal/"
        "recovery stack and refine the durable traces (default 0)",
    )
    _add_output_flags(proto, subcommand=True)
    proto.set_defaults(run=_cmd_proto)

    iso = commands.add_parser(
        "iso",
        help="check recorded transaction histories (or predict from "
        "templates) for Adya-style isolation anomalies",
    )
    iso.add_argument(
        "histories",
        nargs="*",
        help="JSONL history files (repro-server --record-history, the "
        "crash sweep's --record-histories, shard workers)",
    )
    iso.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="durable store to resolve --templates targets against",
    )
    iso.add_argument(
        "--templates",
        nargs="+",
        metavar="FILE",
        help="JSON transaction-template files to predict anomalies "
        "from (needs --store)",
    )
    iso.add_argument(
        "--discipline",
        default="composite",
        choices=("composite", "instance", "class"),
        help="locking discipline templates plan under (default composite)",
    )
    iso.add_argument(
        "--self-test",
        action="store_true",
        help="verify the checker: seeded anomalies must be detected "
        "with minimal witnesses, strict-2PL and CrashSim histories "
        "must be clean (CI gate)",
    )
    _add_output_flags(iso, subcommand=True)
    iso.set_defaults(run=_cmd_iso)

    self_test = commands.add_parser(
        "self-test",
        help="analyze and fsck every seed workload/figure scenario",
    )
    _add_output_flags(self_test, subcommand=True)
    self_test.set_defaults(run=_cmd_self_test)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``repro-check --self-test`` is the documented CI spelling — but
    # only when no subcommand was named (``lockdep --self-test`` is that
    # subcommand's own flag).
    if not any(arg in SUBCOMMANDS for arg in argv):
        argv = ["self-test" if arg == "--self-test" else arg for arg in argv]
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        return options.run(options)
    except OSError as error:
        print(f"repro-check: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
