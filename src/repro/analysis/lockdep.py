"""Lockdep-style lock-order analysis (concurrency plane, part 1).

The runtime deadlock detector (:mod:`repro.locking.deadlock`) only sees
cycles that *actually form* in the wait-for graph.  Following the lockdep
/ TSan idea, this module reports **potential** deadlocks from executions
that never deadlocked: a :class:`LockOrderRecorder` observes every grant
of a :class:`repro.locking.table.LockTable` (including the implicit
class-intention locks the Section 7 composite protocol takes on composite
ancestors), remembers the per-transaction acquisition order, and folds
each completed transaction into a global :class:`LockOrderGraph`.  Two
transactions that ever acquired two resources in opposite order — with
modes that conflict under the Figure 7/8 compatibility matrices — are a
latent deadlock even when their lifetimes never overlapped.

The same graph is fed *statically* by :mod:`repro.analysis.locklint`,
which replays declarative transaction templates through the pure lock
planners instead of a live table; both report through the shared
findings model.

Rule ids
--------

``LOCKDEP-INVERSION``
    (error) two witness transactions acquired resources *a* and *b* in
    opposite orders with conflicting modes; the finding carries both
    witnesses' acquisition stacks.
``LOCKDEP-UPGRADE``
    (warning) one transaction acquired a resource in a mode that
    conflicts with a mode it already held (an in-place upgrade, e.g.
    S -> X): two concurrent instances of the same pattern deadlock on
    the upgrade.
``LOCKDEP-CYCLE``
    (warning) the global acquisition-order graph has a cycle longer than
    two resources; each edge names one witness transaction.

The static plane (:mod:`repro.analysis.locklint`) uses the prefix
``LOCK`` for the same three shapes, so runtime and predicted findings
stay distinguishable in one merged report.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Optional

from ..locking.deadlock import find_cycle
from ..locking.modes import COMPATIBILITY, LockMode
from ..locking.table import LockObserver, LockTable
from .findings import Report, Severity

__all__ = [
    "Acquisition",
    "LockOrderGraph",
    "LockOrderRecorder",
    "OrderEdge",
    "conflicts_with_any",
]

#: Witnesses kept per directed (resource, resource) edge; the first few
#: are enough to report, and capping keeps long runs O(resources^2).
MAX_WITNESSES_PER_EDGE = 4

#: Frames kept per acquisition stack.
MAX_STACK_FRAMES = 6

#: Modules whose frames are noise in an acquisition stack (the locking
#: machinery itself and this recorder).
_STACK_SKIP = ("repro/locking/", "repro\\locking\\", "repro/analysis/lockdep",
               "repro\\analysis\\lockdep")


def conflicts_with_any(mode: LockMode, held: Iterable[LockMode]) -> bool:
    """True when *mode* is incompatible with at least one mode in *held*."""
    return any(not COMPATIBILITY[(mode, other)] for other in held)


@dataclass(frozen=True, slots=True)
class Acquisition:
    """One granted (resource, mode) with its acquisition context."""

    resource: Hashable
    mode: LockMode
    #: 0-based position in the transaction's acquisition sequence.
    order: int
    #: Trimmed call stack ("file:line in func"), innermost last; empty
    #: when stack capture is off or the trace was synthesized statically.
    stack: tuple[str, ...] = ()


@dataclass
class _Witness:
    """One transaction's evidence for an order edge ``src -> dst``."""

    txn: Any
    #: Modes held on ``src`` when ``dst`` was acquired.
    held_modes: frozenset[LockMode]
    #: Mode acquired on ``dst``.
    acquired_mode: LockMode
    #: Acquisition stacks of the first grant on ``src`` and the grant on
    #: ``dst`` (diagnosis: where did each end of the edge come from).
    src_stack: tuple[str, ...]
    dst_stack: tuple[str, ...]


@dataclass
class OrderEdge:
    """A directed lock-order edge: some transaction took src before dst."""

    src: Hashable
    dst: Hashable
    witnesses: list[_Witness] = field(default_factory=list)
    #: Total times the edge was traversed (may exceed len(witnesses)).
    count: int = 0


def _resource_label(resource: Hashable) -> str:
    """Render a lock resource the way the protocol builds them."""
    if (
        isinstance(resource, tuple)
        and len(resource) == 2
        and isinstance(resource[0], str)
    ):
        return f"{resource[0]}:{resource[1]}"
    return str(resource)


def _txn_label(txn: Any) -> str:
    return str(getattr(txn, "txn_id", txn))


def capture_stack(max_frames: int = MAX_STACK_FRAMES) -> tuple[str, ...]:
    """A cheap acquisition stack: walk frames, skip the lock machinery.

    Uses ``sys._getframe`` instead of :mod:`traceback` — no source-line
    loading, so the recorder stays usable on hot paths.
    """
    frames: list[str] = []
    try:
        frame = sys._getframe(2)
    except ValueError:  # shallower than expected (embedded interpreters)
        return ()
    while frame is not None and len(frames) < max_frames:
        code = frame.f_code
        filename = code.co_filename
        if not any(skip in filename for skip in _STACK_SKIP):
            short = "/".join(filename.replace("\\", "/").split("/")[-2:])
            frames.append(f"{short}:{frame.f_lineno} in {code.co_name}")
        frame = frame.f_back
    return tuple(frames)


class LockOrderGraph:
    """A global acquisition-order graph over completed transactions.

    Feed it one *trace* per transaction — the ordered
    :class:`Acquisition` list — and :meth:`analyze` reports latent
    deadlocks.  The graph is the shared core of the runtime recorder
    (:class:`LockOrderRecorder`) and the static template analyzer
    (:mod:`repro.analysis.locklint`); the ``rule_prefix`` chooses the
    rule-id namespace (``LOCKDEP`` vs ``LOCK``).
    """

    def __init__(self, rule_prefix: str = "LOCKDEP") -> None:
        self.rule_prefix = rule_prefix
        #: (src, dst) -> OrderEdge
        self._edges: dict[tuple[Hashable, Hashable], OrderEdge] = {}
        #: In-trace upgrades: (resource, held frozenset, acquired mode) ->
        #: (txn label, stack) of the first witness.
        self._upgrades: dict[
            tuple[Hashable, frozenset[LockMode], LockMode],
            tuple[str, tuple[str, ...]],
        ] = {}
        #: Transactions folded in (coverage metric).
        self.traces = 0

    # -- recording ---------------------------------------------------------

    def add_trace(self, txn: Any, acquisitions: Iterable[Acquisition]) -> None:
        """Fold one completed transaction's acquisition sequence in."""
        self.traces += 1
        held: dict[Hashable, set[LockMode]] = {}
        first_stack: dict[Hashable, tuple[str, ...]] = {}
        for acq in acquisitions:
            modes_here = held.get(acq.resource)
            if modes_here is not None:
                # Re-acquisition of a held resource: only interesting when
                # the new mode conflicts with a held one (upgrade hazard).
                if acq.mode not in modes_here and conflicts_with_any(
                    acq.mode, modes_here
                ):
                    key = (acq.resource, frozenset(modes_here), acq.mode)
                    self._upgrades.setdefault(
                        key, (_txn_label(txn), acq.stack)
                    )
                modes_here.add(acq.mode)
                continue
            for src, src_modes in held.items():
                edge = self._edges.get((src, acq.resource))
                if edge is None:
                    edge = OrderEdge(src=src, dst=acq.resource)
                    self._edges[(src, acq.resource)] = edge
                edge.count += 1
                if len(edge.witnesses) < MAX_WITNESSES_PER_EDGE:
                    edge.witnesses.append(_Witness(
                        txn=_txn_label(txn),
                        held_modes=frozenset(src_modes),
                        acquired_mode=acq.mode,
                        src_stack=first_stack.get(src, ()),
                        dst_stack=acq.stack,
                    ))
            held[acq.resource] = {acq.mode}
            first_stack[acq.resource] = acq.stack

    # -- analysis ----------------------------------------------------------

    def edges(self) -> list[OrderEdge]:
        """The recorded order edges (inspection/tests)."""
        return list(self._edges.values())

    def analyze(self, report: Optional[Report] = None) -> Report:
        """Report every latent deadlock visible in the recorded orders."""
        if report is None:
            report = Report(plane="lockdep")
        report.checked += self.traces
        self._report_inversions(report)
        self._report_upgrades(report)
        self._report_long_cycles(report)
        return report

    def _report_inversions(self, report: Report) -> None:
        seen: set[tuple[Hashable, Hashable]] = set()
        for (src, dst), edge in self._edges.items():
            reverse = self._edges.get((dst, src))
            if reverse is None or (dst, src) in seen:
                continue
            seen.add((src, dst))
            witness_pair = self._conflicting_pair(edge, reverse)
            if witness_pair is None:
                continue
            fwd, rev = witness_pair
            label_a, label_b = _resource_label(src), _resource_label(dst)
            report.add(
                Severity.ERROR,
                f"{self.rule_prefix}-INVERSION",
                f"{label_a} <-> {label_b}",
                f"lock-order inversion: txn {fwd.txn} took {label_a} "
                f"({'+'.join(sorted(str(m) for m in fwd.held_modes))}) then "
                f"{label_b} ({fwd.acquired_mode}); txn {rev.txn} took "
                f"{label_b} "
                f"({'+'.join(sorted(str(m) for m in rev.held_modes))}) then "
                f"{label_a} ({rev.acquired_mode}) — a latent deadlock even "
                f"though no cycle formed at runtime",
                resources=[label_a, label_b],
                txns=[fwd.txn, rev.txn],
                witness_forward={
                    "txn": fwd.txn,
                    "holds": sorted(str(m) for m in fwd.held_modes),
                    "acquires": str(fwd.acquired_mode),
                    "held_stack": list(fwd.src_stack),
                    "acquire_stack": list(fwd.dst_stack),
                },
                witness_reverse={
                    "txn": rev.txn,
                    "holds": sorted(str(m) for m in rev.held_modes),
                    "acquires": str(rev.acquired_mode),
                    "held_stack": list(rev.src_stack),
                    "acquire_stack": list(rev.dst_stack),
                },
            )

    @staticmethod
    def _conflicting_pair(
        edge: OrderEdge, reverse: OrderEdge
    ) -> Optional[tuple[_Witness, _Witness]]:
        """A witness pair proving the inversion can actually deadlock.

        T1 (forward) holds ``src`` and acquires ``dst``; T2 (reverse)
        holds ``dst`` and acquires ``src``.  The cycle closes only when
        T1's request on ``dst`` conflicts with T2's holds there AND T2's
        request on ``src`` conflicts with T1's holds there — S/S opposite
        orders, for instance, are harmless and reported as nothing.
        """
        for fwd in edge.witnesses:
            for rev in reverse.witnesses:
                if fwd.txn == rev.txn:
                    continue
                if conflicts_with_any(
                    fwd.acquired_mode, rev.held_modes
                ) and conflicts_with_any(rev.acquired_mode, fwd.held_modes):
                    return fwd, rev
        return None

    def _report_upgrades(self, report: Report) -> None:
        for (resource, held, acquired), (txn, stack) in self._upgrades.items():
            label = _resource_label(resource)
            held_names = "+".join(sorted(str(m) for m in held))
            report.add(
                Severity.WARNING,
                f"{self.rule_prefix}-UPGRADE",
                label,
                f"in-place lock upgrade: txn {txn} held {held_names} on "
                f"{label} and then requested {acquired}; two concurrent "
                f"transactions doing this deadlock on the upgrade",
                txn=txn,
                holds=sorted(str(m) for m in held),
                acquires=str(acquired),
                acquire_stack=list(stack),
            )

    def _report_long_cycles(self, report: Report) -> None:
        # 2-cycles are reported (mode-checked) as inversions; here we
        # only surface longer cycles, conservatively, as warnings.
        two_cycles = {
            frozenset((src, dst))
            for (src, dst) in self._edges
            if (dst, src) in self._edges
        }
        long_edges = [
            (src, dst)
            for (src, dst) in self._edges
            if frozenset((src, dst)) not in two_cycles
        ]
        cycle = find_cycle(long_edges)
        if not cycle or len(cycle) < 3:
            return
        labels = [_resource_label(resource) for resource in cycle]
        witnesses = []
        for index, src in enumerate(cycle):
            dst = cycle[(index + 1) % len(cycle)]
            edge = self._edges.get((src, dst))
            if edge is not None and edge.witnesses:
                witnesses.append({
                    "edge": f"{_resource_label(src)} -> {_resource_label(dst)}",
                    "txn": edge.witnesses[0].txn,
                    "acquires": str(edge.witnesses[0].acquired_mode),
                })
        report.add(
            Severity.WARNING,
            f"{self.rule_prefix}-CYCLE",
            " -> ".join(labels + [labels[0]]),
            f"acquisition-order cycle through {len(cycle)} resources; a "
            f"deadlock needs every adjacent witness pair to conflict — "
            f"inspect the witness modes",
            cycle=labels,
            witnesses=witnesses,
        )


class LockOrderRecorder(LockObserver):
    """Runtime lock-dependency recorder.

    Attach to a :class:`repro.locking.table.LockTable` (or pass one to
    the constructor) and every grant is appended to the owning
    transaction's trace; when the transaction releases its locks the
    trace folds into the global order graph.  ``analyze()`` then reports
    inversions, upgrades, and cycles across *all* transactions observed
    so far — whether or not any of them ever blocked.

    Parameters
    ----------
    table:
        When given, :meth:`attach` is called immediately.
    capture_stacks:
        Record a trimmed acquisition stack per grant (diagnosis quality
        vs. a few microseconds per grant; benchmark B16 quantifies it).
    """

    def __init__(
        self,
        table: Optional[LockTable] = None,
        capture_stacks: bool = True,
    ) -> None:
        self.graph = LockOrderGraph(rule_prefix="LOCKDEP")
        self.capture_stacks = capture_stacks
        self._live: dict[Any, list[Acquisition]] = {}
        self._tables: list[LockTable] = []
        if table is not None:
            self.attach(table)

    # -- wiring ------------------------------------------------------------

    def attach(self, table: LockTable) -> None:
        """Start observing *table* (idempotent)."""
        if self not in table.observers:
            table.observers.append(self)
        if table not in self._tables:
            self._tables.append(table)

    def detach(self, table: Optional[LockTable] = None) -> None:
        """Stop observing *table* (or every attached table)."""
        targets = [table] if table is not None else list(self._tables)
        for target in targets:
            if self in target.observers:
                target.observers.remove(self)
            if target in self._tables:
                self._tables.remove(target)

    # -- LockObserver ------------------------------------------------------

    def on_grant(self, txn: Any, resource: Hashable, mode: LockMode) -> None:
        trace = self._live.setdefault(txn, [])
        stack = capture_stack() if self.capture_stacks else ()
        trace.append(Acquisition(
            resource=resource, mode=mode, order=len(trace), stack=stack
        ))

    def on_release(self, txn: Any) -> None:
        trace = self._live.pop(txn, None)
        if trace:
            self.graph.add_trace(txn, trace)

    # -- reporting ---------------------------------------------------------

    @property
    def transactions_recorded(self) -> int:
        """Completed transactions folded into the order graph."""
        return self.graph.traces

    def analyze(self) -> Report:
        """Fold still-open traces in a snapshot and report the graph.

        Open transactions are analyzed *non-destructively*: their traces
        stay live, so a later ``analyze()`` after they finish does not
        lose their remaining acquisitions.
        """
        report = Report(plane="lockdep")
        if not self._live:
            return self.graph.analyze(report)
        # Analyze open traces against a *copy* of the graph state.
        snapshot = LockOrderGraph(rule_prefix=self.graph.rule_prefix)
        snapshot._edges = {
            key: OrderEdge(
                src=edge.src,
                dst=edge.dst,
                witnesses=list(edge.witnesses),
                count=edge.count,
            )
            for key, edge in self.graph._edges.items()
        }
        snapshot._upgrades = dict(self.graph._upgrades)
        snapshot.traces = self.graph.traces
        for txn, trace in self._live.items():
            snapshot.add_trace(txn, trace)
        return snapshot.analyze(report)

    def stats_row(self) -> dict[str, int]:
        """Counters for the server's ``stats`` op."""
        return {
            "transactions_recorded": self.graph.traces,
            "open_traces": len(self._live),
            "order_edges": len(self.graph._edges),
        }
